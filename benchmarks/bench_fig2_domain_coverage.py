"""Figure 2: PTF domains cover only the inputs that occur.

The figure's claim: a full transfer function covers the whole input domain,
while the PTFs together cover only the alias patterns the program actually
exhibits — so the number of PTFs tracks the number of *distinct alias
patterns*, not the (much larger) number of call sites or contexts.

Measured here: across the benchmark suite, total PTFs per procedure is far
below the number of call sites targeting it, and equals the number of
distinct patterns the matcher observed.
"""

import pytest

from repro.bench import PROGRAMS, analyze_benchmark

SUBSET = ["grep", "compress", "compiler", "eqntott", "simulator"]


@pytest.fixture(scope="module")
def results():
    return {name: analyze_benchmark(name) for name in SUBSET}


def _call_site_counts(result):
    """callee name -> number of static call sites invoking it."""
    from repro.ir.expr import AddressTerm, ProcSymbol, SymbolLoc

    counts: dict[str, int] = {}
    for proc in result.program.procedures.values():
        for node in proc.call_nodes():
            for term in node.target.terms:
                if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                    sym = term.loc.symbol
                    if isinstance(sym, ProcSymbol):
                        counts[sym.name] = counts.get(sym.name, 0) + 1
    return counts


@pytest.mark.parametrize("name", SUBSET)
def test_ptfs_do_not_track_call_sites(results, name):
    result = results[name]
    sites = _call_site_counts(result)
    multi_site = {
        proc: n for proc, n in sites.items()
        if n >= 2 and proc in result.program.procedures
    }
    if not multi_site:
        pytest.skip("no multi-site procedures in this program")
    total_sites = sum(multi_site.values())
    total_ptfs = sum(len(result.ptfs_of(p)) for p in multi_site)
    # coverage is sparse: far fewer PTFs than call sites
    assert total_ptfs < total_sites, (total_ptfs, total_sites)


@pytest.mark.parametrize("name", SUBSET)
def test_every_reuse_was_a_domain_hit(results, name):
    """Each call either matched an existing PTF's domain or created one:
    reuses + creations >= internal call evaluations resolved."""
    stats = results[name].analyzer.stats
    assert stats["ptf_reuses"] > 0
    # every analyzed procedure's PTFs came from explicit creations (+1 for
    # main, whose PTF the engine seeds directly)
    total_ptfs = sum(len(v) for v in results[name].analyzer.ptfs.values())
    assert stats["ptf_created"] + 1 >= total_ptfs


def test_domain_coverage_benchmark(benchmark, results):
    """Time the coverage computation itself over the analyzed subset."""

    def measure():
        out = {}
        for name, result in results.items():
            sites = _call_site_counts(result)
            ptfs = sum(len(v) for v in result.analyzer.ptfs.values())
            out[name] = (sum(sites.values()), ptfs)
        return out

    coverage = benchmark(measure)
    for name, (nsites, nptfs) in coverage.items():
        benchmark.extra_info[name] = f"{nptfs} PTFs / {nsites} sites"
