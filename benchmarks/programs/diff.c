/* diff - compare two text sequences using the classic LCS dynamic program,
 * printing an edit script.  Line hashing, a table of line records, and an
 * edit-op linked list built from heap nodes. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MAXLINES 256

struct line {
    char *text;
    unsigned hash;
    int serial;
};

struct edit {
    struct edit *next;
    int op;                 /* 0 = keep, 1 = delete, 2 = insert */
    int old_line;
    int new_line;
};

static struct line file_a[MAXLINES];
static struct line file_b[MAXLINES];
static int len_a, len_b;
static int lcs[MAXLINES + 1][MAXLINES + 1];

unsigned hash_line(char *s)
{
    unsigned h = 5381;
    while (*s)
        h = h * 33 + (unsigned)*s++;
    return h;
}

void add_line(struct line *file, int *len, char *text)
{
    struct line *l = &file[*len];
    l->text = text;
    l->hash = hash_line(text);
    l->serial = *len;
    (*len)++;
}

int lines_equal(struct line *a, struct line *b)
{
    if (a->hash != b->hash)
        return 0;
    return strcmp(a->text, b->text) == 0;
}

void compute_lcs(void)
{
    int i, j;
    for (i = 0; i <= len_a; i++)
        lcs[i][len_b] = 0;
    for (j = 0; j <= len_b; j++)
        lcs[len_a][j] = 0;
    for (i = len_a - 1; i >= 0; i--) {
        for (j = len_b - 1; j >= 0; j--) {
            if (lines_equal(&file_a[i], &file_b[j]))
                lcs[i][j] = lcs[i + 1][j + 1] + 1;
            else if (lcs[i + 1][j] >= lcs[i][j + 1])
                lcs[i][j] = lcs[i + 1][j];
            else
                lcs[i][j] = lcs[i][j + 1];
        }
    }
}

struct edit *new_edit(int op, int old_line, int new_line)
{
    struct edit *e = malloc(sizeof(struct edit));
    e->next = 0;
    e->op = op;
    e->old_line = old_line;
    e->new_line = new_line;
    return e;
}

struct edit *build_script(void)
{
    struct edit *head = 0;
    struct edit **tail = &head;
    int i = 0, j = 0;
    while (i < len_a && j < len_b) {
        struct edit *e;
        if (lines_equal(&file_a[i], &file_b[j])) {
            e = new_edit(0, i, j);
            i++; j++;
        } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
            e = new_edit(1, i, -1);
            i++;
        } else {
            e = new_edit(2, -1, j);
            j++;
        }
        *tail = e;
        tail = &e->next;
    }
    while (i < len_a) {
        *tail = new_edit(1, i++, -1);
        tail = &(*tail)->next;
    }
    while (j < len_b) {
        *tail = new_edit(2, -1, j++);
        tail = &(*tail)->next;
    }
    return head;
}

int print_script(struct edit *script)
{
    struct edit *e;
    int changes = 0;
    for (e = script; e != 0; e = e->next) {
        if (e->op == 1) {
            printf("< %s\n", file_a[e->old_line].text);
            changes++;
        } else if (e->op == 2) {
            printf("> %s\n", file_b[e->new_line].text);
            changes++;
        }
    }
    return changes;
}

void free_script(struct edit *script)
{
    while (script != 0) {
        struct edit *next = script->next;
        free(script);
        script = next;
    }
}

static char *sample_a[] = {
    "alpha", "bravo", "charlie", "delta", "echo",
    "foxtrot", "golf", "hotel", "india", 0,
};
static char *sample_b[] = {
    "alpha", "charlie", "delta", "delta2", "echo",
    "golf", "hotel", "india", "juliet", 0,
};

void load_samples(void)
{
    char **p;
    for (p = sample_a; *p != 0; p++)
        add_line(file_a, &len_a, *p);
    for (p = sample_b; *p != 0; p++)
        add_line(file_b, &len_b, *p);
}

int main(void)
{
    struct edit *script;
    int changes;
    load_samples();
    compute_lcs();
    script = build_script();
    changes = print_script(script);
    free_script(script);
    printf("%d changes\n", changes);
    return 0;
}
