/* dbase: an in-memory two-table database engine.
 *
 * Companion stress program for the sparse-lookup benchmark (not a Table 2
 * row).  Where interp.c exercises the analysis under heavy interprocedural
 * churn (mutually recursive eval/apply over a heap cell graph), dbase.c is
 * the opposite regime: a handful of long, loop-heavy procedures over
 * static struct tables, hash chains and comparator function pointers.
 * Long bodies make the dominator chains deep, so uncached lookups walk
 * far; the flat call tree converges quickly, so the walks are repeated
 * over a stable points-to state — the workload the dominator-walk
 * memoization (§4.2) targets. */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define MAXACCT 256
#define MAXTXN 512
#define NHASH 64
#define MAXLINE 128

/* ---------------------------------------------------------------- tables */

struct account {
    long id;
    char name[20];
    long balance;
    long activity;
    int kind;
    int flags;
    int ntxns;
    struct account *next_hash;  /* bucket chain */
    struct account *next_all;   /* insertion-order chain */
};

struct txn {
    long serial;
    long acct_id;
    long amount;
    int day;
    struct account *acct;       /* resolved owner, filled by link_and_apply */
    struct txn *next_hash;
    struct txn *next_all;
    struct txn *next_peer;      /* next txn of the same account */
};

static struct account acct_pool[MAXACCT];
static int acct_used;
static struct account *acct_hash[NHASH];
static struct account *acct_head, *acct_tail;

static struct txn txn_pool[MAXTXN];
static int txn_used;
static struct txn *txn_hash[NHASH];
static struct txn *txn_head, *txn_tail;

static struct account *sorted[MAXACCT];
static int sorted_len;

static long per_day[32];
static int errors;

/* comparator dispatch: read-only after table_init */
typedef int (*acctcmp)(struct account *, struct account *);

struct order {
    char name[12];
    acctcmp fn;
};

static struct order orders[4];
static int norders;

/* ---------------------------------------------------------- comparators */

static int cmp_id(struct account *x, struct account *y)
{
    if (x->id < y->id)
        return -1;
    if (x->id > y->id)
        return 1;
    return 0;
}

static int cmp_name(struct account *x, struct account *y)
{
    return strcmp(x->name, y->name);
}

static int cmp_balance(struct account *x, struct account *y)
{
    if (x->balance < y->balance)
        return 1;               /* descending */
    if (x->balance > y->balance)
        return -1;
    if (x->id < y->id)
        return -1;
    if (x->id > y->id)
        return 1;
    return 0;
}

static void table_init(void)
{
    int i = 0;
    while (i < NHASH) {
        acct_hash[i] = NULL;
        txn_hash[i] = NULL;
        i++;
    }
    acct_head = NULL;
    acct_tail = NULL;
    txn_head = NULL;
    txn_tail = NULL;
    acct_used = 0;
    txn_used = 0;
    sorted_len = 0;
    errors = 0;
    strcpy(orders[0].name, "id");
    orders[0].fn = cmp_id;
    strcpy(orders[1].name, "name");
    orders[1].fn = cmp_name;
    strcpy(orders[2].name, "balance");
    orders[2].fn = cmp_balance;
    norders = 3;
}

/* -------------------------------------------------------------- loading */

/* Parse the whole embedded text in one pass: line splitting, field
 * scanning, allocation from the static pools, and hash/chain insertion
 * all live in this one long body so the dominator chain under the loop
 * is deep and the pointers it reads stay stable. */
static int load_text(char *text)
{
    char line[MAXLINE];
    char word[MAXLINE];
    char *p = text;
    char *q;
    int n = 0;
    int loaded = 0;
    int want_more = 1;
    while (want_more) {
        int ch = *p;
        if (ch != '\n' && ch != '\0') {
            if (n < MAXLINE - 1) {
                line[n] = (char)ch;
                n++;
            }
            p++;
            continue;
        }
        line[n] = '\0';
        n = 0;
        if (ch == '\0')
            want_more = 0;
        else
            p++;
        /* --- one record --------------------------------------------- */
        q = line;
        while (*q == ' ' || *q == '\t')
            q++;
        if (*q == '\0' || *q == '#')
            continue;
        if (*q == 'A') {
            long id = 0;
            long kind = 0;
            int w = 0;
            int h;
            struct account *a;
            struct account *scan;
            q++;
            while (*q == ' ' || *q == '\t')
                q++;
            while (isdigit((unsigned char)*q)) {
                id = id * 10 + (*q - '0');
                q++;
            }
            while (*q == ' ' || *q == '\t')
                q++;
            while (*q && *q != ' ' && *q != '\t' && w < 19) {
                word[w] = *q;
                w++;
                q++;
            }
            word[w] = '\0';
            while (*q == ' ' || *q == '\t')
                q++;
            while (isdigit((unsigned char)*q)) {
                kind = kind * 10 + (*q - '0');
                q++;
            }
            /* duplicate id check down the bucket chain */
            h = (int)(id % NHASH);
            scan = acct_hash[h];
            while (scan != NULL && scan->id != id)
                scan = scan->next_hash;
            if (scan != NULL) {
                errors++;
                continue;
            }
            if (acct_used >= MAXACCT) {
                errors++;
                continue;
            }
            a = &acct_pool[acct_used];
            acct_used++;
            a->id = id;
            strcpy(a->name, word);
            a->balance = 0;
            a->activity = 0;
            a->kind = (int)kind;
            a->flags = 0;
            a->ntxns = 0;
            a->next_hash = acct_hash[h];
            acct_hash[h] = a;
            a->next_all = NULL;
            if (acct_tail != NULL)
                acct_tail->next_all = a;
            else
                acct_head = a;
            acct_tail = a;
            loaded++;
        } else if (*q == 'T') {
            long serial = 0;
            long acct_id = 0;
            long amount = 0;
            long day = 0;
            int neg = 0;
            int h;
            struct txn *t;
            q++;
            while (*q == ' ' || *q == '\t')
                q++;
            while (isdigit((unsigned char)*q)) {
                serial = serial * 10 + (*q - '0');
                q++;
            }
            while (*q == ' ' || *q == '\t')
                q++;
            while (isdigit((unsigned char)*q)) {
                acct_id = acct_id * 10 + (*q - '0');
                q++;
            }
            while (*q == ' ' || *q == '\t')
                q++;
            if (*q == '-') {
                neg = 1;
                q++;
            }
            while (isdigit((unsigned char)*q)) {
                amount = amount * 10 + (*q - '0');
                q++;
            }
            if (neg)
                amount = -amount;
            while (*q == ' ' || *q == '\t')
                q++;
            while (isdigit((unsigned char)*q)) {
                day = day * 10 + (*q - '0');
                q++;
            }
            if (txn_used >= MAXTXN) {
                errors++;
                continue;
            }
            t = &txn_pool[txn_used];
            txn_used++;
            t->serial = serial;
            t->acct_id = acct_id;
            t->amount = amount;
            t->day = (int)day;
            t->acct = NULL;
            t->next_peer = NULL;
            h = (int)(serial % NHASH);
            t->next_hash = txn_hash[h];
            txn_hash[h] = t;
            t->next_all = NULL;
            if (txn_tail != NULL)
                txn_tail->next_all = t;
            else
                txn_head = t;
            txn_tail = t;
            loaded++;
        } else {
            errors++;
        }
    }
    return loaded;
}

/* ---------------------------------------------------------------- joins */

/* Resolve every txn's owning account, thread per-account peer chains,
 * apply the amounts, and accumulate the per-day histogram — the join
 * between the two tables, all in one long body. */
static long link_and_apply(void)
{
    struct txn *t;
    struct txn *scan;
    struct account *a;
    long applied = 0;
    int d = 0;
    while (d < 32) {
        per_day[d] = 0;
        d++;
    }
    t = txn_head;
    while (t != NULL) {
        int h = (int)(t->acct_id % NHASH);
        a = acct_hash[h];
        while (a != NULL && a->id != t->acct_id)
            a = a->next_hash;
        if (a == NULL) {
            errors++;
            t->acct = NULL;
        } else {
            t->acct = a;
        }
        t->next_peer = NULL;
        t = t->next_all;
    }
    t = txn_head;
    while (t != NULL) {
        a = t->acct;
        if (a != NULL && (a->flags & 1) == 0) {
            a->balance += t->amount;
            a->activity += t->amount;
            a->ntxns++;
            applied += t->amount;
            if (t->day >= 0 && t->day < 32)
                per_day[t->day] += 1;
            /* thread the peer chain: next txn of the same account */
            scan = t->next_all;
            while (scan != NULL && scan->acct != a)
                scan = scan->next_all;
            t->next_peer = scan;
        }
        t = t->next_all;
    }
    return applied;
}

/* --------------------------------------------------------------- report */

/* Select live accounts, insertion-sort them under the comparator named by
 * `order`, print the table with per-account peer-chain walks, then the
 * aggregate summary: totals, kind counts, richest account, busiest day.
 * One long procedure so every loop shares one deep dominator region. */
static long report(char *order)
{
    acctcmp cmp = cmp_id;
    struct account *a;
    struct account *key;
    struct account *best;
    struct txn *t;
    long sum = 0;
    long walked;
    int kinds[3];
    int i, j, d, bestday;
    i = 0;
    while (i < norders) {
        if (strcmp(orders[i].name, order) == 0)
            cmp = orders[i].fn;
        i++;
    }
    sorted_len = 0;
    a = acct_head;
    while (a != NULL) {
        if ((a->flags & 1) == 0) {
            sorted[sorted_len] = a;
            sorted_len++;
        }
        a = a->next_all;
    }
    i = 1;
    while (i < sorted_len) {
        key = sorted[i];
        j = i - 1;
        while (j >= 0 && (*cmp)(sorted[j], key) > 0) {
            sorted[j + 1] = sorted[j];
            j--;
        }
        sorted[j + 1] = key;
        i++;
    }
    printf("accounts by %s:\n", order);
    i = 0;
    while (i < sorted_len) {
        a = sorted[i];
        /* recompute activity through the join's peer chains */
        walked = 0;
        t = txn_head;
        while (t != NULL && t->acct != a)
            t = t->next_all;
        while (t != NULL) {
            walked += t->amount;
            t = t->next_peer;
        }
        if (walked != a->activity)
            errors++;
        printf("  %ld %s kind=%d balance=%ld activity=%ld n=%d\n",
               a->id, a->name, a->kind, a->balance, a->activity, a->ntxns);
        i++;
    }
    kinds[0] = 0;
    kinds[1] = 0;
    kinds[2] = 0;
    best = NULL;
    a = acct_head;
    while (a != NULL) {
        if ((a->flags & 1) == 0) {
            sum += a->balance;
            if (a->kind >= 0 && a->kind < 3)
                kinds[a->kind]++;
            if (best == NULL || a->balance > best->balance)
                best = a;
        }
        a = a->next_all;
    }
    bestday = 0;
    d = 1;
    while (d < 32) {
        if (per_day[d] > per_day[bestday])
            bestday = d;
        d++;
    }
    printf("total=%ld kinds=%d/%d/%d day=%d\n",
           sum, kinds[0], kinds[1], kinds[2], bestday);
    if (best != NULL)
        printf("richest=%s (%ld)\n", best->name, best->balance);
    return sum;
}

/* ------------------------------------------------------------ integrity */

/* Verify every invariant in one sweep: bucket residency, tombstone
 * exclusion, join consistency, peer-chain ownership, sortedness of the
 * last report, and pool bounds. */
static int check_all(char *order)
{
    acctcmp cmp = cmp_id;
    struct account *a;
    struct txn *t;
    int bad = 0;
    int h, i;
    i = 0;
    while (i < norders) {
        if (strcmp(orders[i].name, order) == 0)
            cmp = orders[i].fn;
        i++;
    }
    h = 0;
    while (h < NHASH) {
        a = acct_hash[h];
        while (a != NULL) {
            if ((int)(a->id % NHASH) != h)
                bad++;
            if (a->flags & 1)
                bad++;          /* tombstones must leave the hash */
            if (a < &acct_pool[0] || a >= &acct_pool[MAXACCT])
                bad++;
            a = a->next_hash;
        }
        t = txn_hash[h];
        while (t != NULL) {
            if ((int)(t->serial % NHASH) != h)
                bad++;
            t = t->next_hash;
        }
        h++;
    }
    t = txn_head;
    while (t != NULL) {
        if (t->acct != NULL) {
            if (t->acct->id != t->acct_id)
                bad++;
            if (t->next_peer != NULL && t->next_peer->acct != t->acct)
                bad++;
        }
        t = t->next_all;
    }
    i = 1;
    while (i < sorted_len) {
        if ((*cmp)(sorted[i - 1], sorted[i]) > 0)
            bad++;
        i++;
    }
    a = acct_head;
    i = 0;
    while (a != NULL) {
        i++;
        a = a->next_all;
    }
    if (i != acct_used)
        bad++;
    return bad;
}

/* -------------------------------------------------------------- queries */

/* A query language over accounts, compiled recursive-descent into a heap
 * AST through a full precedence ladder, constant-folded, lowered to a
 * small stack bytecode, and run per record by a dispatch VM — the tree
 * evaluator cross-checks the VM:
 *
 *     query  := orexp
 *     orexp  := andexp { '|' andexp }
 *     andexp := notexp { '&' notexp }
 *     notexp := '!' notexp | cmpexp
 *     cmpexp := sumexp [ ('<'|'>'|'=') sumexp ]
 *     sumexp := prodexp { ('+'|'-') prodexp }
 *     prodexp:= unary { '*' unary }
 *     unary  := '-' unary | primary
 *     primary:= number | field | '(' orexp ')'
 *     field  := "id" | "balance" | "kind" | "activity" | "ntxns"
 *
 * The ladder means AST pointers flow through many mutually recursive
 * procedures with several call sites each (the §7 invocation-graph
 * blow-up shape), and the heap nodes come from one allocation site
 * reached along many paths, so value sets ascend over a few passes and
 * are then re-read many times from a converged state. */

enum qkind {
    Q_AND, Q_OR, Q_NOT, Q_LT, Q_GT, Q_EQ,
    Q_ADD, Q_SUB, Q_MUL, Q_NEG, Q_NUM, Q_FIELD
};
enum qfield { F_ID, F_BALANCE, F_KIND, F_ACTIVITY, F_NTXNS };

struct qnode {
    int kind;
    int field;
    long number;
    struct qnode *left;
    struct qnode *right;
};

/* stack bytecode the planner lowers queries to */
enum qop { QOP_PUSH, QOP_FIELD, QOP_ADD, QOP_SUB, QOP_MUL, QOP_NEG,
           QOP_LT, QOP_GT, QOP_EQ, QOP_AND, QOP_OR, QOP_NOT, QOP_END };

#define MAXQCODE 128

struct qinsn {
    int op;
    long arg;
};

static struct qinsn qcode[MAXQCODE];
static int qcode_len;

static char *qp;                /* query cursor */

static struct qnode *parse_or(void);
static struct qnode *parse_unary(void);

static struct qnode *qnode_new(int kind)
{
    struct qnode *n = (struct qnode *)malloc(sizeof(struct qnode));
    if (n == NULL) {
        errors++;
        exit(1);
    }
    n->kind = kind;
    n->field = F_ID;
    n->number = 0;
    n->left = NULL;
    n->right = NULL;
    return n;
}

static void qskip(void)
{
    while (*qp == ' ')
        qp++;
}

static struct qnode *parse_primary(void)
{
    struct qnode *n;
    char word[16];
    int w = 0;
    qskip();
    if (*qp == '(') {
        qp++;
        n = parse_or();
        qskip();
        if (*qp == ')')
            qp++;
        else
            errors++;
        return n;
    }
    if (isdigit((unsigned char)*qp)) {
        long v = 0;
        while (isdigit((unsigned char)*qp)) {
            v = v * 10 + (*qp - '0');
            qp++;
        }
        n = qnode_new(Q_NUM);
        n->number = v;
        return n;
    }
    while (isalpha((unsigned char)*qp) && w < 15) {
        word[w] = *qp;
        w++;
        qp++;
    }
    word[w] = '\0';
    n = qnode_new(Q_FIELD);
    if (strcmp(word, "id") == 0)
        n->field = F_ID;
    else if (strcmp(word, "balance") == 0)
        n->field = F_BALANCE;
    else if (strcmp(word, "kind") == 0)
        n->field = F_KIND;
    else if (strcmp(word, "activity") == 0)
        n->field = F_ACTIVITY;
    else if (strcmp(word, "ntxns") == 0)
        n->field = F_NTXNS;
    else
        errors++;
    return n;
}

static struct qnode *parse_unary(void)
{
    qskip();
    if (*qp == '-') {
        struct qnode *n;
        qp++;
        n = qnode_new(Q_NEG);
        n->left = parse_unary();
        return n;
    }
    return parse_primary();
}

static struct qnode *parse_prod(void)
{
    struct qnode *left = parse_unary();
    while (1) {
        struct qnode *n;
        qskip();
        if (*qp != '*')
            return left;
        qp++;
        n = qnode_new(Q_MUL);
        n->left = left;
        n->right = parse_unary();
        left = n;
    }
}

static struct qnode *parse_sum(void)
{
    struct qnode *left = parse_prod();
    while (1) {
        struct qnode *n;
        int op;
        qskip();
        if (*qp == '+')
            op = Q_ADD;
        else if (*qp == '-')
            op = Q_SUB;
        else
            return left;
        qp++;
        n = qnode_new(op);
        n->left = left;
        n->right = parse_prod();
        left = n;
    }
}

static struct qnode *parse_cmp(void)
{
    struct qnode *left = parse_sum();
    struct qnode *n;
    int op;
    qskip();
    if (*qp == '<')
        op = Q_LT;
    else if (*qp == '>')
        op = Q_GT;
    else if (*qp == '=')
        op = Q_EQ;
    else
        return left;
    qp++;
    n = qnode_new(op);
    n->left = left;
    n->right = parse_sum();
    return n;
}

static struct qnode *parse_not(void)
{
    qskip();
    if (*qp == '!') {
        struct qnode *n;
        qp++;
        n = qnode_new(Q_NOT);
        n->left = parse_not();
        return n;
    }
    return parse_cmp();
}

static struct qnode *parse_and(void)
{
    struct qnode *left = parse_not();
    while (1) {
        struct qnode *n;
        qskip();
        if (*qp != '&')
            return left;
        qp++;
        n = qnode_new(Q_AND);
        n->left = left;
        n->right = parse_not();
        left = n;
    }
}

static struct qnode *parse_or(void)
{
    struct qnode *left = parse_and();
    while (1) {
        struct qnode *n;
        qskip();
        if (*qp != '|')
            return left;
        qp++;
        n = qnode_new(Q_OR);
        n->left = left;
        n->right = parse_and();
        left = n;
    }
}

static struct qnode *query_compile(char *text)
{
    qp = text;
    return parse_or();
}

/* constant folding + double-negation elimination, bottom-up */
static struct qnode *query_simplify(struct qnode *n)
{
    if (n == NULL)
        return NULL;
    n->left = query_simplify(n->left);
    n->right = query_simplify(n->right);
    if (n->kind == Q_NOT && n->left != NULL && n->left->kind == Q_NOT) {
        struct qnode *inner = n->left->left;
        free(n->left);
        free(n);
        return inner;
    }
    if (n->kind == Q_NEG && n->left != NULL && n->left->kind == Q_NUM) {
        struct qnode *inner = n->left;
        inner->number = -inner->number;
        free(n);
        return inner;
    }
    if (n->left != NULL && n->right != NULL
        && n->left->kind == Q_NUM && n->right->kind == Q_NUM) {
        long x = n->left->number;
        long y = n->right->number;
        long v;
        if (n->kind == Q_ADD)
            v = x + y;
        else if (n->kind == Q_SUB)
            v = x - y;
        else if (n->kind == Q_MUL)
            v = x * y;
        else
            return n;
        free(n->left);
        free(n->right);
        n->kind = Q_NUM;
        n->left = NULL;
        n->right = NULL;
        n->number = v;
    }
    return n;
}

/* ---- lowering to bytecode ---- */

static void qemit(int op, long arg)
{
    if (qcode_len >= MAXQCODE) {
        errors++;
        return;
    }
    qcode[qcode_len].op = op;
    qcode[qcode_len].arg = arg;
    qcode_len++;
}

static void query_lower(struct qnode *n)
{
    if (n == NULL) {
        qemit(QOP_PUSH, 1);
        return;
    }
    if (n->kind == Q_NUM) {
        qemit(QOP_PUSH, n->number);
        return;
    }
    if (n->kind == Q_FIELD) {
        qemit(QOP_FIELD, n->field);
        return;
    }
    if (n->kind == Q_NEG || n->kind == Q_NOT) {
        query_lower(n->left);
        qemit(n->kind == Q_NEG ? QOP_NEG : QOP_NOT, 0);
        return;
    }
    query_lower(n->left);
    query_lower(n->right);
    if (n->kind == Q_ADD)
        qemit(QOP_ADD, 0);
    else if (n->kind == Q_SUB)
        qemit(QOP_SUB, 0);
    else if (n->kind == Q_MUL)
        qemit(QOP_MUL, 0);
    else if (n->kind == Q_LT)
        qemit(QOP_LT, 0);
    else if (n->kind == Q_GT)
        qemit(QOP_GT, 0);
    else if (n->kind == Q_EQ)
        qemit(QOP_EQ, 0);
    else if (n->kind == Q_AND)
        qemit(QOP_AND, 0);
    else
        qemit(QOP_OR, 0);
}

static long field_of(struct account *a, int field)
{
    if (field == F_BALANCE)
        return a->balance;
    if (field == F_KIND)
        return a->kind;
    if (field == F_ACTIVITY)
        return a->activity;
    if (field == F_NTXNS)
        return a->ntxns;
    return a->id;
}

/* run the lowered program for one record */
static long query_vm(struct account *a)
{
    long stack[MAXQCODE];
    int sp = 0;
    int pc = 0;
    while (pc < qcode_len) {
        struct qinsn *ins = &qcode[pc];
        long x, y;
        if (ins->op == QOP_PUSH) {
            stack[sp] = ins->arg;
            sp++;
        } else if (ins->op == QOP_FIELD) {
            stack[sp] = field_of(a, (int)ins->arg);
            sp++;
        } else if (ins->op == QOP_NEG) {
            stack[sp - 1] = -stack[sp - 1];
        } else if (ins->op == QOP_NOT) {
            stack[sp - 1] = !stack[sp - 1];
        } else {
            sp--;
            y = stack[sp];
            x = stack[sp - 1];
            if (ins->op == QOP_ADD)
                stack[sp - 1] = x + y;
            else if (ins->op == QOP_SUB)
                stack[sp - 1] = x - y;
            else if (ins->op == QOP_MUL)
                stack[sp - 1] = x * y;
            else if (ins->op == QOP_LT)
                stack[sp - 1] = x < y;
            else if (ins->op == QOP_GT)
                stack[sp - 1] = x > y;
            else if (ins->op == QOP_EQ)
                stack[sp - 1] = x == y;
            else if (ins->op == QOP_AND)
                stack[sp - 1] = x && y;
            else
                stack[sp - 1] = x || y;
        }
        pc++;
    }
    if (sp != 1) {
        errors++;
        return 0;
    }
    return stack[0];
}

/* reference tree-walking evaluator, cross-checks the VM */
static long query_eval(struct qnode *n, struct account *a)
{
    if (n == NULL)
        return 1;
    if (n->kind == Q_NUM)
        return n->number;
    if (n->kind == Q_FIELD)
        return field_of(a, n->field);
    if (n->kind == Q_NEG)
        return -query_eval(n->left, a);
    if (n->kind == Q_NOT)
        return !query_eval(n->left, a);
    if (n->kind == Q_AND)
        return query_eval(n->left, a) && query_eval(n->right, a);
    if (n->kind == Q_OR)
        return query_eval(n->left, a) || query_eval(n->right, a);
    {
        long x = query_eval(n->left, a);
        long y = query_eval(n->right, a);
        if (n->kind == Q_ADD)
            return x + y;
        if (n->kind == Q_SUB)
            return x - y;
        if (n->kind == Q_MUL)
            return x * y;
        if (n->kind == Q_LT)
            return x < y;
        if (n->kind == Q_GT)
            return x > y;
        return x == y;
    }
}

static void query_release(struct qnode *n)
{
    if (n == NULL)
        return;
    query_release(n->left);
    query_release(n->right);
    free(n);
}

/* compile, simplify, lower, run over the live accounts via the VM with
 * the tree evaluator as cross-check, count matches */
static int query_run(char *text)
{
    struct qnode *q = query_compile(text);
    struct account *a;
    int matched = 0;
    q = query_simplify(q);
    qcode_len = 0;
    query_lower(q);
    a = acct_head;
    while (a != NULL) {
        if ((a->flags & 1) == 0) {
            long vm = query_vm(a);
            long tree = query_eval(q, a);
            if ((vm != 0) != (tree != 0))
                errors++;
            if (vm)
                matched++;
        }
        a = a->next_all;
    }
    printf("query [%s] -> %d\n", text, matched);
    query_release(q);
    return matched;
}

/* ------------------------------------------------------------- ledger */

/* Monthly-statement pipeline: per-account heap line items built from the
 * txn join, merged day-ordered into one master ledger, then reconciled
 * against the account balances.  Three dependent stages — each loop
 * consumes the pointer structures the previous one built, so the
 * points-to sets close over a cascade of passes and are then re-walked
 * from converged state. */

struct stmtline {
    struct account *acct;
    struct txn *txn;
    long running;               /* balance after this line */
    int day;
    struct stmtline *next;      /* per-account statement chain */
    struct stmtline *ledger;    /* master ledger chain, day-ordered */
};

static struct stmtline *stmt_heads[MAXACCT];
static int stmt_count;
static struct stmtline *ledger_head;

static struct stmtline *stmt_new(struct account *a, struct txn *t)
{
    struct stmtline *s = (struct stmtline *)malloc(sizeof(struct stmtline));
    if (s == NULL) {
        errors++;
        exit(1);
    }
    s->acct = a;
    s->txn = t;
    s->running = 0;
    s->day = t != NULL ? t->day : 0;
    s->next = NULL;
    s->ledger = NULL;
    return s;
}

static long build_statements(void)
{
    struct account *a;
    struct txn *t;
    struct stmtline *s;
    struct stmtline *tail;
    struct stmtline *probe;
    struct stmtline *prev;
    long grand = 0;
    int idx = 0;

    /* stage 1: one statement chain per live account, txn order */
    a = acct_head;
    while (a != NULL) {
        if ((a->flags & 1) != 0) {
            a = a->next_all;
            continue;
        }
        stmt_heads[idx] = NULL;
        tail = NULL;
        t = txn_head;
        while (t != NULL && t->acct != a)
            t = t->next_all;
        while (t != NULL) {
            s = stmt_new(a, t);
            if (tail != NULL)
                tail->next = s;
            else
                stmt_heads[idx] = s;
            tail = s;
            t = t->next_peer;
        }
        /* running balances down the fresh chain */
        s = stmt_heads[idx];
        {
            long run = 0;
            while (s != NULL) {
                run += s->txn->amount;
                s->running = run;
                s = s->next;
            }
            if (run != a->activity)
                errors++;
        }
        idx++;
        a = a->next_all;
    }
    stmt_count = idx;

    /* stage 2: merge every chain into the day-ordered master ledger */
    ledger_head = NULL;
    idx = 0;
    while (idx < stmt_count) {
        s = stmt_heads[idx];
        while (s != NULL) {
            prev = NULL;
            probe = ledger_head;
            while (probe != NULL && probe->day <= s->day) {
                prev = probe;
                probe = probe->ledger;
            }
            s->ledger = probe;
            if (prev != NULL)
                prev->ledger = s;
            else
                ledger_head = s;
            s = s->next;
        }
        idx++;
    }

    /* stage 3: reconcile the ledger against the join */
    probe = ledger_head;
    prev = NULL;
    while (probe != NULL) {
        if (prev != NULL && prev->day > probe->day)
            errors++;
        if (probe->txn->acct != probe->acct)
            errors++;
        grand += probe->txn->amount;
        prev = probe;
        probe = probe->ledger;
    }
    return grand;
}

static void release_statements(void)
{
    struct stmtline *s;
    struct stmtline *next;
    int idx = 0;
    while (idx < stmt_count) {
        s = stmt_heads[idx];
        while (s != NULL) {
            next = s->next;
            free(s);
            s = next;
        }
        stmt_heads[idx] = NULL;
        idx++;
    }
    ledger_head = NULL;
    stmt_count = 0;
}

/* ------------------------------------------------------------ mutation */

/* Find by name down the all-chain, tombstone the account, unlink it from
 * its bucket, and orphan its txns (drop their owner pointers). */
static int delete_by_name(char *name)
{
    struct account *a = acct_head;
    struct account *prev;
    struct txn *t;
    int h;
    while (a != NULL && strcmp(a->name, name) != 0)
        a = a->next_all;
    if (a == NULL)
        return 0;
    h = (int)(a->id % NHASH);
    prev = NULL;
    if (acct_hash[h] == a) {
        acct_hash[h] = a->next_hash;
    } else {
        prev = acct_hash[h];
        while (prev != NULL && prev->next_hash != a)
            prev = prev->next_hash;
        if (prev != NULL)
            prev->next_hash = a->next_hash;
        else
            errors++;
    }
    a->flags |= 1;
    t = txn_head;
    while (t != NULL) {
        if (t->acct == a) {
            t->acct = NULL;
            t->next_peer = NULL;
        }
        t = t->next_all;
    }
    return 1;
}


/* ------------------------------------------------------------- audit */

/* A register file of stable pointers into the tables, filled once after
 * the join, and a long straight-line audit over them.  Nothing below
 * writes a pointer, so for the analysis every dereference re-reads the
 * same converged points-to state from a little deeper in the procedure
 * body -- the worst case for the raw dominator walks (each read walks
 * back to the entry) and the best case for the memoized ones (the first
 * walk path-fills the chain, the rest are O(1)). */

static struct account *reg[8];
static struct txn *treg[8];

static void fill_registers(void)
{
    struct account *a;
    struct txn *t;
    int i;

    for (i = 0; i < 8; i++) {
        reg[i] = NULL;
        treg[i] = NULL;
    }
    i = 0;
    a = acct_head;
    while (a != NULL && i < 8) {
        if ((a->flags & 1) == 0) {
            reg[i] = a;
            i++;
        }
        a = a->next_all;
    }
    while (i < 8) {
        reg[i] = acct_head;
        i++;
    }
    i = 0;
    t = txn_head;
    while (t != NULL && i < 8) {
        treg[i] = t;
        i++;
        t = t->next_all;
    }
    while (i < 8) {
        treg[i] = txn_head;
        i++;
    }
}

static long audit_books(void)
{
    long s0 = 0, s1 = 0, s2 = 0, s3 = 0;

    s0 += reg[0]->balance + reg[3]->activity;
    s1 += treg[0]->amount + (long)treg[4]->day;
    s2 += reg[5]->next_all->activity + (long)reg[1]->ntxns;
    s3 += treg[4]->acct->balance + per_day[0];
    s1 += reg[1]->activity + reg[4]->id;
    s2 += treg[1]->serial + (long)treg[5]->day;
    s3 += reg[6]->next_all->id + (long)reg[2]->ntxns;
    s0 += treg[5]->acct->activity + per_day[7];
    s2 += reg[2]->id + reg[5]->balance;
    s3 += treg[2]->amount + (long)treg[6]->day;
    s0 += reg[7]->next_all->balance + (long)reg[3]->ntxns;
    s1 += treg[6]->acct->id + per_day[14];
    s3 += reg[3]->balance + reg[6]->activity;
    s0 += treg[3]->serial + (long)treg[7]->day;
    s1 += reg[0]->next_all->activity + (long)reg[4]->ntxns;
    s2 += treg[7]->acct->balance + per_day[21];
    s0 += reg[4]->activity + reg[7]->id;
    s1 += treg[4]->amount + (long)treg[0]->day;
    s2 += reg[1]->next_all->id + (long)reg[5]->ntxns;
    s3 += treg[0]->acct->activity + per_day[28];
    s1 += reg[5]->id + reg[0]->balance;
    s2 += treg[5]->serial + (long)treg[1]->day;
    s3 += reg[2]->next_all->balance + (long)reg[6]->ntxns;
    s0 += treg[1]->acct->id + per_day[3];
    s2 += reg[6]->balance + reg[1]->activity;
    s3 += treg[6]->amount + (long)treg[2]->day;
    s0 += reg[3]->next_all->activity + (long)reg[7]->ntxns;
    s1 += treg[2]->acct->balance + per_day[10];
    s3 += reg[7]->activity + reg[2]->id;
    s0 += treg[7]->serial + (long)treg[3]->day;
    s1 += reg[4]->next_all->id + (long)reg[0]->ntxns;
    s2 += treg[3]->acct->activity + per_day[17];
    s0 += reg[0]->id + reg[3]->balance;
    s1 += treg[0]->amount + (long)treg[4]->day;
    s2 += reg[5]->next_all->balance + (long)reg[1]->ntxns;
    s3 += treg[4]->acct->id + per_day[24];
    s1 += reg[1]->balance + reg[4]->activity;
    s2 += treg[1]->serial + (long)treg[5]->day;
    s3 += reg[6]->next_all->activity + (long)reg[2]->ntxns;
    s0 += treg[5]->acct->balance + per_day[31];
    s2 += reg[2]->activity + reg[5]->id;
    s3 += treg[2]->amount + (long)treg[6]->day;
    s0 += reg[7]->next_all->id + (long)reg[3]->ntxns;
    s1 += treg[6]->acct->activity + per_day[6];
    s3 += reg[3]->id + reg[6]->balance;
    s0 += treg[3]->serial + (long)treg[7]->day;
    s1 += reg[0]->next_all->balance + (long)reg[4]->ntxns;
    s2 += treg[7]->acct->id + per_day[13];
    s0 += reg[4]->balance + reg[7]->activity;
    s1 += treg[4]->amount + (long)treg[0]->day;
    s2 += reg[1]->next_all->activity + (long)reg[5]->ntxns;
    s3 += treg[0]->acct->balance + per_day[20];
    s1 += reg[5]->activity + reg[0]->id;
    s2 += treg[5]->serial + (long)treg[1]->day;
    s3 += reg[2]->next_all->id + (long)reg[6]->ntxns;
    s0 += treg[1]->acct->activity + per_day[27];
    s2 += reg[6]->id + reg[1]->balance;
    s3 += treg[6]->amount + (long)treg[2]->day;
    s0 += reg[3]->next_all->balance + (long)reg[7]->ntxns;
    s1 += treg[2]->acct->id + per_day[2];
    s3 += reg[7]->balance + reg[2]->activity;
    s0 += treg[7]->serial + (long)treg[3]->day;
    s1 += reg[4]->next_all->activity + (long)reg[0]->ntxns;
    s2 += treg[3]->acct->balance + per_day[9];
    s0 += reg[0]->activity + reg[3]->id;
    s1 += treg[0]->amount + (long)treg[4]->day;
    s2 += reg[5]->next_all->id + (long)reg[1]->ntxns;
    s3 += treg[4]->acct->activity + per_day[16];
    s1 += reg[1]->id + reg[4]->balance;
    s2 += treg[1]->serial + (long)treg[5]->day;
    s3 += reg[6]->next_all->balance + (long)reg[2]->ntxns;
    s0 += treg[5]->acct->id + per_day[23];
    s2 += reg[2]->balance + reg[5]->activity;
    s3 += treg[2]->amount + (long)treg[6]->day;
    s0 += reg[7]->next_all->activity + (long)reg[3]->ntxns;
    s1 += treg[6]->acct->balance + per_day[30];
    s3 += reg[3]->activity + reg[6]->id;
    s0 += treg[3]->serial + (long)treg[7]->day;
    s1 += reg[0]->next_all->id + (long)reg[4]->ntxns;
    s2 += treg[7]->acct->activity + per_day[5];
    s0 += reg[4]->id + reg[7]->balance;
    s1 += treg[4]->amount + (long)treg[0]->day;
    s2 += reg[1]->next_all->balance + (long)reg[5]->ntxns;
    s3 += treg[0]->acct->id + per_day[12];
    s1 += reg[5]->balance + reg[0]->activity;
    s2 += treg[5]->serial + (long)treg[1]->day;
    s3 += reg[2]->next_all->activity + (long)reg[6]->ntxns;
    s0 += treg[1]->acct->balance + per_day[19];
    s2 += reg[6]->activity + reg[1]->id;
    s3 += treg[6]->amount + (long)treg[2]->day;
    s0 += reg[3]->next_all->id + (long)reg[7]->ntxns;
    s1 += treg[2]->acct->activity + per_day[26];
    s3 += reg[7]->id + reg[2]->balance;
    s0 += treg[7]->serial + (long)treg[3]->day;
    s1 += reg[4]->next_all->balance + (long)reg[0]->ntxns;
    s2 += treg[3]->acct->id + per_day[1];
    s0 += reg[0]->balance + reg[3]->activity;
    s1 += treg[0]->amount + (long)treg[4]->day;
    s2 += reg[5]->next_all->activity + (long)reg[1]->ntxns;
    s3 += treg[4]->acct->balance + per_day[8];
    s1 += reg[1]->activity + reg[4]->id;
    s2 += treg[1]->serial + (long)treg[5]->day;
    s3 += reg[6]->next_all->id + (long)reg[2]->ntxns;
    s0 += treg[5]->acct->activity + per_day[15];
    s2 += reg[2]->id + reg[5]->balance;
    s3 += treg[2]->amount + (long)treg[6]->day;
    s0 += reg[7]->next_all->balance + (long)reg[3]->ntxns;
    s1 += treg[6]->acct->id + per_day[22];
    s3 += reg[3]->balance + reg[6]->activity;
    s0 += treg[3]->serial + (long)treg[7]->day;
    s1 += reg[0]->next_all->activity + (long)reg[4]->ntxns;
    s2 += treg[7]->acct->balance + per_day[29];
    s0 += reg[4]->activity + reg[7]->id;
    s1 += treg[4]->amount + (long)treg[0]->day;
    s2 += reg[1]->next_all->id + (long)reg[5]->ntxns;
    s3 += treg[0]->acct->activity + per_day[4];
    s1 += reg[5]->id + reg[0]->balance;
    s2 += treg[5]->serial + (long)treg[1]->day;
    s3 += reg[2]->next_all->balance + (long)reg[6]->ntxns;
    s0 += treg[1]->acct->id + per_day[11];
    s2 += reg[6]->balance + reg[1]->activity;
    s3 += treg[6]->amount + (long)treg[2]->day;
    s0 += reg[3]->next_all->activity + (long)reg[7]->ntxns;
    s1 += treg[2]->acct->balance + per_day[18];
    s3 += reg[7]->activity + reg[2]->id;
    s0 += treg[7]->serial + (long)treg[3]->day;
    s1 += reg[4]->next_all->id + (long)reg[0]->ntxns;
    s2 += treg[3]->acct->activity + per_day[25];
    s0 += reg[0]->id + reg[3]->balance;
    s1 += treg[0]->amount + (long)treg[4]->day;
    s2 += reg[5]->next_all->balance + (long)reg[1]->ntxns;
    s3 += treg[4]->acct->id + per_day[0];
    s1 += reg[1]->balance + reg[4]->activity;
    s2 += treg[1]->serial + (long)treg[5]->day;
    s3 += reg[6]->next_all->activity + (long)reg[2]->ntxns;
    s0 += treg[5]->acct->balance + per_day[7];
    s2 += reg[2]->activity + reg[5]->id;
    s3 += treg[2]->amount + (long)treg[6]->day;
    s0 += reg[7]->next_all->id + (long)reg[3]->ntxns;
    s1 += treg[6]->acct->activity + per_day[14];
    s3 += reg[3]->id + reg[6]->balance;
    s0 += treg[3]->serial + (long)treg[7]->day;
    s1 += reg[0]->next_all->balance + (long)reg[4]->ntxns;
    s2 += treg[7]->acct->id + per_day[21];
    s0 += reg[4]->balance + reg[7]->activity;
    s1 += treg[4]->amount + (long)treg[0]->day;
    s2 += reg[1]->next_all->activity + (long)reg[5]->ntxns;
    s3 += treg[0]->acct->balance + per_day[28];
    s1 += reg[5]->activity + reg[0]->id;
    s2 += treg[5]->serial + (long)treg[1]->day;
    s3 += reg[2]->next_all->id + (long)reg[6]->ntxns;
    s0 += treg[1]->acct->activity + per_day[3];
    s2 += reg[6]->id + reg[1]->balance;
    s3 += treg[6]->amount + (long)treg[2]->day;
    s0 += reg[3]->next_all->balance + (long)reg[7]->ntxns;
    s1 += treg[2]->acct->id + per_day[10];
    s3 += reg[7]->balance + reg[2]->activity;
    s0 += treg[7]->serial + (long)treg[3]->day;
    s1 += reg[4]->next_all->activity + (long)reg[0]->ntxns;
    s2 += treg[3]->acct->balance + per_day[17];

    return s0 + 3 * s1 - s2 + 7 * s3;
}

/* ----------------------------------------------------------------- main */

static char sample[] =
    "# accounts\n"
    "A 101 alice 0\n"
    "A 102 bob 1\n"
    "A 103 carol 1\n"
    "A 104 dave 2\n"
    "A 105 erin 0\n"
    "A 106 frank 2\n"
    "# transactions\n"
    "T 1 101 500 3\n"
    "T 2 102 250 3\n"
    "T 3 101 -120 4\n"
    "T 4 103 900 5\n"
    "T 5 104 40 5\n"
    "T 6 105 775 5\n"
    "T 7 101 60 6\n"
    "T 8 106 -30 7\n"
    "T 9 102 310 8\n"
    "T 10 103 -45 9\n";

int main(int argc, char **argv)
{
    int loaded, bad;
    long applied, sum1, sum2;

    table_init();
    loaded = load_text(sample);
    printf("loaded %d rows\n", loaded);
    if (argc > 1)
        printf("ignoring extra input %s\n", argv[1]);

    applied = link_and_apply();
    printf("applied %ld\n", applied);

    sum1 = report("id");
    sum2 = report("balance");
    if (sum1 != sum2)
        errors++;

    query_run("balance > 100");
    query_run("kind = 1 & activity > 0");
    query_run("!(balance < 0) | ntxns > 2");
    query_run("(kind = 0 | kind = 2) & !!(id > 103)");
    query_run("balance + activity > 2 * ntxns + 100");
    query_run("-balance < 0 & balance - activity = 0");
    query_run("(balance + -50) * 2 > 100 | kind = 2 & ntxns > 1");
    query_run("2 * 3 + 4 < balance & !(id = 104)");

    applied = build_statements();
    printf("ledger total %ld\n", applied);
    release_statements();

    fill_registers();
    printf("audit %ld\n", audit_books());

    if (delete_by_name("carol")) {
        printf("deleted carol\n");
        applied = link_and_apply();
        printf("reapplied %ld\n", applied);
        fill_registers();
        printf("re-audit %ld\n", audit_books());
    }

    report("name");
    bad = check_all("name");
    if (bad > 0 || errors > 0) {
        printf("integrity: %d bad, %d errors\n", bad, errors);
        return 1;
    }
    printf("ok\n");
    return 0;
}
