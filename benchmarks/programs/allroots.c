/* allroots - find all roots of a real polynomial by Newton iteration with
 * deflation.  Mirrors the smallest Landi-Ryder benchmark: a handful of
 * procedures, arrays of doubles, pointer-based output parameters. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define MAXDEG 16
#define EPS 1e-9
#define MAXITER 60

static double coeffs[MAXDEG + 1];
static double work[MAXDEG + 1];
static double roots[MAXDEG];
static int degree;

/* Evaluate polynomial p (degree n) and its derivative at x. */
void eval_poly(double *p, int n, double x, double *val, double *dval)
{
    int i;
    double v = p[n];
    double d = 0.0;
    for (i = n - 1; i >= 0; i--) {
        d = d * x + v;
        v = v * x + p[i];
    }
    *val = v;
    *dval = d;
}

/* One Newton solve starting from x0; returns 1 on convergence. */
int newton(double *p, int n, double x0, double *root)
{
    int iter;
    double x = x0;
    for (iter = 0; iter < MAXITER; iter++) {
        double v, d;
        eval_poly(p, n, x, &v, &d);
        if (fabs(v) < EPS) {
            *root = x;
            return 1;
        }
        if (fabs(d) < EPS)
            break;
        x = x - v / d;
    }
    *root = x;
    return fabs(x) < 1e6;
}

/* Divide p by (x - r), leaving the quotient in q. */
void deflate(double *p, int n, double r, double *q)
{
    int i;
    double carry = p[n];
    for (i = n - 1; i >= 0; i--) {
        double next = p[i] + carry * r;
        q[i] = carry;
        carry = next;
    }
}

int find_roots(double *p, int n, double *out)
{
    int found = 0;
    int i;
    for (i = 0; i <= n; i++)
        work[i] = p[i];
    while (n > 0) {
        double r;
        if (!newton(work, n, 0.5 + 0.1 * found, &r))
            break;
        out[found++] = r;
        deflate(work, n, r, work);
        n--;
    }
    return found;
}

int main(void)
{
    int i, nroots;
    degree = 5;
    coeffs[0] = -120.0; coeffs[1] = 274.0; coeffs[2] = -225.0;
    coeffs[3] = 85.0; coeffs[4] = -15.0; coeffs[5] = 1.0;
    nroots = find_roots(coeffs, degree, roots);
    for (i = 0; i < nroots; i++)
        printf("root %d = %f\n", i, roots[i]);
    return nroots == degree ? 0 : 1;
}
