/* eqntott - boolean equation to truth table conversion in the style of the
 * SPECint92 benchmark: parse boolean expressions into heap trees, build
 * truth tables by recursive evaluation, and minimize by merging compatible
 * rows.  Pointer-chasing over expression nodes dominates. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define MAXVARS 8
#define MAXROWS 256

enum ekind { E_VAR, E_NOT, E_AND, E_OR, E_XOR, E_CONST };

struct expr {
    enum ekind kind;
    int var;                 /* E_VAR: variable index; E_CONST: value */
    struct expr *left;
    struct expr *right;
};

struct row {
    unsigned char inputs[MAXVARS];   /* 0, 1, or 2 = don't care */
    unsigned char output;
};

static const char *input_text;
static int input_pos;
static char var_names[MAXVARS][8];
static int nvars;
static struct row table[MAXROWS];
static int nrows;
static int parse_trouble;

/* ----- parsing: or_expr := and_expr {'|' and_expr} ... ----- */

struct expr *parse_or(void);

int peek(void)
{
    while (input_text[input_pos] == ' ')
        input_pos++;
    return input_text[input_pos];
}

int advance(void)
{
    int c = peek();
    if (c != '\0')
        input_pos++;
    return c;
}

struct expr *new_expr(enum ekind kind, struct expr *l, struct expr *r)
{
    struct expr *e = malloc(sizeof(struct expr));
    e->kind = kind;
    e->var = 0;
    e->left = l;
    e->right = r;
    return e;
}

int var_index(const char *name)
{
    int i;
    for (i = 0; i < nvars; i++)
        if (strcmp(var_names[i], name) == 0)
            return i;
    strncpy(var_names[nvars], name, 7);
    var_names[nvars][7] = '\0';
    return nvars++;
}

struct expr *parse_atom(void)
{
    int c = peek();
    if (c == '(') {
        struct expr *e;
        advance();
        e = parse_or();
        if (peek() == ')')
            advance();
        else
            parse_trouble++;
        return e;
    }
    if (c == '!') {
        advance();
        return new_expr(E_NOT, parse_atom(), 0);
    }
    if (c == '0' || c == '1') {
        struct expr *e = new_expr(E_CONST, 0, 0);
        e->var = advance() - '0';
        return e;
    }
    if (isalpha(c)) {
        char name[8];
        int n = 0;
        while (isalnum(peek()) && n < 7)
            name[n++] = (char)advance();
        name[n] = '\0';
        {
            struct expr *e = new_expr(E_VAR, 0, 0);
            e->var = var_index(name);
            return e;
        }
    }
    parse_trouble++;
    advance();
    return new_expr(E_CONST, 0, 0);
}

struct expr *parse_xor(void)
{
    struct expr *left = parse_atom();
    while (peek() == '^') {
        advance();
        left = new_expr(E_XOR, left, parse_atom());
    }
    return left;
}

struct expr *parse_and(void)
{
    struct expr *left = parse_xor();
    while (peek() == '&') {
        advance();
        left = new_expr(E_AND, left, parse_xor());
    }
    return left;
}

struct expr *parse_or(void)
{
    struct expr *left = parse_and();
    while (peek() == '|') {
        advance();
        left = new_expr(E_OR, left, parse_and());
    }
    return left;
}

struct expr *parse_equation(const char *text)
{
    input_text = text;
    input_pos = 0;
    return parse_or();
}

/* ----- evaluation ----- */

int eval_expr(struct expr *e, unsigned char *assignment)
{
    switch (e->kind) {
    case E_CONST: return e->var;
    case E_VAR:   return assignment[e->var];
    case E_NOT:   return !eval_expr(e->left, assignment);
    case E_AND:   return eval_expr(e->left, assignment) & eval_expr(e->right, assignment);
    case E_OR:    return eval_expr(e->left, assignment) | eval_expr(e->right, assignment);
    case E_XOR:   return eval_expr(e->left, assignment) ^ eval_expr(e->right, assignment);
    }
    return 0;
}

void build_table(struct expr *e)
{
    int total = 1 << nvars;
    int i, v;
    unsigned char assignment[MAXVARS];
    nrows = 0;
    for (i = 0; i < total && nrows < MAXROWS; i++) {
        struct row *r = &table[nrows++];
        for (v = 0; v < nvars; v++) {
            assignment[v] = (unsigned char)((i >> v) & 1);
            r->inputs[v] = assignment[v];
        }
        r->output = (unsigned char)eval_expr(e, assignment);
    }
}

/* two rows merge when they differ in exactly one input and agree on
 * output; the differing input becomes a don't-care */
int try_merge(struct row *a, struct row *b)
{
    int v, diff = -1;
    if (a->output != b->output)
        return 0;
    for (v = 0; v < nvars; v++) {
        if (a->inputs[v] != b->inputs[v]) {
            if (a->inputs[v] == 2 || b->inputs[v] == 2)
                return 0;
            if (diff >= 0)
                return 0;
            diff = v;
        }
    }
    if (diff < 0)
        return 0;
    a->inputs[diff] = 2;
    return 1;
}

int minimize(void)
{
    int merged = 1;
    int rounds = 0;
    while (merged) {
        int i, j;
        merged = 0;
        rounds++;
        for (i = 0; i < nrows; i++) {
            for (j = i + 1; j < nrows; j++) {
                if (try_merge(&table[i], &table[j])) {
                    table[j] = table[--nrows];
                    merged = 1;
                }
            }
        }
    }
    return rounds;
}

int count_ones(void)
{
    int i, n = 0;
    for (i = 0; i < nrows; i++)
        if (table[i].output)
            n++;
    return n;
}

void print_table(void)
{
    int i, v;
    for (v = 0; v < nvars; v++)
        printf("%s ", var_names[v]);
    printf("| out\n");
    for (i = 0; i < nrows; i++) {
        for (v = 0; v < nvars; v++) {
            int c = table[i].inputs[v];
            printf("%c ", c == 2 ? '-' : '0' + c);
        }
        printf("| %d\n", table[i].output);
    }
}

void free_expr(struct expr *e)
{
    if (e == 0)
        return;
    free_expr(e->left);
    free_expr(e->right);
    free(e);
}

int main(void)
{
    struct expr *eq = parse_equation("(a & b) | (!a & c) ^ (b & !c) | d");
    build_table(eq);
    minimize();
    print_table();
    printf("rows=%d ones=%d trouble=%d\n", nrows, count_ones(), parse_trouble);
    free_expr(eq);
    return parse_trouble == 0 ? 0 : 1;
}
