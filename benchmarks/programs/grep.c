/* grep - a small regular-expression line matcher in the style of the
 * classic Unix utility: literal chars, '.', '*', '^'/'$' anchors, and
 * character classes.  Heavy char-pointer walking. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define MAXLINE 512
#define MAXPAT 128

static char pattern[MAXPAT];
static long match_count;
static long line_count;

int match_here(char *regexp, char *text);

/* match c against one pattern element starting at regexp; returns the
 * length of the element or 0 if it does not match */
int match_class(char *cls, int c, int *len)
{
    char *p = cls + 1;     /* past '[' */
    int negate = 0;
    int hit = 0;
    if (*p == '^') {
        negate = 1;
        p++;
    }
    while (*p && *p != ']') {
        if (p[1] == '-' && p[2] && p[2] != ']') {
            if (c >= p[0] && c <= p[2])
                hit = 1;
            p += 3;
        } else {
            if (*p == c)
                hit = 1;
            p++;
        }
    }
    *len = (int)(p - cls) + 1;
    return negate ? !hit : hit;
}

int match_one(char *regexp, int c, int *len)
{
    if (*regexp == '[')
        return match_class(regexp, c, len);
    *len = 1;
    if (*regexp == '.')
        return c != '\0';
    return *regexp == c;
}

/* match_star: search for zero or more of the leading element */
int match_star(char *elem, int elen, char *rest, char *text)
{
    char *t = text;
    do {
        if (match_here(rest, t))
            return 1;
        int dummy;
        if (!*t || !match_one(elem, *t, &dummy))
            return 0;
        t++;
    } while (1);
}

int match_here(char *regexp, char *text)
{
    int len;
    if (regexp[0] == '\0')
        return 1;
    if (regexp[0] == '$' && regexp[1] == '\0')
        return *text == '\0';
    if (regexp[0] != '[' ) {
        if (regexp[1] == '*')
            return match_star(regexp, 1, regexp + 2, text);
    } else {
        int dummy;
        match_one(regexp, *text ? *text : 'x', &len);
        if (regexp[len] == '*')
            return match_star(regexp, len, regexp + len + 1, text);
    }
    if (match_one(regexp, *text, &len) && *text)
        return match_here(regexp + len, text + len > text ? text + 1 : text);
    return 0;
}

int match(char *regexp, char *text)
{
    if (regexp[0] == '^')
        return match_here(regexp + 1, text);
    do {
        if (match_here(regexp, text))
            return 1;
    } while (*text++ != '\0');
    return 0;
}

/* strip the trailing newline, returning the line length */
int chomp(char *line)
{
    int n = (int)strlen(line);
    if (n > 0 && line[n - 1] == '\n') {
        line[n - 1] = '\0';
        n--;
    }
    return n;
}

void grep_stream(FILE *f, char *pat, int invert)
{
    char line[MAXLINE];
    while (fgets(line, MAXLINE, f) != NULL) {
        line_count++;
        chomp(line);
        int hit = match(pat, line);
        if (invert)
            hit = !hit;
        if (hit) {
            match_count++;
            puts(line);
        }
    }
}

/* a tiny built-in corpus so the benchmark is self-contained */
static char *corpus[] = {
    "the quick brown fox",
    "jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
    "how vexingly quick daft zebras jump",
    "sphinx of black quartz judge my vow",
    0,
};

void grep_corpus(char *pat)
{
    char **lp;
    char buf[MAXLINE];
    for (lp = corpus; *lp != 0; lp++) {
        line_count++;
        strcpy(buf, *lp);
        if (match(pat, buf)) {
            match_count++;
        }
    }
}

int main(int argc, char **argv)
{
    char *pat = "qu.*k";
    if (argc > 1)
        pat = argv[1];
    strncpy(pattern, pat, MAXPAT - 1);
    pattern[MAXPAT - 1] = '\0';
    grep_corpus(pattern);
    printf("%ld of %ld lines matched\n", match_count, line_count);
    return match_count > 0 ? 0 : 1;
}
