/* football - a sports statistics program in the style of the Landi-Ryder
 * benchmark: team and game records, standings computation, ranking with
 * qsort and comparator function pointers, schedule strength, and report
 * formatting. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define MAXTEAMS 28
#define MAXGAMES 256

struct team {
    char name[24];
    int wins, losses, ties;
    int points_for, points_against;
    double rating;
    struct team *division_next;
};

struct game {
    int home, away;
    int home_score, away_score;
    int week;
};

struct division {
    char name[16];
    struct team *members;
    int count;
};

static struct team teams[MAXTEAMS];
static int nteams;
static struct game games[MAXGAMES];
static int ngames;
static struct division divisions[4];
static int ndivisions;
static struct team *ranking[MAXTEAMS];

int add_team(const char *name, int division)
{
    struct team *t = &teams[nteams];
    struct division *d = &divisions[division];
    strncpy(t->name, name, sizeof(t->name) - 1);
    t->name[sizeof(t->name) - 1] = '\0';
    t->wins = t->losses = t->ties = 0;
    t->points_for = t->points_against = 0;
    t->rating = 0.0;
    t->division_next = d->members;
    d->members = t;
    d->count++;
    return nteams++;
}

int add_division(const char *name)
{
    struct division *d = &divisions[ndivisions];
    strncpy(d->name, name, sizeof(d->name) - 1);
    d->name[sizeof(d->name) - 1] = '\0';
    d->members = 0;
    d->count = 0;
    return ndivisions++;
}

void add_game(int week, int home, int hs, int away, int as)
{
    struct game *g = &games[ngames++];
    g->week = week;
    g->home = home;
    g->away = away;
    g->home_score = hs;
    g->away_score = as;
}

void score_game(struct game *g)
{
    struct team *h = &teams[g->home];
    struct team *a = &teams[g->away];
    h->points_for += g->home_score;
    h->points_against += g->away_score;
    a->points_for += g->away_score;
    a->points_against += g->home_score;
    if (g->home_score > g->away_score) {
        h->wins++;
        a->losses++;
    } else if (g->home_score < g->away_score) {
        a->wins++;
        h->losses++;
    } else {
        h->ties++;
        a->ties++;
    }
}

void compute_standings(void)
{
    int i;
    for (i = 0; i < ngames; i++)
        score_game(&games[i]);
}

double win_percentage(struct team *t)
{
    int played = t->wins + t->losses + t->ties;
    if (played == 0)
        return 0.0;
    return (t->wins + 0.5 * t->ties) / played;
}

void compute_ratings(void)
{
    int i;
    for (i = 0; i < nteams; i++) {
        struct team *t = &teams[i];
        double pct = win_percentage(t);
        double margin = (double)(t->points_for - t->points_against);
        t->rating = 100.0 * pct + margin / 10.0;
    }
}

/* comparators for qsort: ranked by rating, or by points scored */
int by_rating(const void *a, const void *b)
{
    struct team *ta = *(struct team **)a;
    struct team *tb = *(struct team **)b;
    if (ta->rating < tb->rating) return 1;
    if (ta->rating > tb->rating) return -1;
    return 0;
}

int by_offense(const void *a, const void *b)
{
    struct team *ta = *(struct team **)a;
    struct team *tb = *(struct team **)b;
    return tb->points_for - ta->points_for;
}

void rank_teams(int (*cmp)(const void *, const void *))
{
    int i;
    for (i = 0; i < nteams; i++)
        ranking[i] = &teams[i];
    qsort(ranking, nteams, sizeof(struct team *), cmp);
}

struct team *division_leader(struct division *d)
{
    struct team *best = 0;
    struct team *t;
    for (t = d->members; t != 0; t = t->division_next) {
        if (best == 0 || t->rating > best->rating)
            best = t;
    }
    return best;
}

void print_report(void)
{
    int i;
    printf("%-24s %3s %3s %3s %6s\n", "TEAM", "W", "L", "T", "RATING");
    for (i = 0; i < nteams; i++) {
        struct team *t = ranking[i];
        printf("%-24s %3d %3d %3d %6.1f\n",
               t->name, t->wins, t->losses, t->ties, t->rating);
    }
    for (i = 0; i < ndivisions; i++) {
        struct team *lead = division_leader(&divisions[i]);
        if (lead != 0)
            printf("%s leader: %s\n", divisions[i].name, lead->name);
    }
}

void build_league(void)
{
    int east = add_division("East");
    int west = add_division("West");
    int bears = add_team("Bears", east);
    int lions = add_team("Lions", east);
    int packers = add_team("Packers", east);
    int rams = add_team("Rams", west);
    int hawks = add_team("Seahawks", west);
    int niners = add_team("49ers", west);
    add_game(1, bears, 21, lions, 14);
    add_game(1, packers, 7, rams, 10);
    add_game(1, hawks, 24, niners, 24);
    add_game(2, bears, 17, packers, 20);
    add_game(2, lions, 3, hawks, 31);
    add_game(2, rams, 14, niners, 28);
    add_game(3, bears, 10, rams, 13);
    add_game(3, packers, 27, hawks, 20);
    add_game(3, lions, 6, niners, 30);
}

int main(void)
{
    build_league();
    compute_standings();
    compute_ratings();
    rank_teams(by_rating);
    print_report();
    rank_teams(by_offense);
    printf("best offense: %s\n", ranking[0]->name);
    return 0;
}
