/* assembler - a two-pass assembler for a toy RISC instruction set: opcode
 * table lookups, a chained-hash symbol table, forward-reference fixups,
 * expression evaluation in operands, and binary emission. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define SYMHASH 97
#define MAXOUT 1024
#define MAXLINE 96

/* ----- instruction set ----- */

struct opdef {
    const char *mnemonic;
    int opcode;
    int operands;           /* number of operands */
    int has_target;         /* last operand is a label/address */
};

static struct opdef opcodes[] = {
    { "nop",  0x00, 0, 0 },
    { "mov",  0x01, 2, 0 },
    { "add",  0x02, 2, 0 },
    { "sub",  0x03, 2, 0 },
    { "mul",  0x04, 2, 0 },
    { "load", 0x05, 2, 1 },
    { "store",0x06, 2, 1 },
    { "jmp",  0x07, 1, 1 },
    { "jz",   0x08, 2, 1 },
    { "call", 0x09, 1, 1 },
    { "ret",  0x0a, 0, 0 },
    { "halt", 0x0f, 0, 0 },
    { 0, 0, 0, 0 },
};

/* ----- symbols ----- */

struct asym {
    struct asym *next;
    char name[20];
    int value;
    int defined;
};

struct fixup {
    struct fixup *next;
    int location;            /* word index to patch */
    struct asym *sym;
};

static struct asym *symtab[SYMHASH];
static struct fixup *fixups;
static int out_words[MAXOUT];
static int out_len;
static int pass_errors;

unsigned hashname(const char *s)
{
    unsigned h = 0;
    while (*s)
        h = (h << 4) + (unsigned char)*s++;
    return h % SYMHASH;
}

struct asym *lookup(const char *name, int create)
{
    unsigned h = hashname(name);
    struct asym *s;
    for (s = symtab[h]; s != 0; s = s->next)
        if (strcmp(s->name, name) == 0)
            return s;
    if (!create)
        return 0;
    s = malloc(sizeof(struct asym));
    strncpy(s->name, name, sizeof(s->name) - 1);
    s->name[sizeof(s->name) - 1] = '\0';
    s->value = 0;
    s->defined = 0;
    s->next = symtab[h];
    symtab[h] = s;
    return s;
}

void define_label(const char *name, int value)
{
    struct asym *s = lookup(name, 1);
    if (s->defined)
        pass_errors++;
    s->defined = 1;
    s->value = value;
}

void note_fixup(int location, struct asym *sym)
{
    struct fixup *f = malloc(sizeof(struct fixup));
    f->location = location;
    f->sym = sym;
    f->next = fixups;
    fixups = f;
}

/* ----- parsing helpers ----- */

const char *skip_ws(const char *p)
{
    while (*p == ' ' || *p == '\t')
        p++;
    return p;
}

const char *get_word(const char *p, char *out, int cap)
{
    int n = 0;
    p = skip_ws(p);
    while ((isalnum((unsigned char)*p) || *p == '_') && n < cap - 1)
        out[n++] = *p++;
    out[n] = '\0';
    return p;
}

struct opdef *find_op(const char *mnemonic)
{
    struct opdef *op;
    for (op = opcodes; op->mnemonic != 0; op++)
        if (strcmp(op->mnemonic, mnemonic) == 0)
            return op;
    return 0;
}

int parse_number(const char *word, int *ok)
{
    int v = 0;
    const char *p = word;
    *ok = 1;
    if (*p == '\0') {
        *ok = 0;
        return 0;
    }
    while (*p) {
        if (!isdigit((unsigned char)*p)) {
            *ok = 0;
            return 0;
        }
        v = v * 10 + (*p++ - '0');
    }
    return v;
}

/* operand: register (rN), number, or symbol */
int eval_operand(const char *word, int location, int is_target)
{
    int ok;
    int v;
    if (word[0] == 'r' && isdigit((unsigned char)word[1]))
        return word[1] - '0';
    v = parse_number(word, &ok);
    if (ok)
        return v;
    {
        struct asym *s = lookup(word, 1);
        if (s->defined)
            return s->value;
        if (is_target) {
            note_fixup(location, s);
            return 0;
        }
        pass_errors++;
        return 0;
    }
}

void emit_word(int w)
{
    if (out_len < MAXOUT)
        out_words[out_len] = w;
    out_len++;
}

/* ----- assembly of one line ----- */

void assemble_line(const char *line)
{
    char word[32];
    const char *p = line;
    struct opdef *op;
    int i;
    p = skip_ws(p);
    if (*p == '\0' || *p == ';')
        return;
    p = get_word(p, word, sizeof(word));
    p = skip_ws(p);
    if (*p == ':') {
        define_label(word, out_len);
        p++;
        p = get_word(p, word, sizeof(word));
    }
    if (word[0] == '\0')
        return;
    op = find_op(word);
    if (op == 0) {
        pass_errors++;
        return;
    }
    emit_word(op->opcode);
    for (i = 0; i < op->operands; i++) {
        int is_target = op->has_target && i == op->operands - 1;
        p = get_word(p, word, sizeof(word));
        emit_word(eval_operand(word, out_len, is_target));
        p = skip_ws(p);
        if (*p == ',')
            p++;
    }
}

void apply_fixups(void)
{
    struct fixup *f;
    for (f = fixups; f != 0; f = f->next) {
        if (!f->sym->defined) {
            pass_errors++;
            continue;
        }
        if (f->location < MAXOUT)
            out_words[f->location] = f->sym->value;
    }
}

int checksum(void)
{
    int i, sum = 0;
    for (i = 0; i < out_len && i < MAXOUT; i++)
        sum = sum * 31 + out_words[i];
    return sum;
}

void release(void)
{
    int i;
    struct fixup *f = fixups;
    while (f != 0) {
        struct fixup *n = f->next;
        free(f);
        f = n;
    }
    for (i = 0; i < SYMHASH; i++) {
        struct asym *s = symtab[i];
        while (s != 0) {
            struct asym *n = s->next;
            free(s);
            s = n;
        }
    }
}

static const char *source_lines[] = {
    "        mov r1, 0",
    "        mov r2, 10",
    "loop:   add r1, r2",
    "        sub r2, 1",
    "        jz r2, done",
    "        jmp loop",
    "done:   store r1, total",
    "        halt",
    "total:  nop",
    0,
};

int main(void)
{
    const char **lp;
    for (lp = source_lines; *lp != 0; lp++)
        assemble_line(*lp);
    apply_fixups();
    printf("words=%d errors=%d checksum=%08x\n",
           out_len, pass_errors, checksum());
    release();
    return pass_errors == 0 ? 0 : 1;
}
