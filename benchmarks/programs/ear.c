/* ear - a human auditory model in the style of SPECfp92 ear: a cascade of
 * second-order filter sections per cochlea channel, half-wave rectification,
 * automatic gain control, and short-window energy output.  Lots of *small*
 * FP loops: the paper's Table 3 shows the parallelized ear achieving only
 * 1.42/1.63 speedup because each loop invocation is ~0.2 ms. */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define NCHANNELS 64
#define NSAMPLES 128
#define AGC_STAGES 3
#define WINDOW 32

struct biquad {
    double a1, a2;           /* poles */
    double b0, b1, b2;       /* zeros */
    double z1, z2;           /* state */
};

static double input_wave[NSAMPLES];
static struct biquad filters[NCHANNELS];
static double channel_out[NCHANNELS][NSAMPLES];
static double rectified[NCHANNELS][NSAMPLES];
static double agc_state[NCHANNELS][AGC_STAGES];
static double energy[NCHANNELS][NSAMPLES / WINDOW];

void make_input(void)
{
    int i;
    for (i = 0; i < NSAMPLES; i++) {
        double t = (double)i / NSAMPLES;
        input_wave[i] = sin(55.0 * t) + 0.5 * sin(220.0 * t) +
                        0.25 * sin(880.0 * t);
    }
}

void design_filters(void)
{
    int ch;
    for (ch = 0; ch < NCHANNELS; ch++) {
        struct biquad *f = &filters[ch];
        double cf = 0.45 * exp(-0.03 * ch);    /* center frequency */
        double q = 4.0;
        double r = 1.0 - cf / q;
        f->a1 = -2.0 * r * cos(2.0 * 3.14159265 * cf);
        f->a2 = r * r;
        f->b0 = (1.0 - r) * 0.5;
        f->b1 = 0.0;
        f->b2 = -(1.0 - r) * 0.5;
        f->z1 = f->z2 = 0.0;
    }
}

/* run one biquad over the input; the per-call work is deliberately small */
void filter_channel(struct biquad *f, double *in, double *out, int n)
{
    int i;
    double z1 = f->z1, z2 = f->z2;
    for (i = 0; i < n; i++) {
        double x = in[i];
        double y = f->b0 * x + z1;
        z1 = f->b1 * x - f->a1 * y + z2;
        z2 = f->b2 * x - f->a2 * y;
        out[i] = y;
    }
    f->z1 = z1;
    f->z2 = z2;
}

void rectify_channel(double *in, double *out, int n)
{
    int i;
    for (i = 0; i < n; i++)
        out[i] = in[i] > 0.0 ? in[i] : 0.0;
}

double agc_step(double *state, double x)
{
    int s;
    double v = x;
    for (s = 0; s < AGC_STAGES; s++) {
        state[s] = 0.995 * state[s] + 0.005 * v;
        v = v / (1.0 + state[s]);
    }
    return v;
}

void agc_channel(double *state, double *data, int n)
{
    int i;
    for (i = 0; i < n; i++)
        data[i] = agc_step(state, data[i]);
}

void window_energy(double *data, double *out, int n)
{
    int w, i;
    int windows = n / WINDOW;
    for (w = 0; w < windows; w++) {
        double sum = 0.0;
        double *seg = data + w * WINDOW;
        for (i = 0; i < WINDOW; i++)
            sum += seg[i] * seg[i];
        out[w] = sqrt(sum / WINDOW);
    }
}

void process_channel(int ch)
{
    filter_channel(&filters[ch], input_wave, channel_out[ch], NSAMPLES);
    rectify_channel(channel_out[ch], rectified[ch], NSAMPLES);
    agc_channel(agc_state[ch], rectified[ch], NSAMPLES);
    window_energy(rectified[ch], energy[ch], NSAMPLES);
}

void process_all(void)
{
    int ch;
    for (ch = 0; ch < NCHANNELS; ch++)
        process_channel(ch);
}

double total_energy(void)
{
    int ch, w;
    double sum = 0.0;
    for (ch = 0; ch < NCHANNELS; ch++)
        for (w = 0; w < NSAMPLES / WINDOW; w++)
            sum += energy[ch][w];
    return sum;
}

int peak_channel(void)
{
    int ch, best = 0;
    double best_e = -1.0;
    for (ch = 0; ch < NCHANNELS; ch++) {
        double e = 0.0;
        int w;
        for (w = 0; w < NSAMPLES / WINDOW; w++)
            e += energy[ch][w];
        if (e > best_e) {
            best_e = e;
            best = ch;
        }
    }
    return best;
}

int main(void)
{
    make_input();
    design_filters();
    process_all();
    printf("total=%f peak=%d\n", total_energy(), peak_channel());
    return 0;
}
