/* alvinn - backpropagation network training, modelled on the SPECfp92
 * benchmark (the autonomous land vehicle net).  Dense FP loops over weight
 * matrices; this is one of the two programs the paper parallelizes
 * (Table 3: 97.7% parallel, 7.4 ms/loop, speedups 1.95 / 3.50). */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

#define NUM_INPUT 1220
#define NUM_HIDDEN 30
#define NUM_OUTPUT 30
#define NUM_EPOCHS 4
#define ETA 0.1
#define MOMENTUM 0.9

static double input_units[NUM_INPUT];
static double hidden_units[NUM_HIDDEN];
static double output_units[NUM_OUTPUT];
static double target_units[NUM_OUTPUT];

static double in_to_hid[NUM_HIDDEN][NUM_INPUT];
static double hid_to_out[NUM_OUTPUT][NUM_HIDDEN];
static double in_to_hid_delta[NUM_HIDDEN][NUM_INPUT];
static double hid_to_out_delta[NUM_OUTPUT][NUM_HIDDEN];

static double hidden_errors[NUM_HIDDEN];
static double output_errors[NUM_OUTPUT];

double squash(double x)
{
    return 1.0 / (1.0 + exp(-x));
}

/* forward pass: input -> hidden */
void input_to_hidden(double *in, double *hid)
{
    int h, i;
    for (h = 0; h < NUM_HIDDEN; h++) {
        double sum = 0.0;
        double *w = in_to_hid[h];
        for (i = 0; i < NUM_INPUT; i++)
            sum += w[i] * in[i];
        hid[h] = squash(sum);
    }
}

/* forward pass: hidden -> output */
void hidden_to_output(double *hid, double *out)
{
    int o, h;
    for (o = 0; o < NUM_OUTPUT; o++) {
        double sum = 0.0;
        double *w = hid_to_out[o];
        for (h = 0; h < NUM_HIDDEN; h++)
            sum += w[h] * hid[h];
        out[o] = squash(sum);
    }
}

void output_error(double *out, double *target, double *err)
{
    int o;
    for (o = 0; o < NUM_OUTPUT; o++) {
        double t = target[o] - out[o];
        err[o] = t * out[o] * (1.0 - out[o]);
    }
}

void hidden_error(double *hid, double *oerr, double *herr)
{
    int h, o;
    for (h = 0; h < NUM_HIDDEN; h++) {
        double sum = 0.0;
        for (o = 0; o < NUM_OUTPUT; o++)
            sum += oerr[o] * hid_to_out[o][h];
        herr[h] = sum * hid[h] * (1.0 - hid[h]);
    }
}

void adjust_hid_to_out(double *hid, double *oerr)
{
    int o, h;
    for (o = 0; o < NUM_OUTPUT; o++) {
        double *w = hid_to_out[o];
        double *d = hid_to_out_delta[o];
        for (h = 0; h < NUM_HIDDEN; h++) {
            double delta = ETA * oerr[o] * hid[h] + MOMENTUM * d[h];
            w[h] += delta;
            d[h] = delta;
        }
    }
}

void adjust_in_to_hid(double *in, double *herr)
{
    int h, i;
    for (h = 0; h < NUM_HIDDEN; h++) {
        double *w = in_to_hid[h];
        double *d = in_to_hid_delta[h];
        for (i = 0; i < NUM_INPUT; i++) {
            double delta = ETA * herr[h] * in[i] + MOMENTUM * d[i];
            w[i] += delta;
            d[i] = delta;
        }
    }
}

void load_pattern(int seed)
{
    int i;
    for (i = 0; i < NUM_INPUT; i++)
        input_units[i] = ((seed * 37 + i * 13) % 100) / 100.0;
    for (i = 0; i < NUM_OUTPUT; i++)
        target_units[i] = ((seed + i) % 2) ? 0.9 : 0.1;
}

double train_epoch(int seed)
{
    int o;
    double err = 0.0;
    load_pattern(seed);
    input_to_hidden(input_units, hidden_units);
    hidden_to_output(hidden_units, output_units);
    output_error(output_units, target_units, output_errors);
    hidden_error(hidden_units, output_errors, hidden_errors);
    adjust_hid_to_out(hidden_units, output_errors);
    adjust_in_to_hid(input_units, hidden_errors);
    for (o = 0; o < NUM_OUTPUT; o++) {
        double t = target_units[o] - output_units[o];
        err += t * t;
    }
    return err;
}

int main(void)
{
    int epoch;
    double err = 0.0;
    for (epoch = 0; epoch < NUM_EPOCHS; epoch++)
        err = train_epoch(epoch);
    printf("final error %f\n", err);
    return err < 100.0 ? 0 : 1;
}
