/* compress - LZW compression/decompression over an in-memory buffer, in
 * the style of SPECint92 compress: a code table implemented with hashing,
 * bit-packed output, and a decompressor that rebuilds the string table. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define HSIZE 5003
#define BITS 12
#define MAXCODE ((1 << BITS) - 1)
#define FIRST 257
#define CLEAR 256

static long hash_tab[HSIZE];
static int code_tab[HSIZE];
static int free_code;

static unsigned char inbuf[4096];
static unsigned short outbuf[4096];
static unsigned char result[8192];
static int in_len, out_len, result_len;

/* decompressor string table */
static int prefix_of[1 << BITS];
static unsigned char suffix_of[1 << BITS];
static unsigned char stack_buf[1 << BITS];

void cl_hash(void)
{
    int i;
    for (i = 0; i < HSIZE; i++)
        hash_tab[i] = -1;
    free_code = FIRST;
}

int hash_probe(int code, int c)
{
    long key = ((long)c << BITS) + code;
    int h = (int)((key * 2654435761u) % HSIZE);
    int step = h == 0 ? 1 : HSIZE - h;
    while (hash_tab[h] != -1) {
        if (hash_tab[h] == key)
            return h;
        h -= step;
        if (h < 0)
            h += HSIZE;
    }
    return h;
}

void put_code(int code)
{
    outbuf[out_len++] = (unsigned short)code;
}

int compress_buffer(void)
{
    int i;
    int ent;
    cl_hash();
    out_len = 0;
    if (in_len == 0)
        return 0;
    ent = inbuf[0];
    for (i = 1; i < in_len; i++) {
        int c = inbuf[i];
        long key = ((long)c << BITS) + ent;
        int h = hash_probe(ent, c);
        if (hash_tab[h] == key) {
            ent = code_tab[h];
            continue;
        }
        put_code(ent);
        if (free_code <= MAXCODE) {
            hash_tab[h] = key;
            code_tab[h] = free_code++;
        } else {
            put_code(CLEAR);
            cl_hash();
        }
        ent = c;
    }
    put_code(ent);
    return out_len;
}

void reset_table(void)
{
    int i;
    for (i = 0; i < FIRST; i++) {
        prefix_of[i] = -1;
        suffix_of[i] = (unsigned char)i;
    }
    free_code = FIRST;
}

/* expand one code onto the stack; returns count of bytes */
int expand_code(int code, unsigned char *stack)
{
    int sp = 0;
    while (code >= 0 && prefix_of[code] != -1) {
        stack[sp++] = suffix_of[code];
        code = prefix_of[code];
    }
    stack[sp++] = suffix_of[code];
    return sp;
}

void emit_reversed(unsigned char *stack, int sp)
{
    while (sp > 0)
        result[result_len++] = stack[--sp];
}

int decompress_buffer(void)
{
    int i;
    int old_code = -1;
    int final_char = 0;
    reset_table();
    result_len = 0;
    for (i = 0; i < out_len; i++) {
        int code = outbuf[i];
        int sp;
        if (code == CLEAR) {
            reset_table();
            old_code = -1;
            continue;
        }
        if (old_code == -1) {
            result[result_len++] = suffix_of[code];
            final_char = code;
            old_code = code;
            continue;
        }
        if (code >= free_code) {
            /* KwKwK case: code not yet in table */
            sp = expand_code(old_code, stack_buf);
            stack_buf[sp] = stack_buf[sp - 1];
            sp++;
        } else {
            sp = expand_code(code, stack_buf);
        }
        final_char = stack_buf[sp - 1];
        emit_reversed(stack_buf, sp);
        if (free_code <= MAXCODE) {
            prefix_of[free_code] = old_code;
            suffix_of[free_code] = (unsigned char)final_char;
            free_code++;
        }
        old_code = code;
    }
    return result_len;
}

void fill_input(void)
{
    int i;
    const char *seed = "the rain in spain stays mainly in the plain ";
    int slen = (int)strlen(seed);
    in_len = 2048;
    for (i = 0; i < in_len; i++)
        inbuf[i] = (unsigned char)seed[i % slen];
}

int verify(void)
{
    int i;
    if (result_len != in_len)
        return 0;
    for (i = 0; i < in_len; i++)
        if (result[i] != inbuf[i])
            return 0;
    return 1;
}

int main(void)
{
    int codes;
    fill_input();
    codes = compress_buffer();
    decompress_buffer();
    printf("in=%d codes=%d out=%d ok=%d\n", in_len, codes, result_len, verify());
    return verify() ? 0 : 1;
}
