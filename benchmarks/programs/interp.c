/* interp - a tree-walking interpreter for a small Lisp-like language:
 * reader building heap cells, a hash-bucketed symbol table, environment
 * chains, a recursive evaluator with function-pointer builtins, and a
 * mark phase over the live object graph.  The largest program in the
 * local suite: long procedures with deep dominator chains and global
 * pointer state consulted from everywhere, which makes it the stress
 * test for the sparse representation's lookup path (§4.2). */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

/* ----- cells ----- */

enum ctag { C_NIL, C_NUM, C_SYM, C_PAIR, C_BUILTIN, C_LAMBDA };

struct cell {
    enum ctag tag;
    long num;
    char *sym;
    struct cell *car;
    struct cell *cdr;
    struct cell *(*fn)(struct cell *args, struct cell *env);
    struct cell *params;
    struct cell *body;
    struct cell *captured;
    int mark;
    struct cell *next_alloc;
};

static struct cell *nil_cell;
static struct cell *true_cell;
static struct cell *all_cells;
static long cells_alive;
static long cells_made;

/* ----- symbol table ----- */

#define NBUCKETS 64

struct symentry {
    char *name;
    struct cell *symbol;
    struct symentry *next;
};

static struct symentry *buckets[NBUCKETS];
static int nsymbols;

/* ----- reader state ----- */

static char *input;
static int read_errors;

/* ----- evaluator state ----- */

static struct cell *global_env;
static struct cell *sym_quote;
static struct cell *sym_if;
static struct cell *sym_define;
static struct cell *sym_lambda;
static struct cell *sym_begin;
static struct cell *sym_set;
static struct cell *sym_while;
static long eval_depth;
static long eval_calls;

/* ----- allocation ----- */

struct cell *new_cell(enum ctag tag)
{
    struct cell *c = (struct cell *)malloc(sizeof(struct cell));
    c->tag = tag;
    c->num = 0;
    c->sym = 0;
    c->car = 0;
    c->cdr = 0;
    c->fn = 0;
    c->params = 0;
    c->body = 0;
    c->captured = 0;
    c->mark = 0;
    c->next_alloc = all_cells;
    all_cells = c;
    cells_made = cells_made + 1;
    cells_alive = cells_alive + 1;
    return c;
}

struct cell *make_num(long v)
{
    struct cell *c = new_cell(C_NUM);
    c->num = v;
    return c;
}

struct cell *cons(struct cell *a, struct cell *d)
{
    struct cell *c = new_cell(C_PAIR);
    c->car = a;
    c->cdr = d;
    return c;
}

/* ----- symbols ----- */

unsigned hash_name(char *name)
{
    unsigned h = 5381;
    char *p = name;
    while (*p) {
        h = h * 33 + (unsigned char)*p;
        p = p + 1;
    }
    return h % NBUCKETS;
}

struct cell *intern(char *name)
{
    unsigned h = hash_name(name);
    struct symentry *e = buckets[h];
    while (e) {
        if (strcmp(e->name, name) == 0)
            return e->symbol;
        e = e->next;
    }
    e = (struct symentry *)malloc(sizeof(struct symentry));
    e->name = (char *)malloc(strlen(name) + 1);
    strcpy(e->name, name);
    e->symbol = new_cell(C_SYM);
    e->symbol->sym = e->name;
    e->next = buckets[h];
    buckets[h] = e;
    nsymbols = nsymbols + 1;
    return e->symbol;
}

/* ----- reader ----- */

void skip_space(void)
{
    while (*input) {
        if (isspace((unsigned char)*input)) {
            input = input + 1;
        } else if (*input == ';') {
            while (*input && *input != '\n')
                input = input + 1;
        } else {
            break;
        }
    }
}

struct cell *read_expr(void);

struct cell *read_list(void)
{
    struct cell *head = nil_cell;
    struct cell *tail = nil_cell;
    skip_space();
    while (*input && *input != ')') {
        struct cell *item = read_expr();
        struct cell *link = cons(item, nil_cell);
        if (head == nil_cell) {
            head = link;
            tail = link;
        } else {
            tail->cdr = link;
            tail = link;
        }
        skip_space();
    }
    if (*input == ')')
        input = input + 1;
    else
        read_errors = read_errors + 1;
    return head;
}

struct cell *read_atom(void)
{
    char buf[64];
    int n = 0;
    if (isdigit((unsigned char)*input) ||
        (*input == '-' && isdigit((unsigned char)input[1]))) {
        long v = 0;
        long sign = 1;
        if (*input == '-') {
            sign = -1;
            input = input + 1;
        }
        while (isdigit((unsigned char)*input)) {
            v = v * 10 + (*input - '0');
            input = input + 1;
        }
        return make_num(v * sign);
    }
    while (*input && !isspace((unsigned char)*input) &&
           *input != '(' && *input != ')' && n < 63) {
        buf[n] = *input;
        n = n + 1;
        input = input + 1;
    }
    buf[n] = 0;
    if (n == 0) {
        read_errors = read_errors + 1;
        return nil_cell;
    }
    return intern(buf);
}

struct cell *read_expr(void)
{
    skip_space();
    if (*input == '(') {
        input = input + 1;
        return read_list();
    }
    if (*input == '\'') {
        input = input + 1;
        return cons(sym_quote, cons(read_expr(), nil_cell));
    }
    return read_atom();
}

/* ----- environments ----- */

struct cell *env_extend(struct cell *parent)
{
    /* an environment is (bindings . parent); bindings is an alist */
    return cons(nil_cell, parent);
}

void env_define(struct cell *env, struct cell *sym, struct cell *val)
{
    struct cell *binding = cons(sym, val);
    env->car = cons(binding, env->car);
}

struct cell *env_lookup(struct cell *env, struct cell *sym)
{
    struct cell *frame = env;
    while (frame != nil_cell) {
        struct cell *b = frame->car;
        while (b != nil_cell) {
            struct cell *binding = b->car;
            if (binding->car == sym)
                return binding->cdr;
            b = b->cdr;
        }
        frame = frame->cdr;
    }
    return nil_cell;
}

int env_set(struct cell *env, struct cell *sym, struct cell *val)
{
    struct cell *frame = env;
    while (frame != nil_cell) {
        struct cell *b = frame->car;
        while (b != nil_cell) {
            struct cell *binding = b->car;
            if (binding->car == sym) {
                binding->cdr = val;
                return 1;
            }
            b = b->cdr;
        }
        frame = frame->cdr;
    }
    return 0;
}

/* ----- builtins ----- */

struct cell *eval(struct cell *expr, struct cell *env);

struct cell *eval_list(struct cell *args, struct cell *env)
{
    struct cell *head = nil_cell;
    struct cell *tail = nil_cell;
    struct cell *a = args;
    while (a != nil_cell) {
        struct cell *v = eval(a->car, env);
        struct cell *link = cons(v, nil_cell);
        if (head == nil_cell) {
            head = link;
            tail = link;
        } else {
            tail->cdr = link;
            tail = link;
        }
        a = a->cdr;
    }
    return head;
}

struct cell *builtin_add(struct cell *args, struct cell *env)
{
    long acc = 0;
    struct cell *a = args;
    while (a != nil_cell) {
        if (a->car->tag == C_NUM)
            acc = acc + a->car->num;
        a = a->cdr;
    }
    return make_num(acc);
}

struct cell *builtin_sub(struct cell *args, struct cell *env)
{
    long acc = 0;
    struct cell *a = args;
    if (a != nil_cell && a->car->tag == C_NUM) {
        acc = a->car->num;
        a = a->cdr;
        if (a == nil_cell)
            return make_num(-acc);
    }
    while (a != nil_cell) {
        if (a->car->tag == C_NUM)
            acc = acc - a->car->num;
        a = a->cdr;
    }
    return make_num(acc);
}

struct cell *builtin_mul(struct cell *args, struct cell *env)
{
    long acc = 1;
    struct cell *a = args;
    while (a != nil_cell) {
        if (a->car->tag == C_NUM)
            acc = acc * a->car->num;
        a = a->cdr;
    }
    return make_num(acc);
}

struct cell *builtin_lt(struct cell *args, struct cell *env)
{
    struct cell *a = args;
    if (a == nil_cell || a->cdr == nil_cell)
        return nil_cell;
    if (a->car->tag == C_NUM && a->cdr->car->tag == C_NUM &&
        a->car->num < a->cdr->car->num)
        return true_cell;
    return nil_cell;
}

struct cell *builtin_eq(struct cell *args, struct cell *env)
{
    struct cell *a = args;
    if (a == nil_cell || a->cdr == nil_cell)
        return nil_cell;
    if (a->car->tag == C_NUM && a->cdr->car->tag == C_NUM) {
        if (a->car->num == a->cdr->car->num)
            return true_cell;
        return nil_cell;
    }
    if (a->car == a->cdr->car)
        return true_cell;
    return nil_cell;
}

struct cell *builtin_cons(struct cell *args, struct cell *env)
{
    struct cell *a = args;
    if (a == nil_cell || a->cdr == nil_cell)
        return nil_cell;
    return cons(a->car, a->cdr->car);
}

struct cell *builtin_car(struct cell *args, struct cell *env)
{
    if (args == nil_cell || args->car->tag != C_PAIR)
        return nil_cell;
    return args->car->car;
}

struct cell *builtin_cdr(struct cell *args, struct cell *env)
{
    if (args == nil_cell || args->car->tag != C_PAIR)
        return nil_cell;
    return args->car->cdr;
}

struct cell *builtin_list(struct cell *args, struct cell *env)
{
    return args;
}

struct cell *builtin_nullp(struct cell *args, struct cell *env)
{
    if (args != nil_cell && args->car == nil_cell)
        return true_cell;
    return nil_cell;
}

struct cell *builtin_print(struct cell *args, struct cell *env)
{
    struct cell *a = args;
    while (a != nil_cell) {
        if (a->car->tag == C_NUM)
            printf("%ld ", a->car->num);
        else if (a->car->tag == C_SYM)
            printf("%s ", a->car->sym);
        a = a->cdr;
    }
    printf("\n");
    return nil_cell;
}

/* ----- the evaluator ----- */

struct cell *eval_sequence(struct cell *body, struct cell *env)
{
    struct cell *result = nil_cell;
    struct cell *b = body;
    while (b != nil_cell) {
        result = eval(b->car, env);
        b = b->cdr;
    }
    return result;
}

struct cell *apply(struct cell *fn, struct cell *args, struct cell *env)
{
    if (fn->tag == C_BUILTIN)
        return fn->fn(args, env);
    if (fn->tag == C_LAMBDA) {
        struct cell *frame = env_extend(fn->captured);
        struct cell *p = fn->params;
        struct cell *a = args;
        while (p != nil_cell) {
            if (a != nil_cell) {
                env_define(frame, p->car, a->car);
                a = a->cdr;
            } else {
                env_define(frame, p->car, nil_cell);
            }
            p = p->cdr;
        }
        return eval_sequence(fn->body, frame);
    }
    return nil_cell;
}

struct cell *eval(struct cell *expr, struct cell *env)
{
    eval_calls = eval_calls + 1;
    eval_depth = eval_depth + 1;

    if (expr->tag == C_NUM || expr->tag == C_BUILTIN ||
        expr->tag == C_LAMBDA || expr == nil_cell) {
        eval_depth = eval_depth - 1;
        return expr;
    }
    if (expr->tag == C_SYM) {
        struct cell *v = env_lookup(env, expr);
        eval_depth = eval_depth - 1;
        return v;
    }
    /* a pair: special forms first */
    if (expr->car == sym_quote) {
        eval_depth = eval_depth - 1;
        return expr->cdr->car;
    }
    if (expr->car == sym_if) {
        struct cell *cond = eval(expr->cdr->car, env);
        struct cell *result;
        if (cond != nil_cell)
            result = eval(expr->cdr->cdr->car, env);
        else if (expr->cdr->cdr->cdr != nil_cell)
            result = eval(expr->cdr->cdr->cdr->car, env);
        else
            result = nil_cell;
        eval_depth = eval_depth - 1;
        return result;
    }
    if (expr->car == sym_define) {
        struct cell *name = expr->cdr->car;
        struct cell *val = eval(expr->cdr->cdr->car, env);
        env_define(env, name, val);
        eval_depth = eval_depth - 1;
        return val;
    }
    if (expr->car == sym_set) {
        struct cell *name = expr->cdr->car;
        struct cell *val = eval(expr->cdr->cdr->car, env);
        if (!env_set(env, name, val))
            env_define(global_env, name, val);
        eval_depth = eval_depth - 1;
        return val;
    }
    if (expr->car == sym_lambda) {
        struct cell *fn = new_cell(C_LAMBDA);
        fn->params = expr->cdr->car;
        fn->body = expr->cdr->cdr;
        fn->captured = env;
        eval_depth = eval_depth - 1;
        return fn;
    }
    if (expr->car == sym_begin) {
        struct cell *result = eval_sequence(expr->cdr, env);
        eval_depth = eval_depth - 1;
        return result;
    }
    if (expr->car == sym_while) {
        struct cell *result = nil_cell;
        while (eval(expr->cdr->car, env) != nil_cell)
            result = eval_sequence(expr->cdr->cdr, env);
        eval_depth = eval_depth - 1;
        return result;
    }
    /* application */
    {
        struct cell *fn = eval(expr->car, env);
        struct cell *args = eval_list(expr->cdr, env);
        struct cell *result = apply(fn, args, env);
        eval_depth = eval_depth - 1;
        return result;
    }
}

/* ----- mark phase ----- */

long mark_cell(struct cell *c)
{
    long n = 0;
    if (c == 0 || c->mark)
        return 0;
    c->mark = 1;
    n = 1;
    n = n + mark_cell(c->car);
    n = n + mark_cell(c->cdr);
    n = n + mark_cell(c->params);
    n = n + mark_cell(c->body);
    n = n + mark_cell(c->captured);
    return n;
}

long mark_roots(void)
{
    long n = 0;
    int i = 0;
    n = n + mark_cell(global_env);
    n = n + mark_cell(nil_cell);
    n = n + mark_cell(true_cell);
    while (i < NBUCKETS) {
        struct symentry *e = buckets[i];
        while (e) {
            n = n + mark_cell(e->symbol);
            e = e->next;
        }
        i = i + 1;
    }
    return n;
}

void clear_marks(void)
{
    struct cell *c = all_cells;
    while (c) {
        c->mark = 0;
        c = c->next_alloc;
    }
}

/* ----- setup ----- */

void def_builtin(char *name, struct cell *(*fn)(struct cell *, struct cell *))
{
    struct cell *b = new_cell(C_BUILTIN);
    struct cell *sym = intern(name);
    b->fn = fn;
    env_define(global_env, sym, b);
}

void setup(void)
{
    nil_cell = new_cell(C_NIL);
    true_cell = new_cell(C_SYM);
    true_cell->sym = "t";
    global_env = cons(nil_cell, nil_cell);

    sym_quote = intern("quote");
    sym_if = intern("if");
    sym_define = intern("define");
    sym_lambda = intern("lambda");
    sym_begin = intern("begin");
    sym_set = intern("set!");
    sym_while = intern("while");

    def_builtin("+", builtin_add);
    def_builtin("-", builtin_sub);
    def_builtin("*", builtin_mul);
    def_builtin("<", builtin_lt);
    def_builtin("=", builtin_eq);
    def_builtin("cons", builtin_cons);
    def_builtin("car", builtin_car);
    def_builtin("cdr", builtin_cdr);
    def_builtin("list", builtin_list);
    def_builtin("null?", builtin_nullp);
    def_builtin("print", builtin_print);

    env_define(global_env, intern("t"), true_cell);
    env_define(global_env, intern("nil"), nil_cell);
}

/* ----- driver ----- */

static char program_text[] =
    "(define fib (lambda (n)"
    "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))"
    "(define count (lambda (xs)"
    "  (if (null? xs) 0 (+ 1 (count (cdr xs))))))"
    "(define xs (list 1 2 3 4 5))"
    "(define total 0)"
    "(define i 0)"
    "(while (< i 10)"
    "  (set! total (+ total (fib i)))"
    "  (set! i (+ i 1)))"
    "(print total (count xs))";

int run_program(char *text)
{
    struct cell *result = nil_cell;
    int exprs = 0;
    input = text;
    skip_space();
    while (*input) {
        struct cell *expr = read_expr();
        result = eval(expr, global_env);
        exprs = exprs + 1;
        skip_space();
    }
    if (result->tag == C_NUM)
        printf("=> %ld\n", result->num);
    return exprs;
}

int main(int argc, char **argv)
{
    int exprs;
    long live;

    setup();
    exprs = run_program(program_text);

    clear_marks();
    live = mark_roots();

    printf("exprs=%d symbols=%d cells=%ld live=%ld evals=%ld\n",
           exprs, nsymbols, cells_made, live, eval_calls);
    if (read_errors)
        printf("read errors: %d\n", read_errors);
    return 0;
}
