/* simulator - an instruction-level CPU simulator: decode via a function-
 * pointer dispatch table, simulated memory with an MMU-ish page table,
 * a device layer behind I/O handler pointers, and statistics.  This is
 * the largest Table-2 row, and stresses indirect calls. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define NREGS 8
#define PAGEBITS 6
#define PAGESIZE (1 << PAGEBITS)
#define NPAGES 16
#define MEMWORDS (NPAGES * PAGESIZE)
#define NDEVICES 4

/* ----- machine state ----- */

struct cpu {
    long regs[NREGS];
    int pc;
    int halted;
    long cycles;
};

struct page {
    long *frame;             /* backing storage, or 0 if unmapped */
    int dirty;
    int referenced;
};

struct device {
    const char *name;
    long (*read_fn)(int unit);
    void (*write_fn)(int unit, long value);
    long last_value;
};

static struct cpu cpu;
static struct page page_table[NPAGES];
static long phys_mem[MEMWORDS];
static struct device devices[NDEVICES];
static long instr_counts[16];

/* ----- memory system ----- */

long *resolve(int addr)
{
    int page = (addr >> PAGEBITS) & (NPAGES - 1);
    int offset = addr & (PAGESIZE - 1);
    struct page *p = &page_table[page];
    if (p->frame == 0) {
        p->frame = &phys_mem[page * PAGESIZE];   /* demand map */
    }
    p->referenced = 1;
    return p->frame + offset;
}

long mem_read(int addr)
{
    return *resolve(addr);
}

void mem_write(int addr, long value)
{
    int page = (addr >> PAGEBITS) & (NPAGES - 1);
    long *cell = resolve(addr);
    page_table[page].dirty = 1;
    *cell = value;
}

/* ----- devices ----- */

static long console_buffer;

long console_read(int unit)
{
    return console_buffer;
}

void console_write(int unit, long value)
{
    console_buffer = value;
    devices[unit].last_value = value;
}

static long counter_ticks;

long counter_read(int unit)
{
    return counter_ticks++;
}

void counter_write(int unit, long value)
{
    counter_ticks = value;
}

long null_read(int unit)
{
    return 0;
}

void null_write(int unit, long value)
{
    devices[unit].last_value = value;
}

void init_devices(void)
{
    devices[0].name = "console";
    devices[0].read_fn = console_read;
    devices[0].write_fn = console_write;
    devices[1].name = "counter";
    devices[1].read_fn = counter_read;
    devices[1].write_fn = counter_write;
    devices[2].name = "null";
    devices[2].read_fn = null_read;
    devices[2].write_fn = null_write;
    devices[3].name = "null2";
    devices[3].read_fn = null_read;
    devices[3].write_fn = null_write;
}

long dev_read(int unit)
{
    struct device *d = &devices[unit & (NDEVICES - 1)];
    return d->read_fn(unit & (NDEVICES - 1));
}

void dev_write(int unit, long value)
{
    struct device *d = &devices[unit & (NDEVICES - 1)];
    d->write_fn(unit & (NDEVICES - 1), value);
}

/* ----- instruction set: fields op|r1|r2|imm ----- */

#define GET_OP(w)  (((w) >> 12) & 0xf)
#define GET_R1(w)  (((w) >> 9) & 0x7)
#define GET_R2(w)  (((w) >> 6) & 0x7)
#define GET_IMM(w) ((w) & 0x3f)

typedef void (*handler_fn)(int word);

void op_halt(int word)
{
    cpu.halted = 1;
}

void op_loadi(int word)
{
    cpu.regs[GET_R1(word)] = GET_IMM(word);
}

void op_mov(int word)
{
    cpu.regs[GET_R1(word)] = cpu.regs[GET_R2(word)];
}

void op_add(int word)
{
    cpu.regs[GET_R1(word)] += cpu.regs[GET_R2(word)];
}

void op_sub(int word)
{
    cpu.regs[GET_R1(word)] -= cpu.regs[GET_R2(word)];
}

void op_load(int word)
{
    cpu.regs[GET_R1(word)] = mem_read((int)cpu.regs[GET_R2(word)]);
}

void op_store(int word)
{
    mem_write((int)cpu.regs[GET_R2(word)], cpu.regs[GET_R1(word)]);
}

void op_jmp(int word)
{
    cpu.pc = GET_IMM(word);
}

void op_jnz(int word)
{
    if (cpu.regs[GET_R1(word)] != 0)
        cpu.pc = GET_IMM(word);
}

void op_in(int word)
{
    cpu.regs[GET_R1(word)] = dev_read(GET_IMM(word));
}

void op_out(int word)
{
    dev_write(GET_IMM(word), cpu.regs[GET_R1(word)]);
}

void op_nop(int word)
{
}

static handler_fn dispatch[16];

void init_dispatch(void)
{
    int i;
    for (i = 0; i < 16; i++)
        dispatch[i] = op_nop;
    dispatch[0] = op_halt;
    dispatch[1] = op_loadi;
    dispatch[2] = op_mov;
    dispatch[3] = op_add;
    dispatch[4] = op_sub;
    dispatch[5] = op_load;
    dispatch[6] = op_store;
    dispatch[7] = op_jmp;
    dispatch[8] = op_jnz;
    dispatch[9] = op_in;
    dispatch[10] = op_out;
}

/* ----- the fetch/decode/execute loop ----- */

void step(void)
{
    int word = (int)mem_read(cpu.pc);
    int op = GET_OP(word);
    cpu.pc++;
    instr_counts[op]++;
    cpu.cycles += (op == 5 || op == 6) ? 3 : 1;
    dispatch[op](word);
}

long run(int max_steps)
{
    int i;
    cpu.halted = 0;
    cpu.pc = 0;
    for (i = 0; i < max_steps && !cpu.halted; i++)
        step();
    return cpu.cycles;
}

/* ----- a small test program: sum 1..10 then print via console ----- */

#define INSTR(op, r1, r2, imm) \
    (((op) << 12) | ((r1) << 9) | ((r2) << 6) | (imm))

void load_test_program(void)
{
    int code[] = {
        INSTR(1, 0, 0, 0),    /* loadi r0, 0   ; sum */
        INSTR(1, 1, 0, 10),   /* loadi r1, 10  ; counter */
        INSTR(3, 0, 1, 0),    /* add r0, r1 */
        INSTR(1, 2, 0, 1),    /* loadi r2, 1 */
        INSTR(4, 1, 2, 0),    /* sub r1, r2 */
        INSTR(8, 1, 0, 2),    /* jnz r1, 2 */
        INSTR(10, 0, 0, 0),   /* out 0, r0 */
        INSTR(0, 0, 0, 0),    /* halt */
    };
    int i;
    for (i = 0; i < (int)(sizeof(code) / sizeof(code[0])); i++)
        mem_write(i, code[i]);
}

void report(void)
{
    int i, pages = 0;
    for (i = 0; i < NPAGES; i++)
        if (page_table[i].frame != 0)
            pages++;
    printf("cycles=%ld console=%ld pages=%d\n",
           cpu.cycles, console_buffer, pages);
    for (i = 0; i < 16; i++)
        if (instr_counts[i] != 0)
            printf("  op%-2d x%ld\n", i, instr_counts[i]);
}

int main(void)
{
    init_devices();
    init_dispatch();
    load_test_program();
    run(1000);
    report();
    return console_buffer == 55 ? 0 : 1;
}
