/* loader - a toy object-file loader/linker: parses object records from a
 * byte stream, builds symbol and section tables (hash table + linked
 * lists), resolves relocations, and "loads" segments into a flat memory
 * image.  Pointer-heavy systems code in the Landi-Ryder loader style. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define SYMHASH 64
#define MEMSIZE 8192
#define MAXSECT 16

struct symbol {
    struct symbol *next;     /* hash chain */
    char name[16];
    int section;
    int offset;
    int defined;
};

struct reloc {
    struct reloc *next;
    int section;
    int offset;
    char target[16];
};

struct section {
    char name[12];
    int base;                /* load address */
    int size;
    unsigned char *data;
};

static struct symbol *symtab[SYMHASH];
static struct reloc *relocs;
static struct section sections[MAXSECT];
static int nsections;
static unsigned char memory[MEMSIZE];
static int load_ptr;
static int errors;

unsigned sym_hash(const char *name)
{
    unsigned h = 0;
    while (*name)
        h = h * 31 + (unsigned char)*name++;
    return h % SYMHASH;
}

struct symbol *sym_lookup(const char *name, int create)
{
    unsigned h = sym_hash(name);
    struct symbol *s;
    for (s = symtab[h]; s != 0; s = s->next)
        if (strcmp(s->name, name) == 0)
            return s;
    if (!create)
        return 0;
    s = malloc(sizeof(struct symbol));
    strncpy(s->name, name, sizeof(s->name) - 1);
    s->name[sizeof(s->name) - 1] = '\0';
    s->section = -1;
    s->offset = 0;
    s->defined = 0;
    s->next = symtab[h];
    symtab[h] = s;
    return s;
}

int define_symbol(const char *name, int section, int offset)
{
    struct symbol *s = sym_lookup(name, 1);
    if (s->defined) {
        errors++;
        return -1;
    }
    s->defined = 1;
    s->section = section;
    s->offset = offset;
    return 0;
}

int add_section(const char *name, unsigned char *data, int size)
{
    struct section *sec = &sections[nsections];
    strncpy(sec->name, name, sizeof(sec->name) - 1);
    sec->name[sizeof(sec->name) - 1] = '\0';
    sec->data = data;
    sec->size = size;
    sec->base = -1;
    return nsections++;
}

void add_reloc(int section, int offset, const char *target)
{
    struct reloc *r = malloc(sizeof(struct reloc));
    r->section = section;
    r->offset = offset;
    strncpy(r->target, target, sizeof(r->target) - 1);
    r->target[sizeof(r->target) - 1] = '\0';
    r->next = relocs;
    relocs = r;
}

/* assign load addresses and copy section data into the image */
void layout_and_load(void)
{
    int i;
    for (i = 0; i < nsections; i++) {
        struct section *sec = &sections[i];
        sec->base = load_ptr;
        if (sec->data != 0)
            memcpy(memory + load_ptr, sec->data, sec->size);
        else
            memset(memory + load_ptr, 0, sec->size);
        load_ptr += (sec->size + 3) & ~3;   /* word align */
    }
}

int symbol_address(struct symbol *s)
{
    if (!s->defined || s->section < 0)
        return -1;
    return sections[s->section].base + s->offset;
}

void apply_relocs(void)
{
    struct reloc *r;
    for (r = relocs; r != 0; r = r->next) {
        struct symbol *s = sym_lookup(r->target, 0);
        int addr;
        unsigned char *patch;
        if (s == 0 || !s->defined) {
            errors++;
            continue;
        }
        addr = symbol_address(s);
        patch = memory + sections[r->section].base + r->offset;
        patch[0] = (unsigned char)(addr & 0xff);
        patch[1] = (unsigned char)((addr >> 8) & 0xff);
    }
}

int count_undefined(void)
{
    int i, n = 0;
    struct symbol *s;
    for (i = 0; i < SYMHASH; i++)
        for (s = symtab[i]; s != 0; s = s->next)
            if (!s->defined)
                n++;
    return n;
}

void free_all(void)
{
    int i;
    struct reloc *r = relocs;
    while (r != 0) {
        struct reloc *next = r->next;
        free(r);
        r = next;
    }
    for (i = 0; i < SYMHASH; i++) {
        struct symbol *s = symtab[i];
        while (s != 0) {
            struct symbol *next = s->next;
            free(s);
            s = next;
        }
        symtab[i] = 0;
    }
}

/* a tiny synthetic "object file" */
static unsigned char text_data[32] = { 0x90, 0x90, 0xe8, 0, 0, 0xc3 };
static unsigned char data_data[16] = { 1, 2, 3, 4 };

void build_input(void)
{
    int text = add_section(".text", text_data, sizeof(text_data));
    int data = add_section(".data", data_data, sizeof(data_data));
    int bss = add_section(".bss", 0, 64);
    define_symbol("start", text, 0);
    define_symbol("table", data, 0);
    define_symbol("buffer", bss, 0);
    add_reloc(text, 3, "table");
    add_reloc(text, 8, "buffer");
    sym_lookup("external_thing", 1);   /* referenced, never defined */
    add_reloc(data, 0, "external_thing");
}

int main(void)
{
    build_input();
    layout_and_load();
    apply_relocs();
    printf("sections=%d load=%d errors=%d undefined=%d\n",
           nsections, load_ptr, errors, count_undefined());
    free_all();
    return errors == 1 ? 0 : 1;   /* exactly the planted undefined ref */
}
