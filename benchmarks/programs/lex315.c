/* lex315 - a miniature lexer generator: compiles a set of token patterns
 * into an NFA, converts to a DFA-ish transition table, and scans input.
 * Modeled on the Landi-Ryder lex benchmark: tables, state structs, and
 * pointer-linked transition lists. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

#define MAXSTATES 128
#define MAXTOKENS 16
#define ALPHABET 128

struct transition {
    struct transition *next;
    int on_char;            /* -1 for epsilon */
    int target;
};

struct state {
    struct transition *edges;
    int accepting;          /* token id + 1, or 0 */
};

struct token_def {
    char *name;
    char *pattern;
};

static struct state states[MAXSTATES];
static int nstates;
static int start_state;

static struct token_def tokens[MAXTOKENS] = {
    { "NUMBER", "dd*" },      /* d = digit */
    { "IDENT",  "aw*" },      /* a = alpha, w = alnum */
    { "WHITE",  "ss*" },      /* s = space */
    { "PLUS",   "+" },
    { "STAR",   "*" },
    { 0, 0 },
};

int new_state(void)
{
    struct state *s = &states[nstates];
    s->edges = 0;
    s->accepting = 0;
    return nstates++;
}

void add_edge(int from, int on_char, int target)
{
    struct transition *t = malloc(sizeof(struct transition));
    t->on_char = on_char;
    t->target = target;
    t->next = states[from].edges;
    states[from].edges = t;
}

int class_matches(int cls, int c)
{
    switch (cls) {
    case 'd': return isdigit(c);
    case 'a': return isalpha(c);
    case 'w': return isalnum(c);
    case 's': return isspace(c);
    default:  return cls == c;
    }
}

/* compile one pattern into the NFA; returns its entry state */
int compile_pattern(char *pat, int token_id)
{
    int entry = new_state();
    int cur = entry;
    char *p;
    for (p = pat; *p; p++) {
        if (p[1] == '*') {
            /* self loop on the class */
            add_edge(cur, *p, cur);
            p++;
        } else {
            int nxt = new_state();
            add_edge(cur, *p, nxt);
            cur = nxt;
        }
    }
    states[cur].accepting = token_id + 1;
    return entry;
}

void build_automaton(void)
{
    int i;
    start_state = new_state();
    for (i = 0; tokens[i].name != 0; i++) {
        int entry = compile_pattern(tokens[i].pattern, i);
        add_edge(start_state, -1, entry);
    }
}

/* step: follow one character from a state set (list of ints) */
int step_from(int state, int c)
{
    struct transition *t;
    for (t = states[state].edges; t != 0; t = t->next) {
        if (t->on_char >= 0 && class_matches(t->on_char, c))
            return t->target;
    }
    return -1;
}

/* longest-match scan of one token starting at *textp */
int scan_token(char **textp)
{
    char *text = *textp;
    struct transition *e;
    int best = -1;
    char *best_end = text;
    for (e = states[start_state].edges; e != 0; e = e->next) {
        int st = e->target;
        char *p = text;
        while (*p) {
            int nxt = step_from(st, *p);
            if (nxt < 0)
                break;
            st = nxt;
            p++;
        }
        if (states[st].accepting && p > best_end) {
            best = states[st].accepting - 1;
            best_end = p;
        } else if (states[st].accepting && best < 0 && p > text) {
            best = states[st].accepting - 1;
            best_end = p;
        }
    }
    if (best < 0) {
        (*textp)++;   /* skip bad char */
        return -1;
    }
    *textp = best_end;
    return best;
}

int lex_all(char *text, int *counts)
{
    int total = 0;
    char *p = text;
    while (*p) {
        int tok = scan_token(&p);
        if (tok >= 0) {
            counts[tok]++;
            total++;
        }
    }
    return total;
}

void free_edges(void)
{
    int i;
    for (i = 0; i < nstates; i++) {
        struct transition *t = states[i].edges;
        while (t != 0) {
            struct transition *next = t->next;
            free(t);
            t = next;
        }
        states[i].edges = 0;
    }
}

int main(void)
{
    int counts[MAXTOKENS];
    int i, total;
    char input[] = "x1 + y22 * 31415  foo9*bar + 7";
    memset(counts, 0, sizeof(counts));
    build_automaton();
    total = lex_all(input, counts);
    for (i = 0; tokens[i].name != 0; i++)
        printf("%-8s %d\n", tokens[i].name, counts[i]);
    free_edges();
    return total > 0 ? 0 : 1;
}
