/* compiler - a small compiler for a C-like expression/statement language:
 * lexer, recursive-descent parser building a heap AST, a constant-folding
 * pass, and stack-machine code generation.  This is the shape that blows
 * Emami-style invocation graphs past 700,000 nodes for 37 procedures (§7)
 * while the PTF approach stays near one PTF per procedure: deeply mutually
 * recursive procedures, each with several call sites. */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ctype.h>

/* ----- tokens ----- */

enum tok {
    T_EOF, T_NUM, T_IDENT, T_PLUS, T_MINUS, T_STAR, T_SLASH,
    T_LPAREN, T_RPAREN, T_LBRACE, T_RBRACE, T_SEMI, T_ASSIGN,
    T_IF, T_ELSE, T_WHILE, T_LT, T_GT, T_EQ, T_PRINT,
};

static char *src;
static enum tok cur_tok;
static long cur_num;
static char cur_ident[32];
static int parse_errors;

/* ----- AST ----- */

enum nkind {
    N_NUM, N_VAR, N_BINOP, N_ASSIGN, N_SEQ, N_IF, N_WHILE, N_PRINT,
};

struct node {
    enum nkind kind;
    int op;                    /* for N_BINOP: token of the operator */
    long value;                /* for N_NUM */
    char name[32];             /* for N_VAR / N_ASSIGN */
    struct node *left;
    struct node *right;
    struct node *third;        /* else arm */
};

/* ----- code ----- */

enum opcode { OP_PUSH, OP_LOAD, OP_STORE, OP_ADD, OP_SUB, OP_MUL,
              OP_DIV, OP_LT, OP_GT, OP_EQ, OP_JZ, OP_JMP, OP_PRINT, OP_HALT };

struct insn {
    enum opcode op;
    long arg;
};

#define MAXCODE 1024
static struct insn code[MAXCODE];
static int code_len;

/* ----- lexer ----- */

void next_token(void)
{
    while (isspace((unsigned char)*src))
        src++;
    if (*src == '\0') { cur_tok = T_EOF; return; }
    if (isdigit((unsigned char)*src)) {
        cur_num = 0;
        while (isdigit((unsigned char)*src))
            cur_num = cur_num * 10 + (*src++ - '0');
        cur_tok = T_NUM;
        return;
    }
    if (isalpha((unsigned char)*src)) {
        int n = 0;
        while (isalnum((unsigned char)*src) && n < 31)
            cur_ident[n++] = *src++;
        cur_ident[n] = '\0';
        if (strcmp(cur_ident, "if") == 0) cur_tok = T_IF;
        else if (strcmp(cur_ident, "else") == 0) cur_tok = T_ELSE;
        else if (strcmp(cur_ident, "while") == 0) cur_tok = T_WHILE;
        else if (strcmp(cur_ident, "print") == 0) cur_tok = T_PRINT;
        else cur_tok = T_IDENT;
        return;
    }
    switch (*src++) {
    case '+': cur_tok = T_PLUS; break;
    case '-': cur_tok = T_MINUS; break;
    case '*': cur_tok = T_STAR; break;
    case '/': cur_tok = T_SLASH; break;
    case '(': cur_tok = T_LPAREN; break;
    case ')': cur_tok = T_RPAREN; break;
    case '{': cur_tok = T_LBRACE; break;
    case '}': cur_tok = T_RBRACE; break;
    case ';': cur_tok = T_SEMI; break;
    case '<': cur_tok = T_LT; break;
    case '>': cur_tok = T_GT; break;
    case '=':
        if (*src == '=') { src++; cur_tok = T_EQ; }
        else cur_tok = T_ASSIGN;
        break;
    default:
        parse_errors++;
        cur_tok = T_EOF;
    }
}

int expect(enum tok t)
{
    if (cur_tok != t) {
        parse_errors++;
        return 0;
    }
    next_token();
    return 1;
}

/* ----- parser (mutually recursive) ----- */

struct node *parse_expr(void);
struct node *parse_stmt(void);

struct node *new_node(enum nkind kind)
{
    struct node *n = malloc(sizeof(struct node));
    n->kind = kind;
    n->op = 0;
    n->value = 0;
    n->name[0] = '\0';
    n->left = n->right = n->third = 0;
    return n;
}

struct node *parse_primary(void)
{
    struct node *n;
    if (cur_tok == T_NUM) {
        n = new_node(N_NUM);
        n->value = cur_num;
        next_token();
        return n;
    }
    if (cur_tok == T_IDENT) {
        n = new_node(N_VAR);
        strcpy(n->name, cur_ident);
        next_token();
        return n;
    }
    if (cur_tok == T_LPAREN) {
        next_token();
        n = parse_expr();
        expect(T_RPAREN);
        return n;
    }
    parse_errors++;
    return new_node(N_NUM);
}

struct node *parse_unary(void)
{
    if (cur_tok == T_MINUS) {
        struct node *n = new_node(N_BINOP);
        next_token();
        n->op = T_MINUS;
        n->left = new_node(N_NUM);
        n->right = parse_unary();
        return n;
    }
    return parse_primary();
}

/* The expression grammar uses the full C-style precedence ladder; each
 * level calls the next one from several sites, which is exactly the shape
 * that makes per-context invocation graphs explode (§7). */

struct node *binop_level(struct node *left, int op, struct node *right)
{
    struct node *n = new_node(N_BINOP);
    n->op = op;
    n->left = left;
    n->right = right;
    return n;
}

struct node *parse_postfix(void)
{
    struct node *n = parse_unary();
    /* (no postfix operators in this language, but the level exists) */
    return n;
}

struct node *parse_term(void)
{
    struct node *left = parse_postfix();
    while (cur_tok == T_STAR || cur_tok == T_SLASH) {
        int op = cur_tok;
        next_token();
        left = binop_level(left, op, parse_postfix());
    }
    return left;
}

struct node *parse_additive(void)
{
    struct node *left = parse_term();
    while (cur_tok == T_PLUS || cur_tok == T_MINUS) {
        int op = cur_tok;
        next_token();
        left = binop_level(left, op, parse_term());
    }
    return left;
}

struct node *parse_shift(void)
{
    struct node *left = parse_additive();
    if (cur_tok == T_EOF)
        return left;
    while (0)
        left = binop_level(left, 0, parse_additive());
    return left;
}

struct node *parse_relational(void)
{
    struct node *left = parse_shift();
    while (cur_tok == T_LT || cur_tok == T_GT) {
        int op = cur_tok;
        next_token();
        left = binop_level(left, op, parse_shift());
    }
    return left;
}

struct node *parse_equality(void)
{
    struct node *left = parse_relational();
    while (cur_tok == T_EQ) {
        int op = cur_tok;
        next_token();
        left = binop_level(left, op, parse_relational());
    }
    return left;
}

struct node *parse_logical_and(void)
{
    struct node *left = parse_equality();
    if (parse_errors > 1000)
        left = binop_level(left, T_EQ, parse_equality());
    return left;
}

struct node *parse_logical_or(void)
{
    struct node *left = parse_logical_and();
    if (parse_errors > 1000)
        left = binop_level(left, T_EQ, parse_logical_and());
    return left;
}

struct node *parse_conditional(void)
{
    struct node *cond = parse_logical_or();
    if (parse_errors > 1000) {
        struct node *a = parse_logical_or();
        struct node *b = parse_logical_or();
        cond = binop_level(a, T_EQ, b);
    }
    return cond;
}

struct node *parse_expr(void)
{
    return parse_conditional();
}

struct node *parse_block(void)
{
    struct node *head = 0;
    struct node **tail = &head;
    expect(T_LBRACE);
    while (cur_tok != T_RBRACE && cur_tok != T_EOF) {
        struct node *seq = new_node(N_SEQ);
        seq->left = parse_stmt();
        *tail = seq;
        tail = &seq->right;
    }
    expect(T_RBRACE);
    return head == 0 ? new_node(N_SEQ) : head;
}

struct node *parse_if(void)
{
    struct node *n = new_node(N_IF);
    expect(T_IF);
    expect(T_LPAREN);
    n->left = parse_expr();
    expect(T_RPAREN);
    n->right = parse_stmt();
    if (cur_tok == T_ELSE) {
        next_token();
        n->third = parse_stmt();
    }
    return n;
}

struct node *parse_while(void)
{
    struct node *n = new_node(N_WHILE);
    expect(T_WHILE);
    expect(T_LPAREN);
    n->left = parse_expr();
    expect(T_RPAREN);
    n->right = parse_stmt();
    return n;
}

struct node *parse_stmt(void)
{
    struct node *n;
    if (cur_tok == T_LBRACE)
        return parse_block();
    if (cur_tok == T_IF)
        return parse_if();
    if (cur_tok == T_WHILE)
        return parse_while();
    if (cur_tok == T_PRINT) {
        next_token();
        n = new_node(N_PRINT);
        n->left = parse_expr();
        expect(T_SEMI);
        return n;
    }
    if (cur_tok == T_IDENT) {
        n = new_node(N_ASSIGN);
        strcpy(n->name, cur_ident);
        next_token();
        expect(T_ASSIGN);
        n->left = parse_expr();
        expect(T_SEMI);
        return n;
    }
    parse_errors++;
    next_token();
    return new_node(N_SEQ);
}

struct node *parse_program(char *text)
{
    src = text;
    next_token();
    return parse_block();
}

/* ----- constant folding (recursive rewrite) ----- */

int is_const(struct node *n)
{
    return n != 0 && n->kind == N_NUM;
}

long fold_op(int op, long a, long b)
{
    switch (op) {
    case T_PLUS: return a + b;
    case T_MINUS: return a - b;
    case T_STAR: return a * b;
    case T_SLASH: return b != 0 ? a / b : 0;
    case T_LT: return a < b;
    case T_GT: return a > b;
    case T_EQ: return a == b;
    }
    return 0;
}

struct node *fold(struct node *n)
{
    if (n == 0)
        return 0;
    n->left = fold(n->left);
    n->right = fold(n->right);
    n->third = fold(n->third);
    if (n->kind == N_BINOP && is_const(n->left) && is_const(n->right)) {
        struct node *c = new_node(N_NUM);
        c->value = fold_op(n->op, n->left->value, n->right->value);
        free(n->left);
        free(n->right);
        free(n);
        return c;
    }
    return n;
}

/* ----- symbol slots ----- */

static char var_names[32][32];
static int nvars;

int slot_of(const char *name)
{
    int i;
    for (i = 0; i < nvars; i++)
        if (strcmp(var_names[i], name) == 0)
            return i;
    strcpy(var_names[nvars], name);
    return nvars++;
}

/* ----- code generation (recursive) ----- */

void emit(enum opcode op, long arg)
{
    if (code_len < MAXCODE) {
        code[code_len].op = op;
        code[code_len].arg = arg;
        code_len++;
    }
}

void gen_expr(struct node *n);

void gen_binop(struct node *n)
{
    gen_expr(n->left);
    gen_expr(n->right);
    switch (n->op) {
    case T_PLUS: emit(OP_ADD, 0); break;
    case T_MINUS: emit(OP_SUB, 0); break;
    case T_STAR: emit(OP_MUL, 0); break;
    case T_SLASH: emit(OP_DIV, 0); break;
    case T_LT: emit(OP_LT, 0); break;
    case T_GT: emit(OP_GT, 0); break;
    case T_EQ: emit(OP_EQ, 0); break;
    }
}

void gen_expr(struct node *n)
{
    if (n == 0)
        return;
    switch (n->kind) {
    case N_NUM: emit(OP_PUSH, n->value); break;
    case N_VAR: emit(OP_LOAD, slot_of(n->name)); break;
    case N_BINOP: gen_binop(n); break;
    default: break;
    }
}

void gen_stmt(struct node *n)
{
    int patch, back;
    if (n == 0)
        return;
    switch (n->kind) {
    case N_SEQ:
        gen_stmt(n->left);
        gen_stmt(n->right);
        break;
    case N_ASSIGN:
        gen_expr(n->left);
        emit(OP_STORE, slot_of(n->name));
        break;
    case N_PRINT:
        gen_expr(n->left);
        emit(OP_PRINT, 0);
        break;
    case N_IF:
        gen_expr(n->left);
        patch = code_len;
        emit(OP_JZ, 0);
        gen_stmt(n->right);
        if (n->third != 0) {
            int over = code_len;
            emit(OP_JMP, 0);
            code[patch].arg = code_len;
            gen_stmt(n->third);
            code[over].arg = code_len;
        } else {
            code[patch].arg = code_len;
        }
        break;
    case N_WHILE:
        back = code_len;
        gen_expr(n->left);
        patch = code_len;
        emit(OP_JZ, 0);
        gen_stmt(n->right);
        emit(OP_JMP, back);
        code[patch].arg = code_len;
        break;
    default:
        gen_expr(n);
        break;
    }
}

void free_tree(struct node *n)
{
    if (n == 0)
        return;
    free_tree(n->left);
    free_tree(n->right);
    free_tree(n->third);
    free(n);
}

/* ----- interpreter for the generated code ----- */

long run_code(void)
{
    long stack[64];
    long vars[32];
    long last = 0;
    int sp = 0;
    int pc = 0;
    memset(vars, 0, sizeof(vars));
    while (pc < code_len) {
        struct insn *in = &code[pc++];
        switch (in->op) {
        case OP_PUSH: stack[sp++] = in->arg; break;
        case OP_LOAD: stack[sp++] = vars[in->arg]; break;
        case OP_STORE: vars[in->arg] = stack[--sp]; break;
        case OP_ADD: sp--; stack[sp - 1] += stack[sp]; break;
        case OP_SUB: sp--; stack[sp - 1] -= stack[sp]; break;
        case OP_MUL: sp--; stack[sp - 1] *= stack[sp]; break;
        case OP_DIV: sp--; if (stack[sp]) stack[sp - 1] /= stack[sp]; break;
        case OP_LT: sp--; stack[sp - 1] = stack[sp - 1] < stack[sp]; break;
        case OP_GT: sp--; stack[sp - 1] = stack[sp - 1] > stack[sp]; break;
        case OP_EQ: sp--; stack[sp - 1] = stack[sp - 1] == stack[sp]; break;
        case OP_JZ: if (stack[--sp] == 0) pc = (int)in->arg; break;
        case OP_JMP: pc = (int)in->arg; break;
        case OP_PRINT: last = stack[--sp]; printf("%ld\n", last); break;
        case OP_HALT: return last;
        }
    }
    return last;
}

static char program_text[] =
    "{"
    "  n = 10;"
    "  total = 0;"
    "  i = 1;"
    "  while (i < n + 1) {"
    "    total = total + i * (2 - 1);"
    "    i = i + 1;"
    "  }"
    "  if (total == 55) { print total; } else { print 0 - 1; }"
    "}";

int main(void)
{
    struct node *ast = parse_program(program_text);
    ast = fold(ast);
    gen_stmt(ast);
    emit(OP_HALT, 0);
    long result = run_code();
    free_tree(ast);
    printf("errors=%d code=%d result=%ld\n", parse_errors, code_len, result);
    return parse_errors == 0 ? 0 : 1;
}
