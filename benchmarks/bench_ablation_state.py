"""Ablation: the paper's sparse representation (§4.2) vs dense maps.

The sparse scheme records points-to deltas only where they change and looks
values up through the dominator tree; the dense reference implementation
keeps a full map per node.  Both must compute identical results; the
trade-off under test is time/space.
"""

import pytest

from repro import AnalyzerOptions
from repro.bench import analyze_benchmark

SUBSET = ["grep", "compress", "loader", "eqntott"]


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("kind", ["sparse", "dense"])
def test_state_kind_time(benchmark, name, kind):
    result = benchmark.pedantic(
        analyze_benchmark,
        args=(name,),
        kwargs={"options": AnalyzerOptions(state_kind=kind)},
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["avg_ptfs"] = round(result.stats().avg_ptfs, 2)


@pytest.mark.parametrize("name", SUBSET)
def test_sparse_and_dense_agree(name):
    """The two representations are interchangeable: same points-to names
    for every global pointer variable."""
    import re

    def canon(names):
        # string-literal blocks carry a global site counter that differs
        # between program loads; compare by literal text only
        return {re.sub(r"@str\d+$", "", n) for n in names}

    sparse = analyze_benchmark(name, AnalyzerOptions(state_kind="sparse"))
    dense = analyze_benchmark(name, AnalyzerOptions(state_kind="dense"))
    for var, symbol in sparse.program.globals.items():
        s = canon(sparse.points_to_names("main", var))
        d = canon(dense.points_to_names("main", var))
        assert s == d, f"{name}: {var}: sparse {s} != dense {d}"


@pytest.mark.parametrize("name", SUBSET)
def test_sparse_stores_fewer_entries(name):
    """The sparse states record per-node deltas; dense states materialize
    full in/out maps.  Count stored bindings."""
    sparse = analyze_benchmark(name, AnalyzerOptions(state_kind="sparse"))
    dense = analyze_benchmark(name, AnalyzerOptions(state_kind="dense"))

    def stored(result, attr_names):
        total = 0
        for ptfs in result.analyzer.ptfs.values():
            for ptf in ptfs:
                for attr in attr_names:
                    maps = getattr(ptf.state, attr, None)
                    if maps:
                        total += sum(len(m) for m in maps.values())
        return total

    sparse_entries = stored(sparse, ["_defs"])
    dense_entries = stored(dense, ["_in", "_out"])
    assert sparse_entries < dense_entries, (sparse_entries, dense_entries)
