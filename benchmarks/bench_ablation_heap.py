"""Ablation: heap naming by static site vs call-chain context (§3).

The paper: "Including the call graph edges along which the new blocks are
returned ... can provide better precision for some programs [2]. ...
For now, we limit the allocation contexts to only include the static
allocation sites."

Measured: allocator-wrapper programs where per-site naming merges
logically distinct allocations, the added precision of chain depth 1-2,
and its time cost on the benchmark suite.
"""

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.bench import analyze_benchmark

WRAPPER = """
#include <stdlib.h>
struct vec { double *data; int len; };
void *xmalloc(unsigned n) { return malloc(n); }
void vec_init(struct vec *v, int n) {
    v->data = xmalloc(n * 8);
    v->len = n;
}
int main(void) {
    struct vec a, b;
    vec_init(&a, 8);
    vec_init(&b, 16);
    double *pa = a.data;
    double *pb = b.data;
    return 0;
}
"""


class TestPrecision:
    def test_site_naming_merges_wrapped_allocations(self):
        r = analyze_source(WRAPPER, options=AnalyzerOptions(heap_context_depth=0))
        pa = r.points_to_names("main", "pa")
        pb = r.points_to_names("main", "pb")
        assert pa == pb  # one static site inside xmalloc

    def test_depth_two_separates_vectors(self):
        r = analyze_source(WRAPPER, options=AnalyzerOptions(heap_context_depth=2))
        pa = r.points_to_names("main", "pa")
        pb = r.points_to_names("main", "pb")
        assert pa != pb

    def test_depth_one_keeps_outermost_edge(self):
        """Chains accumulate outermost-first as summaries cross call
        boundaries, so even depth 1 records the *distinct* main call sites
        (the static allocation site keeps the innermost distinction)."""
        r = analyze_source(WRAPPER, options=AnalyzerOptions(heap_context_depth=1))
        pa = r.points_to_names("main", "pa")
        pb = r.points_to_names("main", "pb")
        assert pa != pb
        assert all("main" in n for n in pa | pb)

    def test_block_counts_grow_with_depth(self):
        counts = {}
        for depth in (0, 1, 2):
            r = analyze_source(WRAPPER, options=AnalyzerOptions(heap_context_depth=depth))
            counts[depth] = len(r.analyzer._heap_blocks)
        assert counts[0] <= counts[1] <= counts[2]
        assert counts[0] < counts[2]


@pytest.mark.parametrize("name", ["diff", "lex315", "compiler"])
@pytest.mark.parametrize("depth", [0, 1])
def test_heap_context_time(benchmark, name, depth):
    result = benchmark.pedantic(
        analyze_benchmark,
        args=(name,),
        kwargs={"options": AnalyzerOptions(heap_context_depth=depth)},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["heap_blocks"] = len(result.analyzer._heap_blocks)
    benchmark.extra_info["avg_ptfs"] = round(result.stats().avg_ptfs, 2)
    assert result.stats().procedures > 0
