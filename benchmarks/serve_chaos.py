"""CI chaos gate for the serve daemon (docs/ROBUSTNESS.md §8).

End-to-end fault-tolerance proof over a real daemon subprocess:

1. index a benchmark program into a store, then index an edited copy
   (a new global + procedure, so every digest legitimately moves) into
   the hot-swap target;
2. start ``repro serve`` with rate limiting, injected serve faults
   (slow handlers + mid-request disconnects), an idle timeout, and
   ``--watch`` polling the serving store path;
3. run a chaos loadtest (misbehaving clients, answers verified against
   the union baseline of both stores) and, while it runs, first corrupt
   the serving store on disk — the watcher must *refuse* the reload and
   keep serving the old generation — then atomically promote the new
   store and require generation 2;
4. SIGTERM the daemon and require exit 0, a drained shutdown line, and
   **zero tracebacks** anywhere on its stderr.

Usage::

    python benchmarks/serve_chaos.py benchmarks/programs/grep.c \
        --workdir chaos-work [--clients 64] [--requests 50] [--quick]

Exit 0 iff every gate holds.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import time

#: appended to the program copy so the re-index produces a store whose
#: digests (including the globals digest) really moved
EDIT = """

int repro_chaos_extra_global;
int *repro_chaos_extra(void) { return &repro_chaos_extra_global; }
"""

SERVE_FAULTS = "seed=3,slow=0.03,disconnect=0.02,slow_ms=5"


def run(cmd: list[str], **kwargs) -> subprocess.CompletedProcess:
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kwargs)


def wait_for(predicate, timeout: float, what: str):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise SystemExit(f"chaos gate: timed out waiting for {what}")


def stderr_text(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError:
        return ""


def query_once(port: int, request: dict) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        fh = sock.makefile("rw", encoding="utf-8")
        fh.write(json.dumps(request) + "\n")
        fh.flush()
        return json.loads(fh.readline())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("program", help="benchmark .c file to index")
    parser.add_argument("--workdir", default="chaos-work")
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--quick", action="store_true",
                        help="8 clients x 20 requests (local smoke)")
    args = parser.parse_args(argv)
    clients = 8 if args.quick else args.clients
    requests = 20 if args.quick else args.requests

    work = args.workdir
    os.makedirs(work, exist_ok=True)
    prog = os.path.join(work, "prog.c")
    serving = os.path.join(work, "serving.store.json")
    store_a = os.path.join(work, "a.store.json")
    store_b = os.path.join(work, "b.store.json")
    stderr_path = os.path.join(work, "serve-stderr.txt")
    shutil.copyfile(args.program, prog)

    # 1. the two stores: the one served at startup, and the swap target
    run([sys.executable, "-m", "repro", "index", prog,
         "--name", "chaos", "-o", serving])
    shutil.copyfile(serving, store_a)
    with open(prog, "a", encoding="utf-8") as fh:
        fh.write(EDIT)
    run([sys.executable, "-m", "repro", "index", prog,
         "--name", "chaos", "-o", store_b])

    # 2. the daemon under test: overload protection + injected faults
    #    + the --watch poller on the serving store path
    stderr_fh = open(stderr_path, "w", encoding="utf-8")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", serving,
         "--tcp", "127.0.0.1:0",
         "--watch", "0.2",
         "--rate-limit", "2000", "--burst", "500",
         "--idle-timeout", "30",
         "--inject-serve-faults", SERVE_FAULTS,
         "--access-log", os.path.join(work, "access.jsonl")],
        stderr=stderr_fh,
    )
    try:
        wait_for(lambda: "repro: serving" in stderr_text(stderr_path),
                 30, "the daemon's serving announcement")
        match = re.search(r"repro: serving \S+ on [\d.]+:(\d+)",
                          stderr_text(stderr_path))
        assert match, stderr_text(stderr_path)
        port = int(match.group(1))

        # 3. chaos loadtest, with the corrupt-then-promote sequence
        #    happening under its live traffic; answers must match the
        #    union baseline (old-or-new, never a torn mix) — the
        #    loadtest's own chaos gate exits non-zero on any mismatch
        load = subprocess.Popen(
            [sys.executable, "-m", "repro", "loadtest", serving,
             "--tcp", f"127.0.0.1:{port}", "--chaos",
             "--clients", str(clients), "--requests", str(requests),
             "--expect-store", store_b,
             "--json", "-o", os.path.join(work, "chaos-report.json")],
        )

        # 3a. corrupt the serving store: the watcher must refuse it
        time.sleep(0.5)
        with open(serving, "w", encoding="utf-8") as fh:
            fh.write('{"format": "repro-store/1", "truncated')
        wait_for(lambda: "repro: reload failed" in stderr_text(stderr_path),
                 30, "the watcher's reload refusal")
        health = query_once(port, {"op": "health", "id": "gate"})
        assert health["ok"], health
        assert health["result"]["generation"] == 1, health

        # 3b. atomic promotion: the watcher must hot-swap to gen 2
        tmp = serving + ".new"
        shutil.copyfile(store_b, tmp)
        os.replace(tmp, serving)
        wait_for(lambda: "repro: reload: generation 2" in
                 stderr_text(stderr_path), 30, "the hot swap")
        health = query_once(port, {"op": "health", "id": "gate"})
        assert health["result"]["generation"] == 2, health

        code = load.wait(timeout=600)
        if code != 0:
            raise SystemExit(f"chaos gate: loadtest exited {code}")
        with open(os.path.join(work, "chaos-report.json"),
                  encoding="utf-8") as fh:
            report = json.load(fh)
        chaos = report["chaos"]
        assert chaos["mismatches"] == 0, chaos
        assert chaos["answers_read"] > 0, chaos

        # the daemon's own books for the run
        stats = query_once(port, {"op": "stats", "id": "gate"})["result"]
        server = stats["server"]
        assert server["generation"] == 2, server
        assert server["reload_failures"] >= 1, server

        # 4. SIGTERM drain: exit 0, shutdown line, no tracebacks
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=30)
        if code != 0:
            raise SystemExit(f"chaos gate: daemon exited {code} on SIGTERM")
        stderr = stderr_text(stderr_path)
        assert "repro: shutdown (SIGTERM)" in stderr, stderr[-2000:]
        if "Traceback" in stderr:
            print(stderr, file=sys.stderr)
            raise SystemExit("chaos gate: daemon stderr holds a traceback")

        print(
            f"chaos gate: {clients} clients x {requests} requests, "
            f"{chaos['answers_read']} answers verified "
            f"({chaos['sheds']} shed, {chaos['server_drops']} dropped, "
            f"{chaos['garbage']} garbage), refused 1 corrupt reload, "
            f"promoted generation 2, clean SIGTERM drain"
        )
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        stderr_fh.close()


if __name__ == "__main__":
    raise SystemExit(main())
