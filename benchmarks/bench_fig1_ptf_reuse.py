"""Figure 1 / Figures 3-4: PTF reuse on the paper's running example.

The 12-line example program is analyzed; S1 and S2 share one PTF because
their alias patterns match even though the actual parameters differ, and
S3 (where p and r alias) gets a second PTF.  The benchmark times the whole
analysis of the example.
"""

import pytest

from repro import analyze_source, AnalyzerOptions

FIG1 = """
int x, y, z;
int *x0, *y0, *z0;

void f(int **p, int **q, int **r) {
    *p = *q;
    *q = *r;
}

int main(void) {
    int test1 = 1, test2 = 0;
    x0 = &x; y0 = &y; z0 = &z;
    if (test1)
        f(&x0, &y0, &z0);      /* S1 */
    else if (test2)
        f(&z0, &x0, &y0);      /* S2 */
    else
        f(&x0, &y0, &x0);      /* S3 */
    return 0;
}
"""


@pytest.mark.parametrize("kind", ["sparse", "dense"])
def test_fig1_analysis(benchmark, kind):
    result = benchmark(
        analyze_source, FIG1, options=AnalyzerOptions(state_kind=kind)
    )
    # one PTF for S1+S2, one for S3
    assert len(result.ptfs_of("f")) == 2
    benchmark.extra_info["ptfs_f"] = len(result.ptfs_of("f"))
    benchmark.extra_info["reuses"] = result.analyzer.stats["ptf_reuses"]


def test_fig3_unaliased_ptf_shared_by_s1_s2():
    result = analyze_source(FIG1)
    # exactly one PTF binds p, q, r to three distinct parameters — it
    # serves both S1 and S2 (Figure 3's "Parametrized PTF for Calls at
    # S1 and S2")
    shared = 0
    for ptf in result.ptfs_of("f"):
        params = set()
        for e in ptf.initial_entries:
            if "::" in e.source.base.name:
                params |= {t.base.representative() for t in e.targets}
        if len(params) == 3:
            shared += 1
    assert shared == 1


def test_fig4_aliased_ptf_for_s3():
    result = analyze_source(FIG1)
    aliased = 0
    for ptf in result.ptfs_of("f"):
        by_formal = {}
        for e in ptf.initial_entries:
            if "::" in e.source.base.name:
                by_formal[e.source.base.name.split("::")[-1]] = {
                    t.base.representative() for t in e.targets
                }
        if by_formal.get("p") and by_formal.get("p") == by_formal.get("r"):
            aliased += 1
    assert aliased == 1


def test_case_analysis_not_needed_for_case_iii():
    """§2.1: Case III (may-alias-but-not-definite) never occurs in this
    program, so no third PTF exists."""
    result = analyze_source(FIG1)
    assert len(result.ptfs_of("f")) == 2
