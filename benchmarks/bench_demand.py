"""Demand-driven analysis benchmark (docs/QUERY.md §6).

Two modes:

**Sweep** (default): for every Table 2 benchmark, build the exhaustive
store once (timed), then answer the same queries from a fresh demand
analysis (timed: first query pays the slice fixpoint, warm queries hit
the memoized PTFs) and check the answers are byte-identical to the
store's.  ``--record`` appends the rows to ``BENCH_demand.json`` via the
demand-trajectory recorder.

**CI gate** (``--ci-gate compiler``): the end-to-end freshness contract —
index the compiler benchmark with a subprocess ``repro index``, serve the
store from an in-process :class:`QueryServer` with the demand tier
attached, edit one procedure, and assert that

* the first post-edit query is answered with ``mode: demand``,
* the demand answer is byte-identical to the answer after a full
  re-index + hot reload, and
* a warm demand query is at least ``--min-speedup`` (default 10x)
  faster than the full re-index.

Usage::

    python benchmarks/bench_demand.py [--record [PATH]]
    python benchmarks/bench_demand.py --ci-gate compiler --record

Exit 0 on success; an equality mismatch or a missed speedup gate exits
non-zero (CI treats both as a failed gate).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import AnalyzerOptions  # noqa: E402
from repro.analysis.demand import (  # noqa: E402
    DemandAnalysis,
    DemandEngine,
    DemandTier,
    fresh_analysis_state,
)
from repro.analysis.results import run_analysis  # noqa: E402
from repro.bench.programs import PROGRAMS, source_path  # noqa: E402
from repro.bench.trajectory import (  # noqa: E402
    DEMAND_TRAJECTORY_PATH,
    record_demand_trajectory,
)
from repro.frontend.parser import load_project_files  # noqa: E402
from repro.query.engine import QueryEngine  # noqa: E402
from repro.query.server import QueryServer  # noqa: E402
from repro.query.store import build_store, load_store  # noqa: E402

#: queries compared per benchmark in the sweep (full equality is the
#: hypothesis property test's job; the sweep samples for sanity)
_SWEEP_QUERIES = 8
_WARM_ITERATIONS = 50


def _query_specs(store: dict, cap: int) -> list[tuple[str, str]]:
    """Up to ``cap`` (proc, var) pairs from the store index, main first
    (the sweep times realistic per-proc points-to queries)."""
    specs: list[tuple[str, str]] = []
    procs = store["index"]["procedures"]
    names = sorted(procs)
    if "main" in procs:
        names.remove("main")
        names.insert(0, "main")
    for pname in names:
        for var in sorted(procs[pname]["vars"]):
            specs.append((pname, var))
            if len(specs) >= cap:
                return specs
    return specs


def sweep_row(name: str) -> dict:
    """One sweep row: exhaustive store vs demand engine on ``name``."""
    path = source_path(name)
    row: dict = {"name": name, "error": None}
    try:
        # exhaustive: the store the daemon would serve
        fresh_analysis_state()
        program = load_project_files([path], name=name)
        t0 = time.perf_counter()
        result = run_analysis(program, AnalyzerOptions())
        exhaustive_seconds = time.perf_counter() - t0
        store = build_store(result, program_name=name, sources=[path])
        store_engine = QueryEngine(store)
        row["procedures"] = len(store["index"]["procedures"])
        row["exhaustive_seconds"] = round(exhaustive_seconds, 6)

        # demand: fresh lowering, query-rooted
        fresh_analysis_state()
        program = load_project_files([path], name=name)
        analysis = DemandAnalysis(program, options=AnalyzerOptions())
        engine = DemandEngine(analysis, sources=[path], program_name=name)

        specs = _query_specs(store, _SWEEP_QUERIES)
        if not specs:
            row["error"] = "no queryable variables in store index"
            return row

        proc, var = specs[0]
        demand_slice = analysis.slice_for(proc)
        row["slice_procs"] = len(demand_slice.procs)

        t0 = time.perf_counter()
        first = engine.query({"op": "points_to", "var": var, "proc": proc})
        row["demand_seconds"] = round(time.perf_counter() - t0, 6)

        samples = []
        for _ in range(_WARM_ITERATIONS):
            t0 = time.perf_counter()
            engine.query({"op": "points_to", "var": var, "proc": proc})
            samples.append(time.perf_counter() - t0)
        row["warm_query_ms"] = round(statistics.median(samples) * 1000, 4)

        equal = json.dumps(first, sort_keys=True) == json.dumps(
            store_engine.query({"op": "points_to", "var": var, "proc": proc}),
            sort_keys=True,
        )
        for pname, vname in specs[1:]:
            req = {"op": "points_to", "var": vname, "proc": pname}
            if json.dumps(engine.query(req), sort_keys=True) != json.dumps(
                store_engine.query(req), sort_keys=True
            ):
                equal = False
                break
        row["equal"] = equal
        if row["demand_seconds"]:
            row["speedup"] = round(
                exhaustive_seconds / row["demand_seconds"], 2
            )
    except Exception as exc:  # record, don't abort the sweep
        row["error"] = f"{type(exc).__name__}: {exc}"
    return row


def run_sweep(names: list[str]) -> tuple[list[dict], bool]:
    rows = []
    ok = True
    print(
        f"{'program':<12} {'procs':>5} {'slice':>5} {'exhaustive':>10} "
        f"{'demand':>8} {'warm ms':>8} {'speedup':>8}  equal"
    )
    for name in names:
        row = sweep_row(name)
        rows.append(row)
        if row.get("error"):
            ok = False
            print(f"{name:<12} ERROR: {row['error']}")
            continue
        if row.get("equal") is False:
            ok = False
        print(
            f"{name:<12} {row['procedures']:>5} {row.get('slice_procs', 0):>5} "
            f"{row['exhaustive_seconds']:>9.3f}s {row['demand_seconds']:>7.3f}s "
            f"{row['warm_query_ms']:>8.3f} {row.get('speedup', 0.0):>7.1f}x  "
            f"{row.get('equal')}"
        )
    return rows, ok


def _inject_edit(source: str) -> str:
    """Add a new local to ``main`` — enough to change the content digest
    and mark main stale, without changing any points-to fact."""
    marker = "int main(void)"
    at = source.index(marker)
    brace = source.index("{", at)
    return source[: brace + 1] + "\n    int __demand_edit = 0; (void)__demand_edit;" + source[brace + 1 :]


def ci_gate(name: str, min_speedup: float, record: str | None) -> int:
    """The CI freshness contract on benchmark ``name`` (see module doc)."""
    if name not in {p.name for p in PROGRAMS}:
        print(f"bench_demand: unknown benchmark {name!r}", file=sys.stderr)
        return 2
    tmp = tempfile.mkdtemp(prefix="bench_demand_")
    try:
        src = os.path.join(tmp, f"{name}.c")
        store_path = os.path.join(tmp, f"{name}.store.json")
        shutil.copyfile(source_path(name), src)

        def reindex(force: bool = False) -> float:
            cmd = [sys.executable, "-m", "repro", "index", src, "-o", store_path]
            if force:
                cmd.append("--force")
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")]
                + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
            )
            t0 = time.perf_counter()
            proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
            seconds = time.perf_counter() - t0
            if proc.returncode != 0:
                raise RuntimeError(f"repro index failed: {proc.stderr.strip()}")
            return seconds

        reindex()
        store = load_store(store_path)
        tier = DemandTier(store, enabled=True)
        engine = QueryEngine(store, demand=tier)
        server = QueryServer(engine, store_path=store_path)

        proc = "main" if "main" in store["index"]["procedures"] else sorted(
            store["index"]["procedures"]
        )[0]
        variables = sorted(store["index"]["procedures"][proc]["vars"])
        if not variables:
            print(f"bench_demand: no variables in {proc}", file=sys.stderr)
            return 2
        request = {"op": "points_to", "var": variables[0], "proc": proc}

        baseline = server.handle_request(dict(request))
        assert baseline["ok"] and "mode" not in baseline, baseline
        print(f"baseline answer from store: {variables[0]}@{proc} ok")

        # edit one procedure: the daemon must keep answering, via demand
        with open(src, "r", encoding="utf-8") as fh:
            edited = _inject_edit(fh.read())
        with open(src, "w", encoding="utf-8") as fh:
            fh.write(edited)

        t0 = time.perf_counter()
        first = server.handle_request(dict(request))
        first_seconds = time.perf_counter() - t0
        if not (first.get("ok") and first.get("mode") == "demand"):
            print(f"bench_demand: post-edit answer not in demand mode: {first}", file=sys.stderr)
            return 1
        print(
            f"post-edit query answered with mode=demand in {first_seconds:.3f}s "
            "(slice fixpoint)"
        )

        samples = []
        for _ in range(_WARM_ITERATIONS):
            t0 = time.perf_counter()
            server.handle_request(dict(request))
            samples.append(time.perf_counter() - t0)
        warm_seconds = statistics.median(samples)
        print(f"warm demand query: {warm_seconds * 1000:.3f}ms (median of {_WARM_ITERATIONS})")

        reindex_seconds = reindex(force=True)
        print(f"full re-index: {reindex_seconds:.3f}s")
        reload_env = server.handle_request({"op": "reload"})
        if not reload_env.get("ok"):
            print(f"bench_demand: reload failed: {reload_env}", file=sys.stderr)
            return 1
        after = server.handle_request(dict(request))
        assert after["ok"] and "mode" not in after, after

        identical = json.dumps(first["result"], sort_keys=True) == json.dumps(
            after["result"], sort_keys=True
        )
        speedup = reindex_seconds / warm_seconds if warm_seconds else float("inf")
        print(
            f"demand answer byte-identical to post-reindex answer: {identical}; "
            f"warm demand vs re-index speedup: {speedup:.0f}x (gate: {min_speedup:.0f}x)"
        )

        failures = []
        if not identical:
            failures.append("demand answer differs from post-reindex answer")
        if speedup < min_speedup:
            failures.append(
                f"speedup {speedup:.1f}x below the {min_speedup:.0f}x gate"
            )

        if record is not None:
            row = {
                "name": f"{name}(ci-gate)",
                "procedures": len(store["index"]["procedures"]),
                "slice_procs": (tier.stats().get("slices") or {}).get(proc),
                "demand_seconds": round(first_seconds, 6),
                "warm_query_ms": round(warm_seconds * 1000, 4),
                "reindex_seconds": round(reindex_seconds, 6),
                "speedup": round(speedup, 2),
                "equal": identical,
                "error": None,
            }
            entry, drift = record_demand_trajectory([row], path=record)
            print(f"recorded demand trajectory entry at {record}")
            for line in drift:
                print(f"  drift: {line}")

        if failures:
            for line in failures:
                print(f"bench_demand: GATE FAILED: {line}", file=sys.stderr)
            return 1
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="demand-driven analysis benchmark"
    )
    parser.add_argument(
        "--ci-gate",
        metavar="NAME",
        help="run the CI freshness gate on one benchmark instead of the sweep",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="warm-demand-vs-reindex speedup the gate requires (default 10)",
    )
    parser.add_argument(
        "--record",
        nargs="?",
        const=DEMAND_TRAJECTORY_PATH,
        default=None,
        metavar="PATH",
        help=f"append results to the demand trajectory (default {DEMAND_TRAJECTORY_PATH})",
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        metavar="NAME",
        help="sweep only these benchmarks (default: all)",
    )
    args = parser.parse_args(argv)

    if args.ci_gate:
        return ci_gate(args.ci_gate, args.min_speedup, args.record)

    names = args.programs or [p.name for p in PROGRAMS]
    unknown = sorted(set(names) - {p.name for p in PROGRAMS})
    if unknown:
        print(f"bench_demand: unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
        return 2
    rows, ok = run_sweep(names)
    if args.record is not None:
        entry, drift = record_demand_trajectory(rows, path=args.record)
        print(f"recorded demand trajectory entry at {args.record}")
        for line in drift:
            print(f"  drift: {line}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
