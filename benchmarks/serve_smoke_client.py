"""CI smoke client for the query daemon (docs/QUERY.md).

Starts ``repro serve <store> --tcp`` as a subprocess, replays a scripted
batch of points-to/alias/modref queries built from the store's own index
— the second half repeats the first, so the shared LRU cache must report
hits — then shuts the daemon down and asserts a clean exit.

Usage::

    python benchmarks/serve_smoke_client.py stores/allroots.store.json \
        --log query-logs/allroots.jsonl [--port 7893]

Exit 0 on success; any assertion failure or daemon misbehavior exits
non-zero (CI treats both as a failed smoke).
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import time


def build_requests(store: dict, cap: int = 12) -> list[dict]:
    """A scripted mix over real store facts: call-graph + modref of
    main, then points-to/alias over the first procedures' variables."""
    reqs: list[dict] = [
        {"op": "callees", "proc": "main"},
        {"op": "modref", "proc": "main"},
    ]
    for pname, rec in sorted(store["index"]["procedures"].items()):
        pool = sorted(rec["vars"])
        for var in pool:
            reqs.append({"op": "points_to", "var": var, "proc": pname})
        if len(pool) >= 2:
            reqs.append(
                {"op": "alias", "a": pool[0], "b": pool[1], "proc": pname}
            )
        if len(reqs) >= cap:
            break
    return reqs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store", help="store path written by 'repro index'")
    parser.add_argument("--log", required=True,
                        help="where to write the response log (JSONL)")
    parser.add_argument("--port", type=int, default=7893)
    args = parser.parse_args(argv)

    with open(args.store, "r", encoding="utf-8") as fh:
        store = json.load(fh)

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", args.store,
         "--tcp", f"127.0.0.1:{args.port}"],
        env={**os.environ},
    )
    try:
        for _ in range(100):
            try:
                sock = socket.create_connection(
                    ("127.0.0.1", args.port), timeout=1
                )
                break
            except OSError:
                time.sleep(0.1)
        else:
            raise SystemExit(f"daemon for {args.store} never came up")

        reqs = build_requests(store)
        reqs = reqs + reqs  # the repeated half: must hit the cache
        os.makedirs(os.path.dirname(args.log) or ".", exist_ok=True)
        with sock, open(args.log, "w", encoding="utf-8") as log:
            fh = sock.makefile("rw", encoding="utf-8")
            batch = [dict(r, id=i) for i, r in enumerate(reqs)]
            fh.write(json.dumps(batch) + "\n")
            fh.flush()
            for _ in batch:
                line = fh.readline()
                log.write(line)
                env = json.loads(line)
                assert env["ok"] and env["status"] == 0, env

            fh.write(json.dumps({"op": "stats", "id": "s"}) + "\n")
            fh.flush()
            stats_line = fh.readline()
            log.write(stats_line)
            stats = json.loads(stats_line)["result"]
            assert stats["cache_hits"] > 0, f"no cache hits: {stats}"
            assert stats["cache_hit_rate"] and stats["cache_hit_rate"] > 0

            fh.write(json.dumps({"op": "shutdown", "id": "z"}) + "\n")
            fh.flush()
            log.write(fh.readline())

        code = daemon.wait(timeout=30)
        assert code == 0, f"daemon exited {code}"
        print(
            f"{store.get('program', args.store)}: {len(reqs)} queries, "
            f"hit rate {stats['cache_hit_rate']}, clean shutdown"
        )
        return 0
    finally:
        if daemon.poll() is None:  # pragma: no cover - cleanup path
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    raise SystemExit(main())
