"""Table 2: analysis time and average PTFs per procedure for the suite.

Regenerates the paper's central table.  Absolute seconds differ (Python on
this host vs. 1995 C on a DECstation 5000/260); the claims under test are
the *shape*: every program analyzes in seconds, time scales with program
complexity rather than blowing up, and the average number of PTFs per
procedure stays near one (paper range: 1.00-1.39).

Besides the pytest-benchmark entry points this file is directly runnable
for fault-isolated batch measurement (CI uses this)::

    python benchmarks/bench_table2_analysis.py --per-program-timeout 120

which runs every benchmark in its own subprocess via
``repro.bench.harness`` so one hang or crash cannot take down the batch.
"""

import pytest

from repro.bench import PROGRAMS, analyze_benchmark, table2_text

NAMES = [p.name for p in PROGRAMS]


@pytest.mark.parametrize("name", NAMES)
def test_analysis_time(benchmark, name):
    result = benchmark.pedantic(
        analyze_benchmark, args=(name,), rounds=3, iterations=1, warmup_rounds=1
    )
    stats = result.stats()
    metrics = result.analyzer.metrics
    benchmark.extra_info["procedures"] = stats.procedures
    benchmark.extra_info["avg_ptfs"] = round(stats.avg_ptfs, 2)
    benchmark.extra_info["source_lines"] = stats.source_lines
    benchmark.extra_info["cache_hit_rate"] = round(metrics.cache_hit_rate(), 4)
    benchmark.extra_info["dom_walk_steps"] = metrics.dom_walk_steps
    # the paper's headline: a single PTF per procedure is usually enough
    assert stats.avg_ptfs < 2.0, f"{name}: avg PTFs {stats.avg_ptfs}"
    assert stats.procedures > 0


def test_print_table2(capsys):
    """Emit the full paper-vs-measured table (shown with pytest -s)."""
    text = table2_text()
    print()
    print(text)
    rows = [l for l in text.splitlines() if l and l[0].islower()]
    assert len(rows) == len(PROGRAMS)


def test_suite_average_ptfs_close_to_one():
    from repro.bench import table2_rows

    rows = table2_rows()
    avg = sum(r.avg_ptfs for r in rows) / len(rows)
    # paper suite average is 1.11; anything close to 1 reproduces the claim
    assert 1.0 <= avg < 1.4


def test_most_programs_need_exactly_one_ptf_per_proc():
    from repro.bench import table2_rows

    rows = table2_rows()
    exact_one = sum(1 for r in rows if r.avg_ptfs == 1.0)
    # the paper has 6 of 13 rows at exactly 1.00
    assert exact_one >= len(rows) // 2


if __name__ == "__main__":  # pragma: no cover - CI batch entry point
    import sys

    from repro.bench.harness import main

    raise SystemExit(main(sys.argv[1:]))
