"""Ablation: the precision spectrum — Wilson-Lam vs Andersen vs Steensgaard
and the cost of the paper's design choices (strong updates, subsumption).

The paper's context (§1, §6): context-insensitive analyses merge
information across call sites (unrealizable paths); unification merges even
more.  Measured: average points-to set sizes and specific query precision
across the spectrum, plus analysis time for each.
"""

import pytest

from repro import AnalyzerOptions, load_program
from repro.baselines import andersen_analyze, steensgaard_analyze
from repro.bench import analyze_benchmark
from repro.bench.programs import load_source

SUBSET = ["grep", "diff", "compress", "eqntott"]

SMEAR = """
int a, b;
int *id(int *p) { return p; }
int main(void) {
    int *pa = id(&a);
    int *pb = id(&b);
    return 0;
}
"""


@pytest.mark.parametrize("name", SUBSET)
def test_andersen_time(benchmark, name):
    program = load_program(load_source(name), f"{name}.c", name)
    result = benchmark(andersen_analyze, program)
    benchmark.extra_info["avg_set_size"] = round(result.average_points_to_size(), 2)


@pytest.mark.parametrize("name", SUBSET)
def test_steensgaard_time(benchmark, name):
    program = load_program(load_source(name), f"{name}.c", name)
    result = benchmark(steensgaard_analyze, program)
    benchmark.extra_info["classes"] = result.class_count()


def test_context_sensitivity_precision_gap(benchmark):
    """The unrealizable-path query: Wilson-Lam gives singletons where the
    baselines smear."""
    from repro import analyze_source

    wl = benchmark(analyze_source, SMEAR)
    ai = andersen_analyze(load_program(SMEAR, "smear.c"))
    st = steensgaard_analyze(load_program(SMEAR, "smear.c"))

    wl_pa = wl.points_to_names("main", "pa")
    ai_pa = ai.points_to_names("main", "pa")
    st_pa = st.points_to_names("main", "pa")
    assert wl_pa == {"a"}
    assert ai_pa == {"a", "b"}
    assert st_pa >= ai_pa
    # the spectrum is ordered
    assert len(wl_pa) <= len(ai_pa) <= len(st_pa)


@pytest.mark.parametrize("name", ["grep", "compress"])
def test_strong_updates_ablation(benchmark, name):
    """Strong updates (§4.1) tighten points-to sets; turning them off must
    never shrink any set (soundness) and typically grows some."""
    with_updates = analyze_benchmark(name, AnalyzerOptions(strong_updates=True))
    without = benchmark(
        analyze_benchmark, name, AnalyzerOptions(strong_updates=False)
    )
    grew = 0
    for var in with_updates.program.globals:
        a = with_updates.points_to_names("main", var)
        b = without.points_to_names("main", var)
        assert a <= b, f"{var}: strong updates must only remove values"
        if len(b) > len(a):
            grew += 1
    benchmark.extra_info["sets_grown"] = grew


@pytest.mark.parametrize("name", ["loader", "eqntott"])
def test_subsumption_ablation(benchmark, name):
    """Disabling offset-based parameter reuse (§3.2) still analyzes
    correctly but creates more extended parameters."""
    normal = analyze_benchmark(name, AnalyzerOptions(subsumption=True))
    merged = benchmark(
        analyze_benchmark, name, AnalyzerOptions(subsumption=False)
    )

    def param_count(result):
        return sum(
            len(ptf.params)
            for ptfs in result.analyzer.ptfs.values()
            for ptf in ptfs
        )

    benchmark.extra_info["params_normal"] = param_count(normal)
    benchmark.extra_info["params_merged"] = param_count(merged)
    assert merged.stats().procedures == normal.stats().procedures
