"""Ablation: PTF reuse vs Emami-style reanalysis-per-context (§6).

The paper's core comparison: Emami et al. analyze a procedure once per
invocation-graph node; Wilson-Lam analyzes once per *alias pattern* and
reuses.  With `AnalyzerOptions(reuse_ptfs=False)` this implementation
reproduces the per-context behaviour, so the cost of not reusing is
directly measurable: PTF counts track the (exponentially growing) context
count instead of the (flat) pattern count.
"""

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.bench import analyze_benchmark

EMAMI = AnalyzerOptions(reuse_ptfs=False, ptf_limit=1_000_000)


def call_dag(depth: int) -> str:
    """A binary call DAG: 2^depth calling contexts for `leaf`."""
    parts = ["int g;", "void leaf(int *p) { g = *p; }"]
    parts.append("void f0(int *p) { leaf(p); leaf(p); }")
    for i in range(1, depth):
        parts.append(f"void f{i}(int *p) {{ f{i-1}(p); f{i-1}(p); }}")
    parts.append(f"int main(void) {{ int x; f{depth-1}(&x); return 0; }}")
    return "\n".join(parts)


class TestBlowupShape:
    def test_reuse_stays_flat(self):
        counts = {}
        for depth in (3, 6):
            r = analyze_source(call_dag(depth))
            counts[depth] = r.stats().total_ptfs
        # one PTF per procedure regardless of context count
        assert counts[6] - counts[3] == 3  # just the extra procedures

    def test_emami_tracks_contexts(self):
        counts = {}
        for depth in (3, 6):
            r = analyze_source(call_dag(depth), options=EMAMI)
            counts[depth] = r.stats().total_ptfs
        # 2^depth leaf contexts dominate: 8x more contexts at depth 6
        assert counts[6] > 4 * counts[3]

    def test_ratio_grows_exponentially(self):
        depth = 7
        reuse = analyze_source(call_dag(depth))
        emami = analyze_source(call_dag(depth), options=EMAMI)
        assert emami.stats().total_ptfs > 2 ** depth
        assert reuse.stats().total_ptfs == depth + 2  # procs + main

    def test_results_identical(self):
        """Reuse loses no precision relative to per-context reanalysis on
        same-pattern programs."""
        src = call_dag(5)
        reuse = analyze_source(src)
        emami = analyze_source(src, options=EMAMI)
        assert reuse.points_to_names("main", "g") == emami.points_to_names(
            "main", "g"
        )


@pytest.mark.parametrize("name", ["grep", "diff", "compress"])
def test_emami_mode_time(benchmark, name):
    result = benchmark.pedantic(
        analyze_benchmark,
        args=(name,),
        kwargs={"options": AnalyzerOptions(reuse_ptfs=False, ptf_limit=1_000_000)},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["total_ptfs"] = result.stats().total_ptfs
    benchmark.extra_info["analyses"] = result.analyzer.stats["ptf_analyses"]


@pytest.mark.parametrize("name", ["grep", "diff", "compress"])
def test_reuse_mode_time(benchmark, name):
    result = benchmark.pedantic(
        analyze_benchmark, args=(name,), rounds=2, iterations=1
    )
    benchmark.extra_info["total_ptfs"] = result.stats().total_ptfs
    benchmark.extra_info["reuses"] = result.analyzer.stats["ptf_reuses"]


@pytest.mark.parametrize("name", ["grep", "diff", "compress"])
def test_emami_creates_more_ptfs(name):
    reuse = analyze_benchmark(name)
    emami = analyze_benchmark(
        name, AnalyzerOptions(reuse_ptfs=False, ptf_limit=1_000_000)
    )
    assert emami.stats().total_ptfs >= reuse.stats().total_ptfs
