"""Table 3: parallelization of the numeric C programs.

Paper (SGI 4D/380):
    alvinn   97.7% parallel   7.4 ms/loop   speedups 1.95 / 3.50
    ear      85.8% parallel   0.2 ms/loop   speedups 1.42 / 1.63

Our substitution (DESIGN.md): the SUIF parallelizer becomes
``repro.clients.parallel`` driven by the Wilson-Lam alias oracle, and the
SGI becomes the deterministic machine model in ``repro.clients.machine``.
The claims under test are the mechanisms: both programs are almost fully
parallelized by pointer analysis alone; alvinn's coarse-grained loops scale
nearly linearly; ear is parallel but barely speeds up past two processors
because its loops are tiny and suffer false sharing.
"""

import pytest

from repro.bench import table3_rows, table3_text
from repro.bench.harness import analyze_benchmark
from repro.bench.programs import load_source
from repro.clients import MachineModel, Parallelizer


@pytest.fixture(scope="module")
def rows():
    return {r.name: r for r in table3_rows()}


def test_print_table3(rows):
    print()
    print(table3_text(list(rows.values())))


@pytest.mark.parametrize("name", ["alvinn", "ear"])
def test_parallelizer_time(benchmark, name):
    source = load_source(name)
    analysis = analyze_benchmark(name)

    def run():
        par = Parallelizer(source, alias_oracle=analysis, filename=f"{name}.c")
        par.run()
        return par

    par = benchmark(run)
    assert par.parallel_loops(), f"{name}: no loops parallelized"


class TestAlvinnShape:
    def test_almost_fully_parallel(self, rows):
        assert rows["alvinn"].percent_parallel > 90.0

    def test_coarse_granularity(self, rows):
        # milliseconds per loop invocation, not microseconds
        assert rows["alvinn"].avg_time_per_loop_ms > 2.0

    def test_near_linear_speedups(self, rows):
        s = rows["alvinn"].speedups
        assert 1.7 < s[2] <= 2.0
        assert 3.0 < s[4] <= 4.0


class TestEarShape:
    def test_mostly_parallel(self, rows):
        assert rows["ear"].percent_parallel > 70.0

    def test_fine_granularity(self, rows):
        assert rows["ear"].avg_time_per_loop_ms < 1.0

    def test_speedup_saturates(self, rows):
        """The paper's point: 4 processors barely beat 2 (1.63 vs 1.42)."""
        s = rows["ear"].speedups
        assert 1.2 < s[2] < 1.7
        assert s[4] < 2.2
        assert s[4] - s[2] < 0.6


class TestCrossProgram:
    def test_granularity_gap(self, rows):
        """alvinn's loops are an order of magnitude coarser than ear's."""
        assert rows["alvinn"].avg_time_per_loop_ms > 5 * rows["ear"].avg_time_per_loop_ms

    def test_alvinn_scales_better(self, rows):
        assert rows["alvinn"].speedups[4] > rows["ear"].speedups[4] + 1.0


def test_alias_oracle_matters():
    """Replacing Wilson-Lam with an always-aliased oracle kills the
    parallel loops that need independence of their arrays."""

    class Paranoid:
        def may_alias(self, proc, a, b):
            return True

    source = load_source("alvinn")
    par = Parallelizer(source, alias_oracle=Paranoid(), filename="alvinn.c")
    par.run()
    precise = analyze_benchmark("alvinn")
    par2 = Parallelizer(source, alias_oracle=precise, filename="alvinn.c")
    par2.run()
    assert len(par2.parallel_loops()) > len(par.parallel_loops())
