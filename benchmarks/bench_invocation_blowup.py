"""§7's comparison with Emami et al.: invocation-graph blow-up vs PTFs.

The paper: for the 37-procedure ``compiler`` benchmark, the Emami-style
invocation graph (one node per procedure per calling context) exceeds
700,000 nodes; the PTF analysis needs only ~1.14 PTFs per procedure.

Here: the compiler-shaped benchmark's invocation graph is three orders of
magnitude larger than its procedure count while the PTF count stays ~1 per
procedure — the scaling shape that makes reanalysis-per-context
impractical and PTF reuse practical.
"""

import pytest

from repro.bench import analyze_benchmark, invocation_rows
from repro.bench.programs import load_source
from repro.baselines import build_invocation_graph
from repro.frontend.parser import load_program


@pytest.fixture(scope="module")
def compiler_row():
    rows = invocation_rows(names=["compiler"])
    assert rows
    return rows[0]


def test_invocation_graph_explodes(compiler_row):
    r = compiler_row
    # thousands of contexts for a few dozen procedures
    assert r["invocation_nodes"] > 100 * r["procedures"], r


def test_ptfs_stay_flat(compiler_row):
    r = compiler_row
    assert r["avg_ptfs"] < 1.5
    assert r["total_ptfs"] < 3 * r["procedures"]


def test_ratio_is_orders_of_magnitude(compiler_row):
    r = compiler_row
    ratio = r["invocation_nodes"] / max(r["total_ptfs"], 1)
    assert ratio > 100, f"invocation/PTF ratio only {ratio:.0f}"


def test_build_invocation_graph_bench(benchmark):
    program = load_program(load_source("compiler"), "compiler.c", "compiler")

    graph = benchmark(build_invocation_graph, program, limit=2_000_000)
    benchmark.extra_info["nodes"] = graph.nodes
    assert graph.nodes > 1000


def test_ptf_analysis_bench(benchmark):
    result = benchmark.pedantic(
        analyze_benchmark, args=("compiler",), rounds=3, iterations=1
    )
    stats = result.stats()
    benchmark.extra_info["total_ptfs"] = stats.total_ptfs
    assert stats.avg_ptfs < 1.5


def test_reanalysis_cost_estimate():
    """Reanalyzing per invocation-graph node would multiply work by the
    graph/procedures ratio; PTF analyses stay within a small factor of the
    procedure count."""
    rows = invocation_rows(names=["compiler"])
    r = rows[0]
    result = analyze_benchmark("compiler")
    analyses = result.analyzer.stats["ptf_analyses"]
    assert analyses < r["invocation_nodes"] / 10
