"""Before/after benchmark for the sparse lookup memoization.

Runs the full Wilson-Lam analysis over a set of the larger benchmark
programs twice per program — once with ``AnalyzerOptions.lookup_cache``
enabled (the default) and once with it disabled — and reports

* best-of-N analysis wall time per mode and the resulting speedup,
* the cache hit rate and the dominator-walk steps actually taken
  (both from the metrics layer, the same numbers ``--stats-json`` emits),
* whether the two modes produced byte-identical points-to results
  (the caches are pure memoization, so they must).

Usage::

    PYTHONPATH=src python benchmarks/bench_lookup_cache.py           # full run
    PYTHONPATH=src python benchmarks/bench_lookup_cache.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_lookup_cache.py \
        --programs compiler,loader --rounds 5 --check --stats-json out.json

``--check`` exits non-zero unless at least two programs reach the 1.3x
speedup target; ``--quick`` runs a reduced set with a single round (for
CI, where timing thresholds would be flaky).

Observability hooks:

* ``--trace-dir DIR`` re-runs each program once with the span tracer
  enabled and writes ``DIR/<program>.trace.json`` (Chrome trace-event
  JSON, Perfetto-loadable) — the per-benchmark trace artifact CI uploads;
* ``--trace-overhead-check`` verifies tracing stays pay-for-what-you-use:
  two independent best-of-N timings with tracing *off* must agree within
  2% (i.e. the instrumented build costs nothing measurable when the
  tracer is ``None`` — the disabled-path check), and the tracing-*on*
  overhead is reported for information.

The identity comparison resets the process-global uid counter and intern
tables before every analysis (``repro.memory.pointsto.reset_interning``)
so both modes start from an identical interpreter state; without the
reset, block uids — and with them set iteration orders and extended-
parameter creation order — depend on what ran earlier in the process.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# allow running straight from a checkout without installing
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.engine import AnalyzerOptions  # noqa: E402
from repro.analysis.results import run_analysis  # noqa: E402
from repro.bench.programs import load_source  # noqa: E402
from repro.frontend.parser import load_program  # noqa: E402
from repro.memory.pointsto import reset_interning  # noqa: E402

#: the larger programs — small ones finish in milliseconds and measure
#: interpreter noise, not the cache.  ``dbase`` and ``interp`` are the two
#: cache-stress companions (not Table 2 rows): dbase converges quickly and
#: then re-reads stable state (the cache's best case), interp's recursive
#: eval/apply churns the interprocedural fixpoint (its worst case).
DEFAULT_PROGRAMS = ("compiler", "dbase", "interp", "football", "assembler")
QUICK_PROGRAMS = ("dbase", "loader")
SPEEDUP_TARGET = 1.3


def _analyze(name: str, lookup_cache: bool, trace=None):
    """One full analysis from an identical process state."""
    reset_interning()
    program = load_program(load_source(name), f"{name}.c", name)
    return run_analysis(
        program, AnalyzerOptions(lookup_cache=lookup_cache, trace=trace)
    )


def write_trace_artifact(name: str, trace_dir: str) -> str:
    """One traced analysis of ``name``; returns the artifact path."""
    from repro.diagnostics import Tracer

    tracer = Tracer()
    _analyze(name, lookup_cache=True, trace=tracer)
    path = os.path.join(trace_dir, f"{name}.trace.json")
    tracer.save_chrome(path, program=name, benchmark="bench_lookup_cache")
    return path


def _best_of(name: str, rounds: int, trace_factory=None) -> float:
    best = float("inf")
    for _ in range(rounds):
        trace = trace_factory() if trace_factory is not None else None
        result = _analyze(name, lookup_cache=True, trace=trace)
        best = min(best, result.analyzer.elapsed_seconds)
    return best


def trace_overhead_check(name: str, rounds: int, tolerance: float = 0.02) -> dict:
    """Disabled-tracing overhead check (see module docstring).

    The instrumented engine with ``trace=None`` is this PR's "after"; an
    un-instrumented engine cannot be re-run from here, so the check
    compares two independent best-of-N timings of the disabled path —
    they must agree within ``tolerance`` (any real disabled-path cost
    would show up as irreproducible jitter well above it on these
    workloads) — and reports the tracing-*enabled* overhead alongside.

    Best-of-1 is far too noisy for a 2% bound, so the check uses at
    least 5 rounds per timing regardless of ``--rounds``/``--quick``,
    interleaves the two tracing-off timings round by round (slow drift
    — thermal, scheduler — hits both buckets equally instead of
    masquerading as a difference between them), and is *adaptive*: a
    best-of-N minimum converges monotonically to the true floor, so on
    a noisy machine the check keeps adding interleaved rounds until the
    two buckets agree, up to a hard cap of 30 rounds.  A real
    disabled-path cost cannot be waited out this way — it would shift
    one bucket's floor, not its jitter.
    """
    from repro.diagnostics import Tracer

    rounds = max(rounds, 5)
    _analyze(name, lookup_cache=True)  # warmup: parser and intern caches
    off_a = float("inf")
    off_b = float("inf")
    taken = 0
    cap = max(rounds, 30)
    while True:
        for _ in range(rounds):
            result = _analyze(name, lookup_cache=True)
            off_a = min(off_a, result.analyzer.elapsed_seconds)
            result = _analyze(name, lookup_cache=True)
            off_b = min(off_b, result.analyzer.elapsed_seconds)
        taken += rounds
        if abs(off_a - off_b) <= tolerance * min(off_a, off_b) or taken >= cap:
            break
    on = _best_of(name, rounds, trace_factory=Tracer)
    base = min(off_a, off_b)
    disabled_delta = abs(off_a - off_b) / base if base else 0.0
    return {
        "program": name,
        "rounds": taken,
        "off_a_seconds": round(off_a, 4),
        "off_b_seconds": round(off_b, 4),
        "on_seconds": round(on, 4),
        "disabled_delta": round(disabled_delta, 4),
        "enabled_overhead": round((on - base) / base, 4) if base else 0.0,
        "within_tolerance": disabled_delta <= tolerance,
        "tolerance": tolerance,
    }


def _result_fingerprint(result) -> str:
    d = result.to_dict()
    keep = {k: d[k] for k in ("procedures", "call_graph") if k in d}
    return json.dumps(keep, sort_keys=True)


def bench_program(name: str, rounds: int) -> dict:
    row: dict = {"program": name}
    fingerprints = {}
    for cache in (True, False):
        best = float("inf")
        for _ in range(rounds):
            result = _analyze(name, cache)
            best = min(best, result.analyzer.elapsed_seconds)
        fingerprints[cache] = _result_fingerprint(result)
        metrics = result.analyzer.metrics
        key = "cached" if cache else "uncached"
        row[f"{key}_seconds"] = round(best, 4)
        row[f"{key}_dom_walk_steps"] = metrics.dom_walk_steps
        if cache:
            row["cache_hit_rate"] = round(metrics.cache_hit_rate(), 4)
    row["speedup"] = round(row["uncached_seconds"] / row["cached_seconds"], 3)
    row["identical_results"] = fingerprints[True] == fingerprints[False]
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--programs", metavar="A,B,...",
                    help=f"comma-separated program names "
                         f"(default: {','.join(DEFAULT_PROGRAMS)})")
    ap.add_argument("--rounds", type=int, default=3,
                    help="timing rounds per mode; best is reported (default 3)")
    ap.add_argument("--quick", action="store_true",
                    help="reduced program set, one round (CI smoke test)")
    ap.add_argument("--check", action="store_true",
                    help=f"exit non-zero unless >=2 programs reach "
                         f"{SPEEDUP_TARGET}x")
    ap.add_argument("--stats-json", metavar="PATH",
                    help="also write the rows as JSON to PATH")
    ap.add_argument("--trace-dir", metavar="DIR",
                    help="write a Chrome trace artifact per program to DIR")
    ap.add_argument("--trace-overhead-check", action="store_true",
                    help="verify the disabled tracer costs <=2%% wall time "
                         "(two tracing-off timings must agree) and report "
                         "the tracing-on overhead")
    args = ap.parse_args(argv)

    if args.programs:
        names = tuple(n.strip() for n in args.programs.split(",") if n.strip())
    elif args.quick:
        names = QUICK_PROGRAMS
    else:
        names = DEFAULT_PROGRAMS
    rounds = 1 if args.quick and args.rounds == 3 else max(1, args.rounds)

    print(f"lookup-cache benchmark: {len(names)} programs, "
          f"best of {rounds} round(s)")
    print(f"{'program':<12} {'cached':>8} {'uncached':>9} {'speedup':>8} "
          f"{'hit rate':>9} {'dom steps':>10} {'identical':>10}")
    rows = []
    t0 = time.perf_counter()
    for name in names:
        row = bench_program(name, rounds)
        rows.append(row)
        print(f"{row['program']:<12} {row['cached_seconds']:>7.3f}s "
              f"{row['uncached_seconds']:>8.3f}s {row['speedup']:>7.2f}x "
              f"{row['cache_hit_rate'] * 100:>8.1f}% "
              f"{row['cached_dom_walk_steps']:>10} "
              f"{'yes' if row['identical_results'] else 'NO':>10}")
    elapsed = time.perf_counter() - t0

    fast = [r for r in rows if r["speedup"] >= SPEEDUP_TARGET]
    mismatched = [r["program"] for r in rows if not r["identical_results"]]
    print(f"\n{len(fast)}/{len(rows)} programs at >= {SPEEDUP_TARGET}x; "
          f"total {elapsed:.1f}s")
    if mismatched:
        print(f"RESULT MISMATCH (cached vs uncached): {', '.join(mismatched)}")

    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        for name in names:
            path = write_trace_artifact(name, args.trace_dir)
            print(f"trace artifact: {path}")

    overhead_rows = []
    overhead_failed = []
    if args.trace_overhead_check:
        print(f"\ntrace overhead ({'quick, ' if args.quick else ''}"
              f"adaptive best-of-N, >= {max(rounds, 5)} round(s) per mode):")
        print(f"{'program':<12} {'rounds':>7} {'off A':>8} {'off B':>8} "
              f"{'on':>8} {'off delta':>10} {'on overhead':>12}")
        for name in names:
            row = trace_overhead_check(name, rounds)
            overhead_rows.append(row)
            print(f"{row['program']:<12} {row['rounds']:>7} "
                  f"{row['off_a_seconds']:>7.3f}s "
                  f"{row['off_b_seconds']:>7.3f}s {row['on_seconds']:>7.3f}s "
                  f"{row['disabled_delta'] * 100:>9.1f}% "
                  f"{row['enabled_overhead'] * 100:>11.1f}%")
            if not row["within_tolerance"]:
                overhead_failed.append(name)
        if overhead_failed:
            print(f"FAIL: disabled-tracing timings disagree beyond "
                  f"{overhead_rows[0]['tolerance'] * 100:.0f}%: "
                  f"{', '.join(overhead_failed)}")

    if args.stats_json:
        payload = {"rounds": rounds, "rows": rows}
        if overhead_rows:
            payload["trace_overhead"] = overhead_rows
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.stats_json}")

    if mismatched:
        return 2
    if overhead_failed:
        return 3
    if args.check and len(fast) < 2:
        print(f"FAIL: fewer than 2 programs reached {SPEEDUP_TARGET}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
