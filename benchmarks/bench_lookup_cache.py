"""Before/after benchmark for the sparse lookup memoization.

Runs the full Wilson-Lam analysis over a set of the larger benchmark
programs twice per program — once with ``AnalyzerOptions.lookup_cache``
enabled (the default) and once with it disabled — and reports

* best-of-N analysis wall time per mode and the resulting speedup,
* the cache hit rate and the dominator-walk steps actually taken
  (both from the metrics layer, the same numbers ``--stats-json`` emits),
* whether the two modes produced byte-identical points-to results
  (the caches are pure memoization, so they must).

Usage::

    PYTHONPATH=src python benchmarks/bench_lookup_cache.py           # full run
    PYTHONPATH=src python benchmarks/bench_lookup_cache.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_lookup_cache.py \
        --programs compiler,loader --rounds 5 --check --stats-json out.json

``--check`` exits non-zero unless at least two programs reach the 1.3x
speedup target; ``--quick`` runs a reduced set with a single round (for
CI, where timing thresholds would be flaky).

The identity comparison resets the process-global uid counter and intern
tables before every analysis (``repro.memory.pointsto.reset_interning``)
so both modes start from an identical interpreter state; without the
reset, block uids — and with them set iteration orders and extended-
parameter creation order — depend on what ran earlier in the process.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# allow running straight from a checkout without installing
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.engine import AnalyzerOptions  # noqa: E402
from repro.analysis.results import run_analysis  # noqa: E402
from repro.bench.programs import load_source  # noqa: E402
from repro.frontend.parser import load_program  # noqa: E402
from repro.memory.pointsto import reset_interning  # noqa: E402

#: the larger programs — small ones finish in milliseconds and measure
#: interpreter noise, not the cache.  ``dbase`` and ``interp`` are the two
#: cache-stress companions (not Table 2 rows): dbase converges quickly and
#: then re-reads stable state (the cache's best case), interp's recursive
#: eval/apply churns the interprocedural fixpoint (its worst case).
DEFAULT_PROGRAMS = ("compiler", "dbase", "interp", "football", "assembler")
QUICK_PROGRAMS = ("dbase", "loader")
SPEEDUP_TARGET = 1.3


def _analyze(name: str, lookup_cache: bool):
    """One full analysis from an identical process state."""
    reset_interning()
    program = load_program(load_source(name), f"{name}.c", name)
    return run_analysis(program, AnalyzerOptions(lookup_cache=lookup_cache))


def _result_fingerprint(result) -> str:
    d = result.to_dict()
    keep = {k: d[k] for k in ("procedures", "call_graph") if k in d}
    return json.dumps(keep, sort_keys=True)


def bench_program(name: str, rounds: int) -> dict:
    row: dict = {"program": name}
    fingerprints = {}
    for cache in (True, False):
        best = float("inf")
        for _ in range(rounds):
            result = _analyze(name, cache)
            best = min(best, result.analyzer.elapsed_seconds)
        fingerprints[cache] = _result_fingerprint(result)
        metrics = result.analyzer.metrics
        key = "cached" if cache else "uncached"
        row[f"{key}_seconds"] = round(best, 4)
        row[f"{key}_dom_walk_steps"] = metrics.dom_walk_steps
        if cache:
            row["cache_hit_rate"] = round(metrics.cache_hit_rate(), 4)
    row["speedup"] = round(row["uncached_seconds"] / row["cached_seconds"], 3)
    row["identical_results"] = fingerprints[True] == fingerprints[False]
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--programs", metavar="A,B,...",
                    help=f"comma-separated program names "
                         f"(default: {','.join(DEFAULT_PROGRAMS)})")
    ap.add_argument("--rounds", type=int, default=3,
                    help="timing rounds per mode; best is reported (default 3)")
    ap.add_argument("--quick", action="store_true",
                    help="reduced program set, one round (CI smoke test)")
    ap.add_argument("--check", action="store_true",
                    help=f"exit non-zero unless >=2 programs reach "
                         f"{SPEEDUP_TARGET}x")
    ap.add_argument("--stats-json", metavar="PATH",
                    help="also write the rows as JSON to PATH")
    args = ap.parse_args(argv)

    if args.programs:
        names = tuple(n.strip() for n in args.programs.split(",") if n.strip())
    elif args.quick:
        names = QUICK_PROGRAMS
    else:
        names = DEFAULT_PROGRAMS
    rounds = 1 if args.quick and args.rounds == 3 else max(1, args.rounds)

    print(f"lookup-cache benchmark: {len(names)} programs, "
          f"best of {rounds} round(s)")
    print(f"{'program':<12} {'cached':>8} {'uncached':>9} {'speedup':>8} "
          f"{'hit rate':>9} {'dom steps':>10} {'identical':>10}")
    rows = []
    t0 = time.perf_counter()
    for name in names:
        row = bench_program(name, rounds)
        rows.append(row)
        print(f"{row['program']:<12} {row['cached_seconds']:>7.3f}s "
              f"{row['uncached_seconds']:>8.3f}s {row['speedup']:>7.2f}x "
              f"{row['cache_hit_rate'] * 100:>8.1f}% "
              f"{row['cached_dom_walk_steps']:>10} "
              f"{'yes' if row['identical_results'] else 'NO':>10}")
    elapsed = time.perf_counter() - t0

    fast = [r for r in rows if r["speedup"] >= SPEEDUP_TARGET]
    mismatched = [r["program"] for r in rows if not r["identical_results"]]
    print(f"\n{len(fast)}/{len(rows)} programs at >= {SPEEDUP_TARGET}x; "
          f"total {elapsed:.1f}s")
    if mismatched:
        print(f"RESULT MISMATCH (cached vs uncached): {', '.join(mismatched)}")

    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump({"rounds": rounds, "rows": rows}, fh, indent=2)
        print(f"wrote {args.stats_json}")

    if mismatched:
        return 2
    if args.check and len(fast) < 2:
        print(f"FAIL: fewer than 2 programs reached {SPEEDUP_TARGET}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
