"""Table 1 / Figure 5: location sets computed for each expression form.

Regenerates the paper's Table 1 rows through the real front end and
analysis, and times the lowering+analysis of the micro-programs.
"""

import pytest

from repro import analyze_source

ROWS = {
    # name -> (program, variable, expected (offset, stride))
    "scalar": (
        "int scalar; int main(void){ int *p = &scalar; return 0; }",
        (0, 0),
    ),
    "struct.F": (
        "struct S { int a; int f; } s;"
        "int main(void){ int *p = &s.f; return 0; }",
        (4, 0),
    ),
    "array": (
        "int array[10]; int main(void){ int *p = array; return 0; }",
        (0, 0),
    ),
    "array[i]": (
        "int array[10];"
        "int main(void){ int i = 3; int *p = &array[i]; return 0; }",
        (0, 4),
    ),
    "array[i].F": (
        "struct S { int a; int f; }; struct S array[8];"
        "int main(void){ int i = 2; int *p = &array[i].f; return 0; }",
        (4, 8),
    ),
    "struct.F[i]": (
        "struct S { int a; int f[4]; int z; } s;"
        "int main(void){ int i = 1; int *p = &s.f[i]; return 0; }",
        (0, 4),  # offset of f (4) mod stride (4): nested arrays overlap
    ),
    "*(&p + X)": (
        "int unknown(void); struct P { int *p; int *q; } s;"
        "int main(void){"
        " int **w = (int **)((char *)&s + unknown()); return 0; }",
        (0, 1),
    ),
}


@pytest.mark.parametrize("row", sorted(ROWS))
def test_table1_row(benchmark, row):
    program, expected = ROWS[row]
    var = "w" if "w =" in program else "p"
    result = benchmark(analyze_source, program)
    targets = result.points_to("main", var)
    assert targets, f"{row}: no targets for {var}"
    shapes = {(t.offset, t.stride) for t in targets}
    assert expected in shapes, f"{row}: {shapes} != {expected}"
