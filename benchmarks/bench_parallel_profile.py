"""Parallel-observatory overhead check for the batch driver.

The ``--profile-parallel`` instrumentation (ISSUE 9) must follow the
same pay-for-what-you-use discipline as the tracer and the serve
telemetry, held to the same bar:

* **disabled-path check (gated, ≤2%)** — with profiling off, the
  instrumented ``run_batch`` must cost nothing measurable: two
  *independent* median-of-N measurements of the off configuration must
  agree within 2%.  Every observatory hook sits behind one
  ``if task.profile`` / ``if tracer is not None`` /
  ``if telemetry is not None`` guard, so the off path adds only those
  identity compares;
* **enabled overhead (reported)** — a profiled pass (worker tracer,
  per-phase histograms, shard-plan payload, pickle accounting) is
  measured against the off arm and reported for information.  The
  enabled cost is dominated by shipping the worker's event list and the
  plan payload, which is exactly the data the observatory exists to
  collect.

Measurement runs at **jobs=1** — the in-process path, single-threaded
and deterministic.  Pool passes at jobs>1 pay fork/IPC costs that
jitter by far more than a 2% budget between *identical* configurations,
which would drown the gate; jobs=1 runs the very same ``_worker_run``
body (the instrumented code this check gates) with zero pool noise.
(The jobs>1 path gets its own CI coverage via the parallel-profile
job's speedup assertion.)  The protocol is the
``bench_serve_telemetry`` one: the two disabled-path buckets are
alternating passes whose order flips every round (position effects
cancel), each bucket is scored by its **median** pass (a lucky
turbo-window pass poisons a min forever), and the check adaptively adds
interleaved rounds until the buckets agree, up to a hard cap — a real
disabled-path cost shifts a bucket's center, not its jitter.  A
consistency check rides along: every profiled pass must produce digests
bit-identical to the unprofiled ones (the acceptance invariant).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_profile.py           # report
    PYTHONPATH=src python benchmarks/bench_parallel_profile.py --check   # gate <=2%
    PYTHONPATH=src python benchmarks/bench_parallel_profile.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import gc
import os
import statistics
import sys
import time

# allow running straight from a checkout without installing
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.parallel import AnalysisTask, run_batch  # noqa: E402
from repro.bench.programs import load_source  # noqa: E402

#: the trace-overhead bar: the disabled path must be free to this bound
DISABLED_BUDGET = 0.02  # 2%


def make_tasks(names: list[str]) -> list[AnalysisTask]:
    return [
        AnalysisTask(name=n, source=load_source(n), filename=f"{n}.c")
        for n in names
    ]


def measure(tasks: list[AnalysisTask], profile: bool) -> tuple[float, list]:
    """One jobs=1 batch pass; returns (elapsed seconds, digests)."""
    t0 = time.perf_counter()
    batch = run_batch(tasks, jobs=1, profile=profile)
    seconds = time.perf_counter() - t0
    if batch.errors:
        raise RuntimeError(f"bad pass: {batch.errors}")
    return seconds, [r["digest"] for r in batch.results]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--programs", default="allroots,diff",
                    help="comma-separated benchmark names per pass — "
                         "passes are kept SHORT so adjacent alternating "
                         "passes see the same machine speed")
    ap.add_argument("--rounds", type=int, default=5,
                    help="interleaved rounds per adaptive batch")
    ap.add_argument("--max-rounds", type=int, default=120,
                    help="adaptive cap: stop adding rounds here even if "
                         "the off buckets still disagree")
    ap.add_argument("--quick", action="store_true",
                    help="reduced load for CI smoke")
    ap.add_argument("--check", action="store_true",
                    help=f"exit 1 when the two disabled-path timings "
                         f"disagree by more than {DISABLED_BUDGET:.0%}")
    args = ap.parse_args(argv)
    if args.quick:
        args.max_rounds = 60
    rounds = max(args.rounds, 5)
    cap = max(args.max_rounds, rounds)

    names = [n.strip() for n in args.programs.split(",") if n.strip()]
    tasks = make_tasks(names)
    print(f"parallel-profile overhead: {', '.join(names)} per pass, "
          f"jobs=1, adaptive median-of (batches of {rounds}, cap {cap})")

    # warm both arms once (imports, parser tables, intern caches) and
    # pin the acceptance invariant: profiled digests == unprofiled ones
    _, baseline_digests = measure(tasks, profile=False)
    _, profiled_digests = measure(tasks, profile=True)
    if profiled_digests != baseline_digests:
        raise RuntimeError("profiling perturbed the digests: "
                           f"{profiled_digests} != {baseline_digests}")

    bucket_a: list[float] = []
    bucket_b: list[float] = []
    bucket_on: list[float] = []
    taken = 0
    gc.collect()
    gc.disable()  # cyclic-GC pauses land on whichever pass is unlucky
    try:
        while True:
            for _ in range(rounds):
                # flip which bucket samples the post-profiled slot each
                # round (position effects cancel)
                first, second = (
                    (bucket_a, bucket_b) if taken % 2 == 0
                    else (bucket_b, bucket_a)
                )
                taken += 1
                seconds, _ = measure(tasks, profile=False)
                first.append(seconds)
                seconds, digests = measure(tasks, profile=True)
                bucket_on.append(seconds)
                if digests != baseline_digests:
                    raise RuntimeError("profiled digests drifted mid-run")
                seconds, _ = measure(tasks, profile=False)
                second.append(seconds)
            off_a = statistics.median(bucket_a)
            off_b = statistics.median(bucket_b)
            on = statistics.median(bucket_on)
            gap = abs(off_a - off_b) / min(off_a, off_b)
            done = gap <= DISABLED_BUDGET or taken >= cap
            if done or taken % 25 == 0:
                print(f"  after {taken:3d} round(s): off medians "
                      f"{off_a * 1e3:7.2f} / {off_b * 1e3:7.2f} ms/pass "
                      f"(gap {gap:.2%}), on median {on * 1e3:7.2f} ms/pass")
            if done:
                break
    finally:
        gc.enable()

    disabled_gap = abs(off_a - off_b) / min(off_a, off_b)
    base = min(off_a, off_b)
    enabled_overhead = (on - base) / base
    print(f"off median (bucket A)   : {off_a * 1e3:8.2f} ms/pass")
    print(f"off median (bucket B)   : {off_b * 1e3:8.2f} ms/pass")
    print(f"profiled median         : {on * 1e3:8.2f} ms/pass")
    print(f"disabled-path gap       : {disabled_gap:.2%} "
          f"(budget {DISABLED_BUDGET:.0%} — the trace-overhead bar)")
    print(f"enabled overhead        : {enabled_overhead:+.2%} "
          f"(informational — the worker tracer, phase histograms and "
          f"shard-plan payload are the product)")
    if args.check and disabled_gap > DISABLED_BUDGET:
        print("FAIL: disabled profiling is not free (off-path timings "
              "disagree beyond budget)", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
