"""Telemetry overhead check for the query daemon.

The serve instrumentation (PR 7) must follow the same
pay-for-what-you-use discipline as the analysis tracer, and it is held
to the **same bar as the trace-overhead check**
(``bench_lookup_cache.py --trace-overhead-check``):

* **disabled-path check (gated, ≤2%)** — with telemetry and the access
  log off, the instrumented daemon must cost nothing measurable: two
  *independent* median-of-N throughput measurements of the off
  configuration must agree within 2%.  Every per-request hook is behind
  one ``if telemetry is not None`` / ``if access_log is not None``
  guard, so the off path adds only those identity compares;
* **enabled overhead (reported)** — the full stack (per-request
  histograms, counters, JSONL access log) is measured against the off
  arm and reported for information.  On a multi-core host the daemon's
  bookkeeping overlaps the client's wire time; on the single-core CI
  runner it shows up directly in qps, which is why it is informational
  (the enabled path is already batched per line: pre-resolved
  instrument handles, one bulk histogram record, hand-assembled access
  lines, no per-record flush).

Measurement rides the **stdio transport**: the daemon answers the whole
workload from an in-memory stream, single-threaded and deterministic —
the same discipline as the analysis-side trace check, which times the
analyzer, not the terminal.  Concurrent loopback TCP on a small runner
jitters by ±5% between *identical* configurations, which would drown a
2% budget; stdio isolates exactly the thing this check gates, the
daemon's own per-line cost.  (The TCP path gets its own CI coverage via
``repro loadtest``.)  The protocol follows ``trace_overhead_check``
with two adaptations earned on a single-core shared runner: the two
disabled-path buckets are alternating passes of the *same* bare daemon
whose order flips every round (the pass right after the instrumented
one runs measurably warmer, and flipping cancels that position effect),
and each bucket is scored by its **median** pass time rather than the
minimum (one lucky turbo-window pass poisons a min forever; the median
shrugs it off).  The check stays adaptive: it keeps adding interleaved
rounds until the two buckets agree, up to a hard cap — a real
disabled-path cost cannot be waited out this way, it would shift one
bucket's center, not its jitter.  A consistency check rides along:
every pass must answer every request, and the access log must hold one
line per request afterwards.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_telemetry.py            # report
    PYTHONPATH=src python benchmarks/bench_serve_telemetry.py --check    # gate <=2%
    PYTHONPATH=src python benchmarks/bench_serve_telemetry.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import gc
import io
import json
import os
import statistics
import sys
import tempfile
import time

# allow running straight from a checkout without installing
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.engine import AnalyzerOptions  # noqa: E402
from repro.analysis.results import run_analysis  # noqa: E402
from repro.bench.loadgen import build_workload  # noqa: E402
from repro.bench.programs import load_source  # noqa: E402
from repro.diagnostics.telemetry import TelemetryRegistry  # noqa: E402
from repro.frontend.parser import load_program  # noqa: E402
from repro.query import QueryEngine, build_store  # noqa: E402
from repro.query.server import QueryServer  # noqa: E402

#: the trace-overhead bar: the disabled path must be free to this bound
DISABLED_BUDGET = 0.02  # 2%


def build_store_for(name: str) -> dict:
    program = load_program(load_source(name), f"{name}.c", name)
    result = run_analysis(program, AnalyzerOptions())
    return build_store(result, program_name=name)


def make_server(store, instrumented: bool, access_path: str) -> QueryServer:
    if not instrumented:
        return QueryServer(QueryEngine(store))
    return QueryServer(
        QueryEngine(store),
        telemetry=TelemetryRegistry(),
        access_log=open(access_path, "w", encoding="utf-8"),
    )


def measure(server: QueryServer, lines: str, requests: int) -> float:
    """One stdio pass over the workload; returns elapsed seconds."""
    stdout = io.StringIO()
    t0 = time.perf_counter()
    code = server.serve_stdio(io.StringIO(lines), stdout, log=io.StringIO())
    seconds = time.perf_counter() - t0
    if code != 0:
        raise RuntimeError(f"serve_stdio exited {code}")
    answered = stdout.getvalue().count("\n")
    if answered != requests:
        raise RuntimeError(f"bad pass: {answered}/{requests} answered")
    return seconds


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--program", default="compiler")
    ap.add_argument("--requests", type=int, default=500,
                    help="requests per timed pass — passes are kept SHORT "
                         "(~10-20ms) so adjacent alternating passes see "
                         "the same machine speed; long passes straddle "
                         "frequency-scaling windows and the two off "
                         "buckets stop agreeing")
    ap.add_argument("--rounds", type=int, default=5,
                    help="interleaved rounds per adaptive batch")
    ap.add_argument("--max-rounds", type=int, default=200,
                    help="adaptive cap: stop adding rounds here even if "
                         "the off buckets still disagree")
    ap.add_argument("--quick", action="store_true",
                    help="reduced load for CI smoke")
    ap.add_argument("--check", action="store_true",
                    help=f"exit 1 when the two disabled-path timings "
                         f"disagree by more than {DISABLED_BUDGET:.0%}")
    args = ap.parse_args(argv)
    if args.quick:
        args.max_rounds = 80
    rounds = max(args.rounds, 5)
    cap = max(args.max_rounds, rounds)

    store = build_store_for(args.program)
    workload = build_workload(store, args.requests, seed=0)
    lines = "\n".join(
        json.dumps(dict(req, id=i)) for i, req in enumerate(workload)
    ) + "\n"
    print(f"serve telemetry overhead: {args.program}, {args.requests} "
          f"request(s)/pass, adaptive median-of (batches of {rounds}, "
          f"cap {cap}), stdio")

    with tempfile.TemporaryDirectory() as tmp:
        access_path = os.path.join(tmp, "access.jsonl")
        # one bare daemon and one fully instrumented daemon, each warmed
        # once so every timed pass answers from a hot LRU.  The two
        # gated buckets are alternating passes of the SAME bare daemon:
        # the only difference between them is measurement noise, which
        # the median-of-N score shrugs off — while the on/off delta is
        # the bookkeeping itself.
        bare = make_server(store, False, access_path)
        instrumented = make_server(store, True, access_path)
        measure(bare, lines, args.requests)
        on_passes = 1  # the warm-up pass below also hits the access log
        measure(instrumented, lines, args.requests)
        bucket_a: list[float] = []
        bucket_b: list[float] = []
        bucket_on: list[float] = []
        taken = 0
        gc.collect()
        gc.disable()  # cyclic-GC pauses land on whichever pass is unlucky
        try:
            while True:
                for _ in range(rounds):
                    # flip which bucket samples the post-instrumented
                    # slot each round (position effects cancel)
                    first, second = (
                        (bucket_a, bucket_b) if taken % 2 == 0
                        else (bucket_b, bucket_a)
                    )
                    taken += 1
                    first.append(measure(bare, lines, args.requests))
                    bucket_on.append(
                        measure(instrumented, lines, args.requests)
                    )
                    on_passes += 1
                    second.append(measure(bare, lines, args.requests))
                off_a = statistics.median(bucket_a)
                off_b = statistics.median(bucket_b)
                on = statistics.median(bucket_on)
                gap = abs(off_a - off_b) / min(off_a, off_b)
                done = gap <= DISABLED_BUDGET or taken >= cap
                if done or taken % 25 == 0:
                    print(f"  after {taken:3d} round(s): off medians "
                          f"{off_a * 1e6 / args.requests:6.1f} / "
                          f"{off_b * 1e6 / args.requests:6.1f} us/req "
                          f"(gap {gap:.2%}), on median "
                          f"{on * 1e6 / args.requests:6.1f} us/req")
                if done:
                    break
        finally:
            gc.enable()
        instrumented.access_log.close()
        with open(access_path, "r", encoding="utf-8") as fh:
            logged = sum(1 for _ in fh)
    expected = args.requests * on_passes
    if logged != expected:
        raise RuntimeError(f"access log lost lines: {logged} != {expected}")

    disabled_gap = abs(off_a - off_b) / min(off_a, off_b)
    base = min(off_a, off_b)
    enabled_overhead = (on - base) / base
    us = lambda seconds: seconds * 1e6 / args.requests  # noqa: E731
    print(f"bare median (bucket A)  : {args.requests / off_a:9.0f} req/s "
          f"({us(off_a):.1f} us/req)")
    print(f"bare median (bucket B)  : {args.requests / off_b:9.0f} req/s "
          f"({us(off_b):.1f} us/req)")
    print(f"telemetry+log median    : {args.requests / on:9.0f} req/s "
          f"({us(on):.1f} us/req)")
    print(f"disabled-path gap       : {disabled_gap:.2%} "
          f"(budget {DISABLED_BUDGET:.0%} — the trace-overhead bar)")
    print(f"enabled overhead        : {enabled_overhead:+.2%} "
          f"({us(on) - us(base):+.1f} us/req, informational — "
          f"amortized behind wire time in real deployments)")
    if args.check and disabled_gap > DISABLED_BUDGET:
        print("FAIL: disabled telemetry is not free (off-path timings "
              "disagree beyond budget)", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
