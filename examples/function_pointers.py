#!/usr/bin/env python
"""Function-pointer resolution and call-graph extraction (§5.1).

A device-dispatch table in the style of systems C code: the analysis
resolves indirect calls through the points-to results, the call graph
includes the discovered edges, and callbacks registered with qsort are
analyzed like ordinary calls.

Run:  python examples/function_pointers.py
"""

from repro import analyze_source

SOURCE = """
#include <stdlib.h>

struct device {
    const char *name;
    int (*read_fn)(int unit);
    void (*write_fn)(int unit, int value);
};

static int console_state;
static int disk_state;

int console_read(int unit) { return console_state; }
void console_write(int unit, int v) { console_state = v; }
int disk_read(int unit) { return disk_state; }
void disk_write(int unit, int v) { disk_state = v; }

static struct device devices[2];

void init(void) {
    devices[0].name = "console";
    devices[0].read_fn = console_read;
    devices[0].write_fn = console_write;
    devices[1].name = "disk";
    devices[1].read_fn = disk_read;
    devices[1].write_fn = disk_write;
}

int dispatch_read(int unit) {
    return devices[unit].read_fn(unit);
}

void dispatch_write(int unit, int v) {
    devices[unit].write_fn(unit, v);
}

/* a qsort comparator: invoked through the library summary */
int *last_compared;
int cmp(const void *a, const void *b) {
    last_compared = (int *)a;
    return *(int *)a - *(int *)b;
}

int main(void) {
    int table[8];
    init();
    dispatch_write(0, 42);
    int v = dispatch_read(1);
    qsort(table, 8, sizeof(int), cmp);
    return v;
}
"""


def main() -> None:
    result = analyze_source(SOURCE, "devices.c")

    print("== resolved call graph (indirect edges included) ==")
    graph = result.call_graph()
    for caller in sorted(graph):
        callees = sorted(graph[caller])
        if callees:
            print(f"  {caller:<16} -> {', '.join(callees)}")

    print()
    print("== the dispatch sites see both devices ==")
    assert graph["dispatch_read"] >= {"console_read", "disk_read"}
    assert graph["dispatch_write"] >= {"console_write", "disk_write"}
    print("  dispatch_read resolves to console_read and disk_read")
    print("  dispatch_write resolves to console_write and disk_write")

    print()
    print("== callback analyzed through the qsort summary ==")
    targets = sorted(result.points_to_names("main", "last_compared"))
    print(f"  last_compared -> {targets}")
    assert any("table" in t for t in targets)

    print()
    print("== function-pointer values become part of PTF input domains ==")
    for ptf in result.ptfs_of("dispatch_read"):
        for param, procs in ptf.fnptr_domain.items():
            print(f"  {param.name} may be: {sorted(procs)}")


if __name__ == "__main__":
    main()
