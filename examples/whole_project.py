#!/usr/bin/env python
"""Whole-program analysis across translation units.

A miniature two-file project — a reusable container library and its
client — linked by ``load_project`` and analyzed as one program. Shows
externs resolving across files, heap blocks flowing through the public
API, and per-file facts queried afterwards.

Run:  python examples/whole_project.py
"""

from repro import load_project, run_analysis

LIST_C = """
/* list.c - an intrusive singly-linked list library */
#include <stdlib.h>

struct list_node { struct list_node *next; void *payload; };
struct list { struct list_node *head; int length; };

struct list *list_new(void) {
    struct list *l = malloc(sizeof(struct list));
    l->head = 0;
    l->length = 0;
    return l;
}

void list_push(struct list *l, void *payload) {
    struct list_node *n = malloc(sizeof(struct list_node));
    n->payload = payload;
    n->next = l->head;
    l->head = n;
    l->length++;
}

void *list_peek(struct list *l) {
    return l->head != 0 ? l->head->payload : 0;
}
"""

APP_C = """
/* app.c - the client */
struct list_node { struct list_node *next; void *payload; };
struct list { struct list_node *head; int length; };

struct list *list_new(void);
void list_push(struct list *l, void *payload);
void *list_peek(struct list *l);

int item_a, item_b;

int main(void) {
    struct list *todo = list_new();
    list_push(todo, &item_a);
    list_push(todo, &item_b);
    int *top = (int *)list_peek(todo);
    return top != 0;
}
"""


def main() -> None:
    program = load_project([("list.c", LIST_C), ("app.c", APP_C)], "todo-app")
    result = run_analysis(program)

    print("== cross-file points-to facts ==")
    print(f"  todo -> {sorted(result.points_to_names('main', 'todo'))}")
    print(f"  top  -> {sorted(result.points_to_names('main', 'top'))}")

    print()
    print("== the library's PTFs, analyzed once for the client's pattern ==")
    for proc in ("list_new", "list_push", "list_peek"):
        n = len(result.ptfs_of(proc))
        print(f"  {proc:<10} {n} PTF(s)")

    print()
    print("== call graph across units ==")
    graph = result.call_graph()
    for caller in ("main",):
        print(f"  {caller} -> {sorted(graph[caller])}")

    stats = result.stats()
    print()
    print(f"analyzed {stats.procedures} procedures from 2 files "
          f"in {stats.analysis_seconds * 1000:.1f} ms "
          f"({stats.avg_ptfs:.2f} PTFs/procedure)")

    assert "item_a" in result.points_to_names("main", "top")
    assert "item_b" in result.points_to_names("main", "top")


if __name__ == "__main__":
    main()
