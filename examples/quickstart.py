#!/usr/bin/env python
"""Quickstart: analyze a C program and inspect its points-to results.

Run:  python examples/quickstart.py
"""

from repro import analyze_source

SOURCE = """
#include <stdlib.h>

struct node { struct node *next; int value; };

struct node *head;

/* push a value onto the global list */
void push(int value) {
    struct node *n = malloc(sizeof(struct node));
    n->value = value;
    n->next = head;
    head = n;
}

/* classic out-parameter idiom */
void locate(struct node **out, int value) {
    struct node *p = head;
    while (p != 0 && p->value != value)
        p = p->next;
    *out = p;
}

int main(void) {
    struct node *hit;
    push(1);
    push(2);
    locate(&hit, 1);
    return hit != 0;
}
"""


def main() -> None:
    result = analyze_source(SOURCE, "quickstart.c")

    print("== points-to results at procedure exits ==")
    for proc, var in [("main", "hit"), ("push", "n"), ("locate", "p")]:
        names = sorted(result.points_to_names(proc, var))
        print(f"  {proc}:{var:<4} -> {names}")

    print()
    print("== global list head ==")
    print(f"  head -> {sorted(result.points_to_names('main', 'head'))}")

    print()
    print("== alias queries ==")
    print(f"  main: hit vs head alias? {result.may_alias('main', 'hit', 'head')}")

    print()
    print("== analysis statistics (the Table 2 columns) ==")
    stats = result.stats()
    print(f"  procedures analyzed : {stats.procedures}")
    print(f"  analysis time       : {stats.analysis_seconds * 1000:.1f} ms")
    print(f"  total PTFs          : {stats.total_ptfs}")
    print(f"  avg PTFs / procedure: {stats.avg_ptfs:.2f}")

    print()
    print("== the PTF computed for locate() ==")
    for ptf in result.ptfs_of("locate"):
        print("  " + ptf.describe().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
