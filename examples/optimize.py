#!/usr/bin/env python
"""A second optimizer client: dead stores and redundant loads.

The paper's closing point is that the same points-to results serve many
compiler passes.  This example shows the precision of the analysis turning
directly into optimization opportunities — and how an imprecise analysis
would suppress them.

Run:  python examples/optimize.py
"""

from repro import analyze_source
from repro.clients import find_dead_stores, find_redundant_loads
from repro.ir.dot import points_to_graph_to_dot

SOURCE = """
int config_a, config_b;

/* The pointer analysis proves dst and log_slot never alias, so the reload
 * of *dst after the store through log_slot is redundant, and the first
 * store through dst is dead. */
void configure(int **dst, int **log_slot) {
    *dst = &config_a;         /* dead store: overwritten below        */
    *dst = &config_b;
    int *snapshot = *dst;
    *log_slot = &config_a;    /* provably does not alias *dst         */
    int *again = *dst;        /* redundant load: nothing changed *dst */
}

int main(void) {
    int *target;
    int *log_entry;
    configure(&target, &log_entry);
    return target != 0;
}
"""


def main() -> None:
    result = analyze_source(SOURCE, "optimize.c")

    print("== dead stores ==")
    for finding in find_dead_stores(result):
        print(f"  {finding}")

    print()
    print("== redundant loads ==")
    for finding in find_redundant_loads(result):
        print(f"  {finding}")

    print()
    print("== why: the PTF for configure() ==")
    for ptf in result.ptfs_of("configure"):
        print("  " + ptf.describe().replace("\n", "\n  "))

    print()
    print("== the same facts as a Figure-3-style graph (graphviz DOT) ==")
    dot = points_to_graph_to_dot(result, "configure")
    print("\n".join("  " + line for line in dot.splitlines()[:12]))
    print("  ... (pipe through `dot -Tpng` to render)")


if __name__ == "__main__":
    main()
