#!/usr/bin/env python
"""Context sensitivity in action: the paper's Figure 1 program, plus the
comparison against a context-insensitive baseline.

Shows:
* one PTF serving two call sites with the same alias pattern (S1, S2);
* a second PTF for the aliased call (S3) — Figures 3 and 4;
* the precision gap versus Andersen's analysis (unrealizable paths).

Run:  python examples/context_sensitivity.py
"""

from repro import analyze_source, load_program
from repro.baselines import andersen_analyze, steensgaard_analyze

FIG1 = """
int x, y, z;
int *x0, *y0, *z0;

void f(int **p, int **q, int **r) {
    *p = *q;
    *q = *r;
}

int main(void) {
    int test1 = 1, test2 = 0;
    x0 = &x; y0 = &y; z0 = &z;
    if (test1)
        f(&x0, &y0, &z0);      /* S1: no aliases among inputs  */
    else if (test2)
        f(&z0, &x0, &y0);      /* S2: same pattern as S1       */
    else
        f(&x0, &y0, &x0);      /* S3: p and r alias            */
    return 0;
}
"""


def main() -> None:
    wl = analyze_source(FIG1, "fig1.c")

    print("== partial transfer functions for f ==")
    for i, ptf in enumerate(wl.ptfs_of("f"), 1):
        print(f"--- PTF {i} ---")
        print(ptf.describe())
        print()

    print(f"f has {len(wl.ptfs_of('f'))} PTFs for 3 call sites "
          f"(S1 and S2 share one: same alias pattern)")
    print()

    print("== whole-program pointer values (Wilson-Lam) ==")
    for var in ("x0", "y0", "z0"):
        print(f"  {var} -> {sorted(wl.points_to_names('main', var))}")
    print()

    andersen = andersen_analyze(load_program(FIG1, "fig1.c"))
    steens = steensgaard_analyze(load_program(FIG1, "fig1.c"))
    print("== the precision spectrum ==")
    print(f"{'var':<4} {'Wilson-Lam':<18} {'Andersen':<18} {'Steensgaard':<18}")
    for var in ("x0", "y0", "z0"):
        print(
            f"{var:<4} "
            f"{str(sorted(wl.points_to_names('main', var))):<18} "
            f"{str(sorted(andersen.points_to_names('main', var))):<18} "
            f"{str(sorted(steens.points_to_names('main', var))):<18}"
        )
    print()
    print("Context sensitivity keeps S2's aliases out of S1's results —")
    print("the 'unrealizable paths' the paper's introduction describes.")


if __name__ == "__main__":
    main()
