#!/usr/bin/env python
"""Loop parallelization driven by pointer analysis (§7 / Table 3).

Feeds a numeric C kernel through the Wilson-Lam analysis, asks the
parallelizer which loops are safe (the alias questions go to the
analysis), and models the speedups on a small multiprocessor.

Run:  python examples/parallelize.py
"""

from repro import analyze_source
from repro.clients import MachineModel, Parallelizer

KERNEL = """
#include <math.h>
#define N 1024

double a[N], b[N], c[N];
double coupled[N];

/* independent iterations: parallel once the analysis proves the three
 * formals never alias */
void vector_fma(double *x, double *y, double *z, int n) {
    int i;
    for (i = 0; i < n; i++)
        z[i] = x[i] * y[i] + z[i];
}

/* a reduction: parallelizable as a sum */
double dot(double *x, double *y, int n) {
    int i;
    double sum = 0.0;
    for (i = 0; i < N; i++)
        sum += x[i] * y[i];
    return sum;
}

/* loop-carried dependence through coupled[i-1]: NOT parallel */
void prefix(double *x, int n) {
    int i;
    for (i = 1; i < N; i++)
        coupled[i] = coupled[i - 1] + x[i];
}

int main(void) {
    vector_fma(a, b, c, N);
    double s = dot(a, c, N);
    prefix(b, N);
    return s > 0.0;
}
"""


def main() -> None:
    analysis = analyze_source(KERNEL, "kernel.c")
    par = Parallelizer(KERNEL, alias_oracle=analysis, filename="kernel.c")
    par.run()

    print("== loop classification ==")
    for loop in par.all_loops():
        verdict = "PARALLEL" if loop.parallel else "serial  "
        print(f"  {loop.proc:<12} line {loop.line:>3}  {verdict}  ({loop.reason})")

    print()
    print("== alias facts the parallelizer used ==")
    for a, b in [("x", "y"), ("x", "z"), ("y", "z")]:
        print(f"  vector_fma: {a} vs {b} may alias? "
              f"{analysis.may_alias('vector_fma', a, b)}")

    print()
    print("== modelled multiprocessor execution ==")
    model = MachineModel()
    timing = model.time_program(
        "kernel", par.all_loops(), invocations={l.line: 100 for l in par.all_loops()}
    )
    name, pct, avg_ms, s2, s4 = timing.row()
    print(f"  parallel coverage : {pct:.1f}% of loop time")
    print(f"  avg time per loop : {avg_ms:.2f} ms")
    print(f"  speedup on 2 CPUs : {s2:.2f}")
    print(f"  speedup on 4 CPUs : {s4:.2f}")

    print()
    print("== what imprecision would cost ==")

    class ParanoidOracle:
        def may_alias(self, proc, a, b):
            return True  # a context-insensitive worst case

    par2 = Parallelizer(KERNEL, alias_oracle=ParanoidOracle(), filename="kernel.c")
    par2.run()
    lost = len(par.parallel_loops()) - len(par2.parallel_loops())
    print(f"  an always-aliased oracle loses {lost} parallel loop(s)")


if __name__ == "__main__":
    main()
