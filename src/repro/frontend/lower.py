"""Lower pycparser ASTs to the analysis IR (§3.1, §4.4).

The front end converts every assignment into *points-to form*: rvalue
variable references become contents-of-location terms, struct member and
array accesses become ``(offset, stride)`` decorations on location
expressions, and pointer arithmetic becomes :class:`AdjustTerm` — simple
increments fold into strides, arbitrary arithmetic blurs to stride 1.

Control flow lowers to one node per statement: assignments, calls, meets at
joins, and plain branch nodes.  Short-circuit operators and ``?:`` build
real diamonds (their side effects must stay on the right paths — otherwise a
strong update in one arm could unsoundly kill the other arm's effect), and
``switch``/``goto``/``break``/``continue`` resolve to explicit edges.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from pycparser import c_ast

from ..ir.expr import (
    AddressTerm,
    AdjustTerm,
    ContentsTerm,
    DerefLoc,
    GlobalSymbol,
    LocalSymbol,
    LocExpr,
    ProcSymbol,
    StringSymbol,
    Symbol,
    SymbolLoc,
    UNKNOWN,
    ValueExpr,
    address_of,
    contents_of,
    unknown_value,
)
from ..ir.nodes import AssignNode, BranchNode, CallNode, MeetNode, Node
from ..ir.program import GlobalInit, Procedure, Program
from . import ctypes_model as tm
from .typebuild import ConstEvalError, FrontendError, TypeBuilder

__all__ = ["Lowerer", "lower_translation_unit", "FrontendError"]


def _unescape_c_string(text: str) -> str:
    """Decode a C string literal's escapes (approximately)."""
    body = text
    if body.startswith("L"):
        body = body[1:]
    body = body[1:-1]
    out: list[str] = []
    i = 0
    while i < len(body):
        c = body[i]
        if c == "\\" and i + 1 < len(body):
            n = body[i + 1]
            simple = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
                      '"': '"', "'": "'", "a": "\a", "b": "\b", "f": "\f", "v": "\v"}
            if n in simple:
                out.append(simple[n])
                i += 2
                continue
            if n in "xX":
                j = i + 2
                while j < len(body) and body[j] in "0123456789abcdefABCDEF":
                    j += 1
                out.append(chr(int(body[i + 2 : j] or "0", 16) & 0xFF))
                i = j
                continue
            if n.isdigit():
                j = i + 1
                while j < len(body) and body[j].isdigit() and j < i + 4:
                    j += 1
                out.append(chr(int(body[i + 1 : j], 8) & 0xFF))
                i = j
                continue
        out.append(c)
        i += 1
    return "".join(out)


class _RValue:
    """A lowered rvalue: its pointer-relevant value and its C type."""

    __slots__ = ("value", "ctype")

    def __init__(self, value: ValueExpr, ctype: tm.CType) -> None:
        self.value = value
        self.ctype = ctype


class _LValue:
    """A lowered lvalue: the locations it names and its C type."""

    __slots__ = ("loc", "ctype")

    def __init__(self, loc: LocExpr, ctype: tm.CType) -> None:
        self.loc = loc
        self.ctype = ctype


def _loc_with_offset(loc: LocExpr, delta: int) -> LocExpr:
    if isinstance(loc, SymbolLoc):
        return SymbolLoc(loc.symbol, loc.offset + delta, loc.stride)
    assert isinstance(loc, DerefLoc)
    return DerefLoc(loc.pointer, loc.offset + delta, loc.stride, loc.blur)


def _loc_with_stride(loc: LocExpr, stride: int) -> LocExpr:
    from math import gcd

    if isinstance(loc, SymbolLoc):
        return SymbolLoc(loc.symbol, loc.offset, gcd(loc.stride, stride))
    assert isinstance(loc, DerefLoc)
    return DerefLoc(loc.pointer, loc.offset, gcd(loc.stride, stride), loc.blur)


class Lowerer:
    """Lowers one or more translation units into a :class:`Program`."""

    def __init__(self, program_name: str = "<program>") -> None:
        self.types = TypeBuilder()
        self.program = Program(program_name)
        # file-scope symbol table: name -> (Symbol, CType)
        self.file_scope: dict[str, tuple[Symbol, tm.CType]] = {}
        self._static_counter = itertools.count()
        #: tolerant-mode hook: ``fault_handler(proc_name, exc)`` is called
        #: (and the partial procedure discarded) instead of propagating a
        #: :class:`FrontendError` out of one function definition.  ``None``
        #: (the default) keeps the historical raise-through behavior.
        self.fault_handler = None

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def lower(self, ast: c_ast.FileAST) -> Program:
        # pre-pass: register all function definitions so forward calls and
        # function pointers to later-defined functions resolve
        for ext in ast.ext:
            if isinstance(ext, c_ast.FuncDef):
                try:
                    name = ext.decl.name
                    ftype = self.types.type_of(ext.decl.type)
                    assert isinstance(ftype, tm.CFunction)
                    self.file_scope[name] = (ProcSymbol(name), ftype)
                except FrontendError:
                    if self.fault_handler is None:
                        raise
                    # leave unregistered; the definition pass below hits
                    # the same error and records the quarantine there
        for ext in ast.ext:
            if isinstance(ext, c_ast.Typedef):
                self.types.add_typedef(ext.name, ext.type)
            elif isinstance(ext, c_ast.Decl):
                self._lower_file_decl(ext)
            elif isinstance(ext, c_ast.FuncDef):
                if self.fault_handler is None:
                    self._lower_funcdef(ext)
                else:
                    name = getattr(ext.decl, "name", None) or "?"
                    try:
                        self._lower_funcdef(ext)
                    except FrontendError as exc:
                        # quarantine just this procedure: drop the partial
                        # (under-approximating, unsound-to-apply) lowering
                        # and let the engine havoc its call sites
                        self.program.procedures.pop(name, None)
                        self.fault_handler(name, exc)
            elif isinstance(ext, (c_ast.Pragma,)):
                pass
            else:
                raise FrontendError(
                    f"unsupported top-level {type(ext).__name__}", ext.coord
                )
        return self.program

    def _lower_file_decl(self, decl: c_ast.Decl) -> None:
        ctype = self.types.type_of(decl.type)
        if isinstance(ctype, tm.CFunction):
            # function declaration (prototype); remember its type
            if decl.name and decl.name not in self.file_scope:
                self.file_scope[decl.name] = (ProcSymbol(decl.name), ctype)
            return
        if decl.name is None:
            return  # bare struct/union/enum declaration
        storage = decl.storage or []
        if "typedef" in storage:
            self.types.add_typedef(decl.name, decl.type)
            return
        existing = self.file_scope.get(decl.name)
        if existing is not None and isinstance(existing[0], GlobalSymbol):
            symbol = existing[0]
            # complete the type (e.g. extern then defining declaration)
            self.file_scope[decl.name] = (symbol, ctype)
        else:
            symbol = GlobalSymbol(
                decl.name,
                size=ctype.size if ctype.is_complete else None,
                is_static="static" in storage,
            )
            self.file_scope[decl.name] = (symbol, ctype)
        self.program.add_global(symbol)
        if decl.init is not None:
            self._lower_global_init(SymbolLoc(symbol), ctype, decl.init)

    def _lower_global_init(
        self, loc: LocExpr, ctype: tm.CType, init: c_ast.Node
    ) -> None:
        """Static initializers: evaluated in the root context."""
        if isinstance(init, c_ast.InitList):
            self._lower_global_initlist(loc, ctype, init)
            return
        value, vtype = self._lower_static_value(init, ctype)
        size = ctype.size if ctype.is_complete else tm.WORD_SIZE
        if isinstance(ctype, tm.CArray) and isinstance(init, c_ast.Constant):
            # char buf[] = "..." — no pointers involved
            return
        if not value.is_unknown:
            self.program.global_inits.append(GlobalInit(loc, value, size))

    def _lower_global_initlist(
        self, loc: LocExpr, ctype: tm.CType, init: c_ast.InitList
    ) -> None:
        entries = self._initlist_entries(ctype, init)
        for offset, mtype, expr in entries:
            self._lower_global_init(_loc_with_offset(loc, offset), mtype, expr)

    def _lower_static_value(
        self, node: c_ast.Node, want: tm.CType
    ) -> tuple[ValueExpr, tm.CType]:
        """Evaluate a static initializer expression without a flow graph."""
        if isinstance(node, c_ast.Constant):
            if node.type == "string":
                sym = self._string_symbol(node)
                return address_of(SymbolLoc(sym)), tm.type_charptr
            return unknown_value(), want
        if isinstance(node, c_ast.UnaryOp) and node.op == "&":
            lval = self._static_lvalue(node.expr)
            if lval is not None:
                return address_of(lval.loc), tm.CPointer(lval.ctype)
            return unknown_value(), want
        if isinstance(node, c_ast.ID):
            entry = self.file_scope.get(node.name)
            if entry is not None:
                sym, ctype = entry
                if isinstance(sym, ProcSymbol):
                    return address_of(SymbolLoc(sym)), tm.CPointer(ctype)
                if isinstance(ctype, tm.CArray):
                    stride = ctype.element.size if ctype.element.is_complete else 1
                    return (
                        address_of(SymbolLoc(sym, 0, 0)),
                        tm.CPointer(ctype.element),
                    )
            return unknown_value(), want
        if isinstance(node, c_ast.Cast):
            return self._lower_static_value(node.expr, want)
        # anything else (arithmetic of constants, sizeof, ...) is unknown
        return unknown_value(), want

    def _static_lvalue(self, node: c_ast.Node) -> Optional[_LValue]:
        if isinstance(node, c_ast.ID):
            entry = self.file_scope.get(node.name)
            if entry is None:
                return None
            sym, ctype = entry
            return _LValue(SymbolLoc(sym), ctype)
        if isinstance(node, c_ast.StructRef) and node.type == ".":
            base = self._static_lvalue(node.name)
            if base is None or not isinstance(base.ctype, tm.CRecord):
                return None
            fieldinfo = base.ctype.field(node.field.name)
            return _LValue(
                _loc_with_offset(base.loc, fieldinfo.offset), fieldinfo.ctype
            )
        if isinstance(node, c_ast.ArrayRef):
            base = self._static_lvalue(node.name)
            if base is None or not isinstance(base.ctype, tm.CArray):
                return None
            elem = base.ctype.element
            stride = elem.size if elem.is_complete else 1
            return _LValue(_loc_with_stride(base.loc, stride), elem)
        return None

    def _string_symbol(self, node: c_ast.Constant) -> StringSymbol:
        text = _unescape_c_string(node.value)
        # number sites per *program*, not per process: a global counter would
        # make block names (and thus rendered results) depend on how many
        # programs were lowered earlier in the same interpreter, breaking
        # run-to-run reproducibility of analysis output
        site = f"str{len(self.program.string_blocks)}"
        sym = StringSymbol(f"<{site}>", size=len(text) + 1, text=text, site=site)
        self.program.string_block(sym)
        return sym

    def _initlist_entries(
        self, ctype: tm.CType, init: c_ast.InitList
    ) -> list[tuple[int, tm.CType, c_ast.Node]]:
        """Flatten one level of an initializer list into (offset, type, expr)."""
        entries: list[tuple[int, tm.CType, c_ast.Node]] = []
        if isinstance(ctype, tm.CRecord) and not ctype.is_union:
            fields = [f for f in ctype.fields if f.bit_width is None]
            index = 0
            for item in init.exprs or []:
                expr = item
                if isinstance(item, c_ast.NamedInitializer):
                    name = item.name[0].name if item.name else None
                    for k, f in enumerate(fields):
                        if f.name == name:
                            index = k
                            break
                    expr = item.expr
                if index < len(fields):
                    f = fields[index]
                    entries.append((f.offset, f.ctype, expr))
                index += 1
        elif isinstance(ctype, tm.CRecord):
            if init.exprs and ctype.fields:
                f = ctype.fields[0]
                entries.append((f.offset, f.ctype, init.exprs[0]))
        elif isinstance(ctype, tm.CArray):
            elem = ctype.element
            stride = elem.size if elem.is_complete else 1
            index = 0
            for item in init.exprs or []:
                expr = item
                if isinstance(item, c_ast.NamedInitializer):
                    # [i] = designators
                    des = item.name[0] if item.name else None
                    value = self.types.try_const_value(des) if des is not None else None
                    if value is not None:
                        index = value
                    expr = item.expr
                entries.append((index * stride, elem, expr))
                index += 1
        else:
            if init.exprs:
                entries.append((0, ctype, init.exprs[0]))
        return entries

    # ------------------------------------------------------------------
    # procedures
    # ------------------------------------------------------------------

    def _lower_funcdef(self, funcdef: c_ast.FuncDef) -> None:
        name = funcdef.decl.name
        ftype = self.types.type_of(funcdef.decl.type)
        assert isinstance(ftype, tm.CFunction)
        proc = Procedure(name, ftype=ftype, coord=str(funcdef.coord))
        if funcdef.coord is not None and funcdef.body.coord is not None:
            proc.source_lines = 1
        self.program.add_procedure(proc)
        self.program.proc_block(name)
        lowerer = _ProcLowerer(self, proc, funcdef)
        lowerer.run()


def lower_translation_unit(ast: c_ast.FileAST, name: str = "<program>") -> Program:
    """One-shot lowering of a parsed translation unit."""
    return Lowerer(name).lower(ast)


# ---------------------------------------------------------------------------
# per-procedure lowering
# ---------------------------------------------------------------------------


class _ProcLowerer:
    def __init__(self, parent: Lowerer, proc: Procedure, funcdef: c_ast.FuncDef) -> None:
        self.parent = parent
        self.types = parent.types
        self.program = parent.program
        self.proc = proc
        self.funcdef = funcdef
        self.cur: Optional[Node] = proc.entry
        # lexical scopes: innermost last; name -> (LocalSymbol, CType)
        self.scopes: list[dict[str, tuple[Symbol, tm.CType]]] = [{}]
        self.break_targets: list[Node] = []
        self.continue_targets: list[Node] = []
        self.labels: dict[str, Node] = {}
        self.pending_gotos: list[tuple[str, Node]] = []
        self._temp_counter = itertools.count()

    # -- plumbing --------------------------------------------------------

    def append(self, node: Node) -> Node:
        if self.cur is not None:
            self.cur.add_succ(node)
        self.cur = node
        return node

    def new_temp(self, ctype: tm.CType, hint: str = "t") -> LocalSymbol:
        name = f"__{hint}{next(self._temp_counter)}"
        size = ctype.size if ctype.is_complete else tm.WORD_SIZE
        sym = LocalSymbol(name, size=size, proc_name=self.proc.name)
        self.proc.add_local(sym)
        self.scopes[0][name] = (sym, ctype)
        return sym

    def lookup(self, name: str) -> Optional[tuple[Symbol, tm.CType]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        entry = self.parent.file_scope.get(name)
        if entry is not None:
            return entry
        return None

    def _size_of(self, ctype: tm.CType) -> int:
        ctype = self.types.refresh(ctype)
        return ctype.size if ctype.is_complete else tm.WORD_SIZE

    # -- driver -----------------------------------------------------------

    def run(self) -> None:
        self._declare_formals()
        if self.funcdef.body is not None:
            self.stmt(self.funcdef.body)
        if self.cur is not None:
            self.cur.add_succ(self.proc.exit)
        for label, node in self.pending_gotos:
            target = self.labels.get(label)
            if target is None:
                raise FrontendError(
                    f"goto to unknown label {label!r} in {self.proc.name}"
                )
            node.add_succ(target)
        self.proc.source_lines = self._count_lines()
        self.proc.finalize()

    def _count_lines(self) -> int:
        lo = hi = None

        def visit(n: c_ast.Node) -> None:
            nonlocal lo, hi
            coord = getattr(n, "coord", None)
            if coord is not None and getattr(coord, "line", 0):
                line = coord.line
                lo = line if lo is None or line < lo else lo
                hi = line if hi is None or line > hi else hi
            for _, child in n.children():
                visit(child)
        visit(self.funcdef)
        if lo is None or hi is None:
            return 1
        return hi - lo + 1

    def _declare_formals(self) -> None:
        decl = self.funcdef.decl.type
        assert isinstance(decl, c_ast.FuncDecl)
        params = decl.args.params if decl.args is not None else []
        # K&R-style parameter declarations
        knr = {}
        if self.funcdef.param_decls:
            for d in self.funcdef.param_decls:
                knr[d.name] = self.types.type_of(d.type)
        index = 0
        for p in params:
            if isinstance(p, c_ast.EllipsisParam):
                continue
            if isinstance(p, c_ast.ID):
                name = p.name
                ctype = knr.get(name, tm.type_int)
            elif isinstance(p, c_ast.Typename) or p.name is None:
                continue  # unnamed parameter
            else:
                name = p.name
                ctype = self.types.type_of(p.type)
            ctype = TypeBuilder.decay(ctype)
            if isinstance(ctype, tm.CVoid):
                continue
            sym = LocalSymbol(
                name,
                size=self._size_of(ctype),
                proc_name=self.proc.name,
                is_formal=True,
                formal_index=index,
            )
            index += 1
            self.proc.add_local(sym)
            self.proc.formals.append(sym)
            self.scopes[0][name] = (sym, ctype)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def stmt(self, node: c_ast.Node) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        # expression statement
        self.rvalue(node)

    def _stmt_Compound(self, node: c_ast.Compound) -> None:
        self.scopes.append({})
        try:
            for item in node.block_items or []:
                self.stmt(item)
        finally:
            self.scopes.pop()

    def _stmt_Decl(self, node: c_ast.Decl) -> None:
        storage = node.storage or []
        if "typedef" in storage:
            self.types.add_typedef(node.name, node.type)
            return
        ctype = self.types.type_of(node.type)
        if isinstance(ctype, tm.CFunction):
            if node.name and node.name not in self.parent.file_scope:
                self.parent.file_scope[node.name] = (ProcSymbol(node.name), ctype)
            return
        if node.name is None:
            return
        if "extern" in storage:
            entry = self.parent.file_scope.get(node.name)
            if entry is None:
                sym = GlobalSymbol(node.name, size=self._size_of(ctype))
                self.parent.file_scope[node.name] = (sym, ctype)
                self.program.add_global(sym)
            return
        if "static" in storage:
            mangled = f"{self.proc.name}.{node.name}.{next(self.parent._static_counter)}"
            sym = GlobalSymbol(mangled, size=self._size_of(ctype), is_static=True)
            self.program.add_global(sym)
            self.scopes[-1][node.name] = (sym, ctype)
            if node.init is not None:
                self.parent._lower_global_init(SymbolLoc(sym), ctype, node.init)
            return
        # VLA dimensions contain expressions; evaluate them for effect
        self._eval_vla_dims(node.type)
        sym = LocalSymbol(node.name, size=self._size_of(ctype), proc_name=self.proc.name)
        self.proc.add_local(sym)
        self.scopes[-1][node.name] = (sym, ctype)
        if node.init is not None:
            self._lower_local_init(SymbolLoc(sym), ctype, node.init)

    def _eval_vla_dims(self, tnode: c_ast.Node) -> None:
        if isinstance(tnode, c_ast.ArrayDecl):
            if tnode.dim is not None and self.types.try_const_value(tnode.dim) is None:
                self.rvalue(tnode.dim)
            self._eval_vla_dims(tnode.type)
        elif isinstance(tnode, (c_ast.TypeDecl, c_ast.PtrDecl)):
            if hasattr(tnode, "type") and isinstance(tnode.type, c_ast.Node):
                if isinstance(tnode.type, c_ast.ArrayDecl):
                    self._eval_vla_dims(tnode.type)

    def _lower_local_init(
        self, loc: LocExpr, ctype: tm.CType, init: c_ast.Node
    ) -> None:
        if isinstance(init, c_ast.InitList):
            for offset, mtype, expr in self.parent._initlist_entries(ctype, init):
                self._lower_local_init(_loc_with_offset(loc, offset), mtype, expr)
            return
        if isinstance(ctype, tm.CArray):
            if isinstance(init, c_ast.Constant) and init.type == "string":
                return  # char buf[] = "..." copies characters, not pointers
        rv = self.rvalue(init)
        size = min(self._size_of(ctype), self._size_of(rv.ctype))
        coord = str(init.coord) if getattr(init, "coord", None) else None
        self.append(AssignNode(self.proc, loc, rv.value, max(size, 1), coord))

    def _stmt_If(self, node: c_ast.If) -> None:
        self.rvalue(node.cond)  # evaluate for side effects
        branch = self.append(BranchNode(self.proc))
        join = MeetNode(self.proc)
        # then arm
        self.cur = branch
        if node.iftrue is not None:
            self.stmt(node.iftrue)
        if self.cur is not None:
            self.cur.add_succ(join)
        # else arm
        self.cur = branch
        if node.iffalse is not None:
            self.stmt(node.iffalse)
        if self.cur is not None:
            self.cur.add_succ(join)
        self.cur = join if join.preds else None

    def _stmt_While(self, node: c_ast.While) -> None:
        head = self.append(MeetNode(self.proc))
        self.rvalue(node.cond)
        branch = self.append(BranchNode(self.proc))
        exit_meet = MeetNode(self.proc)
        branch.add_succ(exit_meet)
        self.break_targets.append(exit_meet)
        self.continue_targets.append(head)
        self.cur = branch
        if node.stmt is not None:
            self.stmt(node.stmt)
        if self.cur is not None:
            self.cur.add_succ(head)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.cur = exit_meet

    def _stmt_DoWhile(self, node: c_ast.DoWhile) -> None:
        head = self.append(MeetNode(self.proc))
        exit_meet = MeetNode(self.proc)
        cond_meet = MeetNode(self.proc)
        self.break_targets.append(exit_meet)
        self.continue_targets.append(cond_meet)
        if node.stmt is not None:
            self.stmt(node.stmt)
        if self.cur is not None:
            self.cur.add_succ(cond_meet)
        self.cur = cond_meet if cond_meet.preds else None
        if self.cur is not None:
            self.rvalue(node.cond)
            branch = self.append(BranchNode(self.proc))
            branch.add_succ(head)
            branch.add_succ(exit_meet)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.cur = exit_meet if exit_meet.preds else None

    def _stmt_For(self, node: c_ast.For) -> None:
        if node.init is not None:
            if isinstance(node.init, c_ast.DeclList):
                self.scopes.append({})
                for d in node.init.decls:
                    self.stmt(d)
            else:
                self.stmt(node.init)
        head = self.append(MeetNode(self.proc))
        if node.cond is not None:
            self.rvalue(node.cond)
        branch = self.append(BranchNode(self.proc))
        exit_meet = MeetNode(self.proc)
        branch.add_succ(exit_meet)
        step_meet = MeetNode(self.proc)
        self.break_targets.append(exit_meet)
        self.continue_targets.append(step_meet)
        self.cur = branch
        if node.stmt is not None:
            self.stmt(node.stmt)
        if self.cur is not None:
            self.cur.add_succ(step_meet)
        self.cur = step_meet if step_meet.preds else None
        if self.cur is not None:
            if node.next is not None:
                self.rvalue(node.next)
            if self.cur is not None:
                self.cur.add_succ(head)
        self.break_targets.pop()
        self.continue_targets.pop()
        if isinstance(node.init, c_ast.DeclList):
            self.scopes.pop()
        self.cur = exit_meet

    def _stmt_Switch(self, node: c_ast.Switch) -> None:
        self.rvalue(node.cond)
        dispatch = self.append(BranchNode(self.proc))
        exit_meet = MeetNode(self.proc)
        self.break_targets.append(exit_meet)
        self.cur = None
        self._switch_had_default = False
        body = node.stmt
        items = body.block_items or [] if isinstance(body, c_ast.Compound) else [body]
        self.scopes.append({})
        for item in items:
            self._switch_item(item, dispatch)
        self.scopes.pop()
        if self.cur is not None:
            self.cur.add_succ(exit_meet)
        if not self._switch_had_default:
            dispatch.add_succ(exit_meet)
        self._switch_had_default = False
        self.break_targets.pop()
        self.cur = exit_meet if exit_meet.preds else None

    _switch_had_default = False

    def _switch_item(self, item: c_ast.Node, dispatch: Node) -> None:
        while isinstance(item, (c_ast.Case, c_ast.Default)):
            meet = MeetNode(self.proc)
            dispatch.add_succ(meet)
            if self.cur is not None:
                self.cur.add_succ(meet)  # fall-through
            self.cur = meet
            if isinstance(item, c_ast.Default):
                self._switch_had_default = True
            stmts = item.stmts or []
            # pycparser nests the first statement inside the case
            inner = None
            rest = []
            if stmts:
                inner, rest = stmts[0], stmts[1:]
            if inner is not None and isinstance(inner, (c_ast.Case, c_ast.Default)):
                item = inner
                continue
            if inner is not None:
                self.stmt(inner)
            for s in rest:
                self.stmt(s)
            return
        self.stmt(item)

    def _stmt_Break(self, node: c_ast.Break) -> None:
        if not self.break_targets:
            raise FrontendError("break outside loop/switch", node.coord)
        if self.cur is not None:
            self.cur.add_succ(self.break_targets[-1])
        self.cur = None

    def _stmt_Continue(self, node: c_ast.Continue) -> None:
        if not self.continue_targets:
            raise FrontendError("continue outside loop", node.coord)
        if self.cur is not None:
            self.cur.add_succ(self.continue_targets[-1])
        self.cur = None

    def _stmt_Return(self, node: c_ast.Return) -> None:
        if node.expr is not None:
            rv = self.rvalue(node.expr)
            size = self._size_of(rv.ctype)
            self.append(
                AssignNode(
                    self.proc,
                    SymbolLoc(self.proc.return_symbol),
                    rv.value,
                    max(size, 1),
                    str(node.coord) if node.coord else None,
                )
            )
        if self.cur is not None:
            self.cur.add_succ(self.proc.exit)
        self.cur = None

    def _stmt_Goto(self, node: c_ast.Goto) -> None:
        if self.cur is not None:
            target = self.labels.get(node.name)
            if target is not None:
                self.cur.add_succ(target)
            else:
                self.pending_gotos.append((node.name, self.cur))
        self.cur = None

    def _stmt_Label(self, node: c_ast.Label) -> None:
        meet = MeetNode(self.proc)
        self.labels[node.name] = meet
        if self.cur is not None:
            self.cur.add_succ(meet)
        self.cur = meet
        if node.stmt is not None:
            self.stmt(node.stmt)

    def _stmt_EmptyStatement(self, node: c_ast.EmptyStatement) -> None:
        pass

    def _stmt_Pragma(self, node: c_ast.Pragma) -> None:
        pass

    def _stmt_DeclList(self, node: c_ast.DeclList) -> None:
        for d in node.decls:
            self.stmt(d)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def rvalue(self, node: c_ast.Node) -> _RValue:
        method = getattr(self, f"_rv_{type(node).__name__}", None)
        if method is None:
            raise FrontendError(
                f"unsupported expression {type(node).__name__}", getattr(node, "coord", None)
            )
        return method(node)

    def lvalue(self, node: c_ast.Node) -> _LValue:
        method = getattr(self, f"_lv_{type(node).__name__}", None)
        if method is None:
            raise FrontendError(
                f"expression is not an lvalue: {type(node).__name__}",
                getattr(node, "coord", None),
            )
        return method(node)

    # -- lvalues ---------------------------------------------------------

    def _lv_ID(self, node: c_ast.ID) -> _LValue:
        entry = self.lookup(node.name)
        if entry is None:
            if node.name in self.types.enum_constants:
                raise FrontendError(f"enum constant {node.name} is not an lvalue", node.coord)
            # implicit declaration: treat as a fresh global int
            sym = GlobalSymbol(node.name, size=tm.WORD_SIZE)
            self.parent.file_scope[node.name] = (sym, tm.type_int)
            self.program.add_global(sym)
            return _LValue(SymbolLoc(sym), tm.type_int)
        sym, ctype = entry
        if isinstance(sym, ProcSymbol):
            return _LValue(SymbolLoc(sym), ctype)
        return _LValue(SymbolLoc(sym), ctype)

    def _lv_UnaryOp(self, node: c_ast.UnaryOp) -> _LValue:
        if node.op != "*":
            raise FrontendError(f"unary {node.op} is not an lvalue", node.coord)
        rv = self.rvalue(node.expr)
        pointee = self._pointee(rv.ctype)
        if isinstance(pointee, tm.CFunction):
            # *fp in a call position: the lvalue is the function itself
            raise FrontendError("cannot use function as data lvalue", node.coord)
        return _LValue(DerefLoc(rv.value), pointee)

    def _lv_ArrayRef(self, node: c_ast.ArrayRef) -> _LValue:
        base_node, index_node = node.name, node.subscript
        base_t = self._type_of_expr(base_node)
        if not isinstance(base_t, (tm.CArray, tm.CPointer)):
            base_node, index_node = index_node, base_node  # i[a] form
            base_t = self._type_of_expr(base_node)
        self.rvalue(index_node)  # evaluate index for side effects
        if isinstance(base_t, tm.CArray):
            base = self.lvalue(base_node)
            assert isinstance(base.ctype, tm.CArray)
            elem = base.ctype.element
            stride = elem.size if elem.is_complete else 1
            return _LValue(_loc_with_stride(base.loc, stride), elem)
        rv = self.rvalue(base_node)
        elem = self._pointee(rv.ctype)
        stride = elem.size if elem.is_complete else 1
        return _LValue(DerefLoc(rv.value, 0, stride), elem)

    def _lv_StructRef(self, node: c_ast.StructRef) -> _LValue:
        fname = node.field.name
        if node.type == ".":
            base = self.lvalue(node.name)
            record = self.types.refresh(base.ctype)
            if not isinstance(record, tm.CRecord):
                return _LValue(base.loc, tm.type_int)
            f = record.field(fname)
            return _LValue(_loc_with_offset(base.loc, f.offset), f.ctype)
        rv = self.rvalue(node.name)
        record = self.types.refresh(self._pointee(rv.ctype))
        if not isinstance(record, tm.CRecord):
            return _LValue(DerefLoc(rv.value), tm.type_int)
        f = record.field(fname)
        return _LValue(DerefLoc(rv.value, f.offset), f.ctype)

    def _lv_Cast(self, node: c_ast.Cast) -> _LValue:
        # (T)x as lvalue is non-standard; treat as the underlying lvalue
        inner = self.lvalue(node.expr)
        return _LValue(inner.loc, self.types.type_of(node.to_type))

    def _lv_Paren(self, node) -> _LValue:  # pragma: no cover - pycparser strips parens
        return self.lvalue(node.expr)

    # -- rvalues -----------------------------------------------------------

    def _type_of_expr(self, node: c_ast.Node) -> tm.CType:
        """Best-effort type of an expression without lowering it."""
        if isinstance(node, c_ast.ID):
            entry = self.lookup(node.name)
            if entry is not None:
                return entry[1]
            if node.name in self.types.enum_constants:
                return tm.type_int
            return tm.type_int
        if isinstance(node, c_ast.Constant):
            if node.type == "string":
                return tm.CPointer(tm.type_char)
            if node.type in ("float", "double", "long double"):
                return tm.type_double
            return tm.type_int
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "&":
                return tm.CPointer(self._type_of_expr(node.expr))
            if node.op == "*":
                return self._pointee(self._type_of_expr(node.expr))
            if node.op == "sizeof":
                return tm.type_uint
            return self._type_of_expr(node.expr)
        if isinstance(node, c_ast.BinaryOp):
            lt = self._type_of_expr(node.left)
            rt = self._type_of_expr(node.right)
            if node.op in ("<", ">", "<=", ">=", "==", "!=", "&&", "||"):
                return tm.type_int
            if node.op in ("+", "-"):
                if isinstance(lt, (tm.CPointer, tm.CArray)):
                    if node.op == "-" and isinstance(rt, (tm.CPointer, tm.CArray)):
                        return tm.type_int
                    return TypeBuilder.decay(lt)
                if isinstance(rt, (tm.CPointer, tm.CArray)):
                    return TypeBuilder.decay(rt)
            if isinstance(lt, tm.CFloating) or isinstance(rt, tm.CFloating):
                return tm.type_double
            return lt if lt.is_arithmetic else tm.type_int
        if isinstance(node, c_ast.Cast):
            return self.types.type_of(node.to_type)
        if isinstance(node, c_ast.ArrayRef):
            base_t = self._type_of_expr(node.name)
            if isinstance(base_t, tm.CArray):
                return base_t.element
            if isinstance(base_t, tm.CPointer):
                return base_t.pointee
            other = self._type_of_expr(node.subscript)
            if isinstance(other, tm.CArray):
                return other.element
            if isinstance(other, tm.CPointer):
                return other.pointee
            return tm.type_int
        if isinstance(node, c_ast.StructRef):
            base_t = self._type_of_expr(node.name)
            if node.type == "->":
                base_t = self._pointee(base_t)
            base_t = self.types.refresh(base_t)
            if isinstance(base_t, tm.CRecord):
                f = base_t.find_field(node.field.name)
                if f is not None:
                    return f.ctype
            return tm.type_int
        if isinstance(node, c_ast.FuncCall):
            ftype = self._callee_type(node.name)
            return ftype.ret if ftype is not None else tm.type_int
        if isinstance(node, c_ast.Assignment):
            return self._type_of_expr(node.lvalue)
        if isinstance(node, c_ast.TernaryOp):
            t = self._type_of_expr(node.iftrue)
            if isinstance(t, tm.CVoid):
                return self._type_of_expr(node.iffalse)
            return t
        return tm.type_int

    def _callee_type(self, name_node: c_ast.Node) -> Optional[tm.CFunction]:
        t = self._type_of_expr(name_node)
        if isinstance(t, tm.CFunction):
            return t
        if isinstance(t, tm.CPointer) and isinstance(t.pointee, tm.CFunction):
            return t.pointee
        return None

    @staticmethod
    def _pointee(ctype: tm.CType) -> tm.CType:
        if isinstance(ctype, tm.CPointer):
            return ctype.pointee
        if isinstance(ctype, tm.CArray):
            return ctype.element
        return tm.type_int  # dereferencing a non-pointer type (cast away)

    def _rv_Constant(self, node: c_ast.Constant) -> _RValue:
        if node.type == "string":
            sym = self.parent._string_symbol(node)
            return _RValue(address_of(SymbolLoc(sym)), tm.CPointer(tm.type_char))
        if node.type in ("float", "double", "long double"):
            return _RValue(unknown_value(), tm.type_double)
        return _RValue(unknown_value(), tm.type_int)

    def _rv_ID(self, node: c_ast.ID) -> _RValue:
        if node.name in self.types.enum_constants:
            entry = self.lookup(node.name)
            if entry is None:
                return _RValue(unknown_value(), tm.type_int)
        entry = self.lookup(node.name)
        if entry is None:
            if node.name in self.types.enum_constants:
                return _RValue(unknown_value(), tm.type_int)
            # call to/use of an undeclared identifier: implicit int global
            sym = GlobalSymbol(node.name, size=tm.WORD_SIZE)
            self.parent.file_scope[node.name] = (sym, tm.type_int)
            self.program.add_global(sym)
            return _RValue(contents_of(SymbolLoc(sym), tm.WORD_SIZE), tm.type_int)
        sym, ctype = entry
        if isinstance(sym, ProcSymbol) or isinstance(ctype, tm.CFunction):
            return _RValue(address_of(SymbolLoc(sym)), tm.CPointer(ctype))
        if isinstance(ctype, tm.CArray):
            elem = ctype.element
            return _RValue(address_of(SymbolLoc(sym)), tm.CPointer(elem))
        size = self._size_of(ctype)
        return _RValue(contents_of(SymbolLoc(sym), size), ctype)

    def _lvalue_to_rvalue(self, lval: _LValue) -> _RValue:
        if isinstance(lval.ctype, tm.CArray):
            elem = lval.ctype.element
            return _RValue(address_of(lval.loc), tm.CPointer(elem))
        if isinstance(lval.ctype, tm.CFunction):
            return _RValue(address_of(lval.loc), tm.CPointer(lval.ctype))
        size = self._size_of(lval.ctype)
        return _RValue(contents_of(lval.loc, size), lval.ctype)

    def _rv_ArrayRef(self, node: c_ast.ArrayRef) -> _RValue:
        return self._lvalue_to_rvalue(self._lv_ArrayRef(node))

    def _rv_StructRef(self, node: c_ast.StructRef) -> _RValue:
        return self._lvalue_to_rvalue(self._lv_StructRef(node))

    def _rv_UnaryOp(self, node: c_ast.UnaryOp) -> _RValue:
        op = node.op
        if op == "&":
            target_t = self._type_of_expr(node.expr)
            if isinstance(target_t, tm.CFunction):
                return self.rvalue(node.expr)  # &f == f for functions
            lval = self.lvalue(node.expr)
            return _RValue(address_of(lval.loc), tm.CPointer(lval.ctype))
        if op == "*":
            rv = self.rvalue(node.expr)
            pointee = self._pointee(rv.ctype)
            if isinstance(pointee, tm.CFunction):
                return rv  # *fp == fp for function pointers
            pointee = self.types.refresh(pointee)
            if isinstance(pointee, tm.CArray):
                # *p where p points to an array: the result decays to a
                # pointer to the first element — the same pointer value
                return _RValue(rv.value, tm.CPointer(pointee.element))
            size = self._size_of(pointee)
            return _RValue(contents_of(DerefLoc(rv.value), size), pointee)
        if op == "sizeof":
            return _RValue(unknown_value(), tm.type_uint)
        if op in ("++", "--", "p++", "p--"):
            lval = self.lvalue(node.expr)
            rv = self._lvalue_to_rvalue(lval)
            if isinstance(lval.ctype, tm.CPointer):
                elem = lval.ctype.pointee
                stride = elem.size if elem.is_complete else 1
                newval = ValueExpr((AdjustTerm(rv.value, 0, stride),))
            else:
                newval = unknown_value()
            self.append(
                AssignNode(
                    self.proc,
                    lval.loc,
                    newval,
                    self._size_of(lval.ctype),
                    str(node.coord) if node.coord else None,
                )
            )
            # pre-increment yields the new value; post yields the old
            return _RValue(newval if op in ("++", "--") else rv.value, lval.ctype)
        if op in ("-", "+", "~", "!"):
            self.rvalue(node.expr)
            return _RValue(unknown_value(), self._type_of_expr(node))
        raise FrontendError(f"unsupported unary operator {op}", node.coord)

    def _rv_BinaryOp(self, node: c_ast.BinaryOp) -> _RValue:
        op = node.op
        if op in ("&&", "||"):
            return self._short_circuit(node)
        left = self.rvalue(node.left)
        right = self.rvalue(node.right)
        if op in ("<", ">", "<=", ">=", "==", "!="):
            return _RValue(unknown_value(), tm.type_int)
        lt, rt = left.ctype, right.ctype
        l_ptr = isinstance(lt, (tm.CPointer, tm.CArray))
        r_ptr = isinstance(rt, (tm.CPointer, tm.CArray))
        if op in ("+", "-"):
            if l_ptr and r_ptr:
                return _RValue(unknown_value(), tm.type_int)  # pointer difference
            if l_ptr or r_ptr:
                ptr, idx_node = (left, node.right) if l_ptr else (right, node.left)
                elem = self._pointee(ptr.ctype)
                esize = elem.size if elem.is_complete else 1
                const = self.types.try_const_value(idx_node)
                if const is not None:
                    stride = abs(const) * esize
                else:
                    stride = esize
                return _RValue(
                    ValueExpr((AdjustTerm(ptr.value, 0, stride),)),
                    TypeBuilder.decay(ptr.ctype),
                )
        # any other arithmetic: blur every pointer-carrying operand (§3.1)
        terms = []
        for side in (left, right):
            if not side.value.is_unknown:
                terms.append(AdjustTerm(side.value, blur=True))
        if terms:
            return _RValue(ValueExpr(tuple(terms)), self._type_of_expr(node))
        return _RValue(unknown_value(), self._type_of_expr(node))

    def _short_circuit(self, node: c_ast.BinaryOp) -> _RValue:
        """`a && b` / `a || b`: b may or may not run — build a diamond."""
        self.rvalue(node.left)
        branch = self.append(BranchNode(self.proc))
        join = MeetNode(self.proc)
        branch.add_succ(join)  # path that skips the rhs
        self.cur = branch
        self.rvalue(node.right)
        if self.cur is not None:
            self.cur.add_succ(join)
        self.cur = join
        return _RValue(unknown_value(), tm.type_int)

    def _rv_TernaryOp(self, node: c_ast.TernaryOp) -> _RValue:
        self.rvalue(node.cond)
        result_t = self._type_of_expr(node)
        branch = self.append(BranchNode(self.proc))
        join = MeetNode(self.proc)
        temp = self.new_temp(result_t, "cond")
        size = self._size_of(result_t)
        for arm in (node.iftrue, node.iffalse):
            self.cur = branch
            if arm is not None:
                rv = self.rvalue(arm)
                self.append(AssignNode(self.proc, SymbolLoc(temp), rv.value, size))
            if self.cur is not None:
                self.cur.add_succ(join)
        self.cur = join
        return _RValue(contents_of(SymbolLoc(temp), size), result_t)

    def _rv_Assignment(self, node: c_ast.Assignment) -> _RValue:
        lval = self.lvalue(node.lvalue)
        size = self._size_of(lval.ctype)
        if node.op == "=":
            rv = self.rvalue(node.rvalue)
            value = rv.value
            if isinstance(rv.ctype, tm.CRecord) or isinstance(lval.ctype, tm.CRecord):
                size = min(size, self._size_of(rv.ctype))
        else:
            op = node.op[:-1]  # '+=' -> '+'
            old = self._lvalue_to_rvalue(lval)
            rhs = self.rvalue(node.rvalue)
            if op in ("+", "-") and isinstance(lval.ctype, tm.CPointer):
                elem = lval.ctype.pointee
                esize = elem.size if elem.is_complete else 1
                const = self.types.try_const_value(node.rvalue)
                stride = abs(const) * esize if const is not None else esize
                value = ValueExpr((AdjustTerm(old.value, 0, stride),))
            else:
                terms = []
                for side in (old, rhs):
                    if not side.value.is_unknown:
                        terms.append(AdjustTerm(side.value, blur=True))
                value = ValueExpr(tuple(terms)) if terms else unknown_value()
        coord = str(node.coord) if node.coord else None
        self.append(AssignNode(self.proc, lval.loc, value, max(size, 1), coord))
        return _RValue(value, lval.ctype)

    def _rv_Cast(self, node: c_ast.Cast) -> _RValue:
        to_type = self.types.type_of(node.to_type)
        rv = self.rvalue(node.expr)
        return _RValue(rv.value, TypeBuilder.decay(to_type))

    def _rv_FuncCall(self, node: c_ast.FuncCall) -> _RValue:
        return self._lower_call(node, want_value=True)

    def _lower_call(self, node: c_ast.FuncCall, want_value: bool) -> _RValue:
        ftype = self._callee_type(node.name)
        ret_t = ftype.ret if ftype is not None else tm.type_int
        target_rv = self.rvalue(node.name)
        args: list[ValueExpr] = []
        if node.args is not None:
            for a in node.args.exprs:
                args.append(self.rvalue(a).value)
        # record external callees for diagnostics
        if isinstance(node.name, c_ast.ID):
            name = node.name.name
            if name not in self.program.procedures:
                self.program.external_calls.add(name)
        dst: Optional[LocExpr] = None
        dst_size = 0
        result_value: ValueExpr = unknown_value()
        returns_value = not isinstance(ret_t, tm.CVoid)
        if want_value and returns_value:
            temp = self.new_temp(ret_t if ret_t.is_complete else tm.type_int, "ret")
            dst = SymbolLoc(temp)
            dst_size = self._size_of(ret_t)
            result_value = contents_of(dst, dst_size)
        coord = getattr(node, "coord", None)
        site = f"{self.proc.name}@{coord}" if coord else f"{self.proc.name}@call"
        call = CallNode(
            self.proc, target_rv.value, args, dst, dst_size, site, str(coord)
        )
        self.append(call)
        return _RValue(result_value, ret_t)

    def _rv_ExprList(self, node: c_ast.ExprList) -> _RValue:
        result = _RValue(unknown_value(), tm.type_int)
        for expr in node.exprs:
            result = self.rvalue(expr)
        return result

    def _rv_CompoundLiteral(self, node) -> _RValue:
        ctype = self.types.type_of(node.type)
        temp = self.new_temp(ctype, "lit")
        if isinstance(node.init, c_ast.InitList):
            self._lower_local_init(SymbolLoc(temp), ctype, node.init)
        return self._lvalue_to_rvalue(_LValue(SymbolLoc(temp), ctype))

    _lv_CompoundLiteral = None  # not addressable in our model


def parse_and_lower(
    source: str,
    filename: str = "<input>",
    name: str = "<program>",
) -> Program:
    """Convenience: preprocess, parse and lower a single source string."""
    from .parser import parse_c_source

    ast = parse_c_source(source, filename)
    return lower_translation_unit(ast, name)
