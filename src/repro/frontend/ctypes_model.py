"""C type model and memory-layout engine.

The Wilson-Lam analysis is deliberately *not* based on C's high-level types:
memory is modelled as flat blocks addressed by byte offsets and strides
(location sets).  The front end therefore needs exactly one thing from the
type system: a byte-accurate layout — sizes, alignments, field offsets and
array strides — so that lowered expressions carry the right ``(offset,
stride)`` pairs.  This module provides that layout engine.

The target model is a classic ILP32 machine (the paper's DECstation is one):

===============  ====  =====
type             size  align
===============  ====  =====
char / _Bool      1      1
short             2      2
int / long        4      4
long long         8      4
float             4      4
double            8      4
long double       8      4
pointer           4      4
enum              4      4
===============  ====  =====

Struct fields are padded to their alignment, struct alignment is the maximum
field alignment, and the struct size is rounded up to its alignment.  Unions
place every member at offset zero.  These rules match the SysV i386 ABI,
which is close enough to the paper's MIPS target for layout purposes (only
``long long``/``double`` alignment differs, and none of the analysis
decisions depend on it).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "CType",
    "CVoid",
    "CInteger",
    "CFloating",
    "CPointer",
    "CArray",
    "CField",
    "CRecord",
    "CEnum",
    "CFunction",
    "TypeLayoutError",
    "POINTER_SIZE",
    "WORD_SIZE",
    "type_char",
    "type_schar",
    "type_uchar",
    "type_short",
    "type_ushort",
    "type_int",
    "type_uint",
    "type_long",
    "type_ulong",
    "type_longlong",
    "type_ulonglong",
    "type_bool",
    "type_float",
    "type_double",
    "type_longdouble",
    "type_void",
    "type_voidptr",
    "type_charptr",
]

#: Size in bytes of a pointer on the target (ILP32).
POINTER_SIZE = 4

#: The machine word size; the paper's assignment evaluation distinguishes
#: "one word or less" from aggregate (multi-word) assignments.
WORD_SIZE = 4

_MAX_ALIGN = 4


class TypeLayoutError(Exception):
    """Raised when a size or offset is requested for an incomplete type."""


@dataclass(frozen=True)
class CType:
    """Base class for all C types in the model."""

    @property
    def size(self) -> int:
        """Size of the type in bytes."""
        raise TypeLayoutError(f"type {self!r} has no size")

    @property
    def align(self) -> int:
        """Alignment requirement of the type in bytes."""
        raise TypeLayoutError(f"type {self!r} has no alignment")

    @property
    def is_complete(self) -> bool:
        """Whether the size of the type is known."""
        try:
            self.size
        except TypeLayoutError:
            return False
        return True

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, CPointer)

    @property
    def is_record(self) -> bool:
        return isinstance(self, CRecord)

    @property
    def is_array(self) -> bool:
        return isinstance(self, CArray)

    @property
    def is_function(self) -> bool:
        return isinstance(self, CFunction)

    @property
    def is_arithmetic(self) -> bool:
        return isinstance(self, (CInteger, CFloating, CEnum))

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or self.is_pointer

    def may_hold_pointer(self) -> bool:
        """Conservative test: could a value of this type carry a pointer?

        The analysis itself never trusts this — any memory word may hold a
        pointer — but clients use it to prune reporting.
        """
        if self.is_pointer:
            return True
        if isinstance(self, CInteger):
            # ints are routinely cast to/from pointers in real C programs
            return self.size >= POINTER_SIZE
        if isinstance(self, CArray):
            return self.element.may_hold_pointer()
        if isinstance(self, CRecord):
            return any(f.ctype.may_hold_pointer() for f in self.fields)
        return False


@dataclass(frozen=True)
class CVoid(CType):
    """The ``void`` type."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class CInteger(CType):
    """Integer types, identified by kind and signedness."""

    kind: str  # "char" | "short" | "int" | "long" | "longlong" | "bool"
    signed: bool = True

    _SIZES = {"bool": 1, "char": 1, "short": 2, "int": 4, "long": 4, "longlong": 8}

    @property
    def size(self) -> int:
        return self._SIZES[self.kind]

    @property
    def align(self) -> int:
        return min(self.size, _MAX_ALIGN)

    def __str__(self) -> str:
        prefix = "" if self.signed else "unsigned "
        name = {"longlong": "long long", "bool": "_Bool"}.get(self.kind, self.kind)
        return prefix + name


@dataclass(frozen=True)
class CFloating(CType):
    """Floating-point types."""

    kind: str  # "float" | "double" | "longdouble"

    _SIZES = {"float": 4, "double": 8, "longdouble": 8}

    @property
    def size(self) -> int:
        return self._SIZES[self.kind]

    @property
    def align(self) -> int:
        return min(self.size, _MAX_ALIGN)

    def __str__(self) -> str:
        return {"longdouble": "long double"}.get(self.kind, self.kind)


@dataclass(frozen=True)
class CPointer(CType):
    """Pointer to ``pointee``."""

    pointee: CType

    @property
    def size(self) -> int:
        return POINTER_SIZE

    @property
    def align(self) -> int:
        return POINTER_SIZE

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class CArray(CType):
    """Array of ``length`` elements (``length is None`` for incomplete arrays)."""

    element: CType
    length: Optional[int] = None

    @property
    def size(self) -> int:
        if self.length is None:
            raise TypeLayoutError(f"incomplete array type {self!r} has no size")
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return self.element.align

    @property
    def stride(self) -> int:
        """The stride contributed by indexing this array (element size)."""
        return self.element.size

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element}[{n}]"


@dataclass(frozen=True)
class CField:
    """A named member of a struct or union with its computed byte offset."""

    name: str
    ctype: CType
    offset: int
    bit_offset: int = 0
    bit_width: Optional[int] = None  # None for ordinary (non-bitfield) members


@dataclass(frozen=True)
class CRecord(CType):
    """A struct or union.

    Instances are created complete (via :meth:`build`) or incomplete (forward
    declarations); completing a record produces a *new* frozen instance, and
    the :class:`TypeTable` below keeps tag identity.
    """

    tag: Optional[str]
    is_union: bool = False
    fields: tuple[CField, ...] = ()
    complete: bool = False
    _size: int = 0
    _align: int = 1

    @property
    def size(self) -> int:
        if not self.complete:
            kind = "union" if self.is_union else "struct"
            raise TypeLayoutError(f"incomplete {kind} {self.tag!r} has no size")
        return self._size

    @property
    def align(self) -> int:
        if not self.complete:
            raise TypeLayoutError(f"incomplete record {self.tag!r} has no alignment")
        return self._align

    def field(self, name: str) -> CField:
        """Look up a member by name, descending into anonymous members."""
        found = self.find_field(name)
        if found is None:
            raise TypeLayoutError(f"record {self.tag!r} has no field {name!r}")
        return found

    def find_field(self, name: str) -> Optional[CField]:
        for f in self.fields:
            if f.name == name:
                return f
        # anonymous struct/union members contribute their fields directly
        for f in self.fields:
            if f.name is None and isinstance(f.ctype, CRecord):
                inner = f.ctype.find_field(name)
                if inner is not None:
                    return dataclasses.replace(inner, offset=f.offset + inner.offset)
        return None

    @staticmethod
    def build(
        tag: Optional[str],
        members: Sequence[tuple[Optional[str], CType, Optional[int]]],
        is_union: bool = False,
    ) -> "CRecord":
        """Compute the layout for a struct/union from ``(name, type, bitwidth)``.

        Bit-fields are packed into successive units of their declared type;
        a zero-width bit-field forces alignment to the next unit, per C99.
        """
        fields: list[CField] = []
        offset = 0
        max_align = 1
        max_size = 0
        bit_pos = 0  # bit position within the current bit-field unit
        bit_unit_offset = 0
        bit_unit_size = 0

        def close_bit_unit() -> None:
            nonlocal bit_pos, bit_unit_size, offset
            if bit_unit_size:
                offset = bit_unit_offset + bit_unit_size
                bit_pos = 0
                bit_unit_size = 0

        for name, ctype, bit_width in members:
            align = ctype.align if ctype.is_complete else 1
            max_align = max(max_align, align)
            if is_union:
                fsize = ctype.size if ctype.is_complete else 0
                if bit_width is not None:
                    fsize = ctype.size
                fields.append(CField(name, ctype, 0, 0, bit_width))
                max_size = max(max_size, fsize)
                continue
            if bit_width is not None:
                unit = ctype.size
                if bit_width == 0:
                    close_bit_unit()
                    # round up to the next unit boundary
                    offset = _round_up(offset, unit)
                    continue
                if bit_unit_size != unit or bit_pos + bit_width > unit * 8:
                    close_bit_unit()
                    offset = _round_up(offset, align)
                    bit_unit_offset = offset
                    bit_unit_size = unit
                    bit_pos = 0
                fields.append(CField(name, ctype, bit_unit_offset, bit_pos, bit_width))
                bit_pos += bit_width
                continue
            close_bit_unit()
            offset = _round_up(offset, align)
            fields.append(CField(name, ctype, offset))
            offset += ctype.size if ctype.is_complete else 0
        close_bit_unit()

        if is_union:
            size = _round_up(max_size, max_align)
        else:
            size = _round_up(offset, max_align)
        return CRecord(
            tag=tag,
            is_union=is_union,
            fields=tuple(fields),
            complete=True,
            _size=size,
            _align=max_align,
        )

    def __str__(self) -> str:
        kind = "union" if self.is_union else "struct"
        return f"{kind} {self.tag or '<anon>'}"


@dataclass(frozen=True)
class CEnum(CType):
    """An enumeration; represented as ``int`` on the target."""

    tag: Optional[str]
    values: tuple[tuple[str, int], ...] = ()

    @property
    def size(self) -> int:
        return 4

    @property
    def align(self) -> int:
        return 4

    def __str__(self) -> str:
        return f"enum {self.tag or '<anon>'}"


@dataclass(frozen=True)
class CFunction(CType):
    """A function type.  Functions have no size; pointers to them do."""

    ret: CType
    params: tuple[CType, ...] = ()
    varargs: bool = False

    @property
    def size(self) -> int:
        raise TypeLayoutError("function types have no size")

    @property
    def align(self) -> int:
        return 1

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        if self.varargs:
            ps = f"{ps}, ..." if ps else "..."
        return f"{self.ret}({ps})"


def _round_up(value: int, align: int) -> int:
    if align <= 1:
        return value
    return (value + align - 1) // align * align


# Convenient singletons ------------------------------------------------------

type_void = CVoid()
type_bool = CInteger("bool", signed=False)
type_char = CInteger("char")
type_schar = CInteger("char", signed=True)
type_uchar = CInteger("char", signed=False)
type_short = CInteger("short")
type_ushort = CInteger("short", signed=False)
type_int = CInteger("int")
type_uint = CInteger("int", signed=False)
type_long = CInteger("long")
type_ulong = CInteger("long", signed=False)
type_longlong = CInteger("longlong")
type_ulonglong = CInteger("longlong", signed=False)
type_float = CFloating("float")
type_double = CFloating("double")
type_longdouble = CFloating("longdouble")
type_voidptr = CPointer(type_void)
type_charptr = CPointer(type_char)
