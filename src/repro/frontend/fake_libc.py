"""Built-in standard-library headers for the mini preprocessor.

The paper's analysis "provides ... a summary of the potential pointer
assignments in each library function" (§1) rather than analyzing libc
sources.  These headers play the same role as SUIF's system headers: they
give the front end declarations (so calls type-check and lower), while the
behaviour of each function comes from :mod:`repro.analysis.libc`.

Types use the ILP32 model of :mod:`repro.frontend.ctypes_model`
(``size_t`` = unsigned int, pointers are 4 bytes).
"""

from __future__ import annotations

__all__ = ["HEADERS"]

_STDDEF = """
#ifndef _STDDEF_H
#define _STDDEF_H
typedef unsigned int size_t;
typedef int ptrdiff_t;
typedef int wchar_t;
#define NULL ((void*)0)
#define offsetof(type, member) ((size_t)&(((type*)0)->member))
#endif
"""

_STDIO = """
#ifndef _STDIO_H
#define _STDIO_H
#include <stddef.h>
typedef struct _FILE { int _fd; char *_buf; int _cnt; } FILE;
typedef unsigned int fpos_t;
extern FILE *stdin;
extern FILE *stdout;
extern FILE *stderr;
#define EOF (-1)
#define BUFSIZ 1024
#define FILENAME_MAX 256
#define FOPEN_MAX 16
#define SEEK_SET 0
#define SEEK_CUR 1
#define SEEK_END 2
FILE *fopen(const char *path, const char *mode);
FILE *freopen(const char *path, const char *mode, FILE *stream);
FILE *fdopen(int fd, const char *mode);
int fclose(FILE *stream);
int fflush(FILE *stream);
int fgetc(FILE *stream);
int getc(FILE *stream);
int getchar(void);
char *fgets(char *s, int size, FILE *stream);
char *gets(char *s);
int fputc(int c, FILE *stream);
int putc(int c, FILE *stream);
int putchar(int c);
int fputs(const char *s, FILE *stream);
int puts(const char *s);
int ungetc(int c, FILE *stream);
size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);
size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);
int fseek(FILE *stream, long offset, int whence);
long ftell(FILE *stream);
void rewind(FILE *stream);
int fgetpos(FILE *stream, fpos_t *pos);
int fsetpos(FILE *stream, const fpos_t *pos);
int feof(FILE *stream);
int ferror(FILE *stream);
void clearerr(FILE *stream);
void perror(const char *s);
int printf(const char *format, ...);
int fprintf(FILE *stream, const char *format, ...);
int sprintf(char *str, const char *format, ...);
int snprintf(char *str, size_t size, const char *format, ...);
int scanf(const char *format, ...);
int fscanf(FILE *stream, const char *format, ...);
int sscanf(const char *str, const char *format, ...);
int remove(const char *path);
int rename(const char *oldpath, const char *newpath);
FILE *tmpfile(void);
char *tmpnam(char *s);
int setvbuf(FILE *stream, char *buf, int mode, size_t size);
void setbuf(FILE *stream, char *buf);
#endif
"""

_STDLIB = """
#ifndef _STDLIB_H
#define _STDLIB_H
#include <stddef.h>
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
#define RAND_MAX 2147483647
typedef struct { int quot; int rem; } div_t;
typedef struct { long quot; long rem; } ldiv_t;
void *malloc(size_t size);
void *calloc(size_t nmemb, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);
void abort(void);
void exit(int status);
int atexit(void (*func)(void));
char *getenv(const char *name);
int system(const char *command);
int abs(int j);
long labs(long j);
div_t div(int numer, int denom);
ldiv_t ldiv(long numer, long denom);
int rand(void);
void srand(unsigned int seed);
int atoi(const char *nptr);
long atol(const char *nptr);
double atof(const char *nptr);
double strtod(const char *nptr, char **endptr);
long strtol(const char *nptr, char **endptr, int base);
unsigned long strtoul(const char *nptr, char **endptr, int base);
void *bsearch(const void *key, const void *base, size_t nmemb, size_t size,
              int (*compar)(const void *, const void *));
void qsort(void *base, size_t nmemb, size_t size,
           int (*compar)(const void *, const void *));
#endif
"""

_STRING = """
#ifndef _STRING_H
#define _STRING_H
#include <stddef.h>
void *memcpy(void *dest, const void *src, size_t n);
void *memmove(void *dest, const void *src, size_t n);
void *memset(void *s, int c, size_t n);
int memcmp(const void *s1, const void *s2, size_t n);
void *memchr(const void *s, int c, size_t n);
char *strcpy(char *dest, const char *src);
char *strncpy(char *dest, const char *src, size_t n);
char *strcat(char *dest, const char *src);
char *strncat(char *dest, const char *src, size_t n);
int strcmp(const char *s1, const char *s2);
int strncmp(const char *s1, const char *s2, size_t n);
int strcoll(const char *s1, const char *s2);
size_t strxfrm(char *dest, const char *src, size_t n);
char *strchr(const char *s, int c);
char *strrchr(const char *s, int c);
size_t strspn(const char *s, const char *accept);
size_t strcspn(const char *s, const char *reject);
char *strpbrk(const char *s, const char *accept);
char *strstr(const char *haystack, const char *needle);
char *strtok(char *str, const char *delim);
size_t strlen(const char *s);
char *strerror(int errnum);
char *strdup(const char *s);
#endif
"""

_MATH = """
#ifndef _MATH_H
#define _MATH_H
#define M_PI 3.14159265358979323846
#define M_E 2.7182818284590452354
#define HUGE_VAL 1e308
double sin(double x);
double cos(double x);
double tan(double x);
double asin(double x);
double acos(double x);
double atan(double x);
double atan2(double y, double x);
double sinh(double x);
double cosh(double x);
double tanh(double x);
double exp(double x);
double log(double x);
double log10(double x);
double pow(double x, double y);
double sqrt(double x);
double ceil(double x);
double floor(double x);
double fabs(double x);
double fmod(double x, double y);
double ldexp(double x, int exp);
double frexp(double x, int *exp);
double modf(double x, double *iptr);
#endif
"""

_CTYPE = """
#ifndef _CTYPE_H
#define _CTYPE_H
int isalnum(int c);
int isalpha(int c);
int iscntrl(int c);
int isdigit(int c);
int isgraph(int c);
int islower(int c);
int isprint(int c);
int ispunct(int c);
int isspace(int c);
int isupper(int c);
int isxdigit(int c);
int tolower(int c);
int toupper(int c);
#endif
"""

_ASSERT = """
#ifndef _ASSERT_H
#define _ASSERT_H
void __assert_fail(const char *expr, const char *file, int line);
#ifdef NDEBUG
#define assert(x) ((void)0)
#else
#define assert(x) ((x) ? (void)0 : __assert_fail(#x, __FILE__, __LINE__))
#endif
#endif
"""

_STDARG = """
#ifndef _STDARG_H
#define _STDARG_H
typedef char *va_list;
#define va_start(ap, last) ((ap) = (char *)&(last))
#define va_arg(ap, type) (*(type *)((ap) += sizeof(type)))
#define va_end(ap) ((void)0)
#define va_copy(dst, src) ((dst) = (src))
#endif
"""

_LIMITS = """
#ifndef _LIMITS_H
#define _LIMITS_H
#define CHAR_BIT 8
#define SCHAR_MIN (-128)
#define SCHAR_MAX 127
#define UCHAR_MAX 255
#define CHAR_MIN SCHAR_MIN
#define CHAR_MAX SCHAR_MAX
#define SHRT_MIN (-32768)
#define SHRT_MAX 32767
#define USHRT_MAX 65535
#define INT_MIN (-INT_MAX - 1)
#define INT_MAX 2147483647
#define UINT_MAX 4294967295U
#define LONG_MIN (-LONG_MAX - 1)
#define LONG_MAX 2147483647L
#define ULONG_MAX 4294967295UL
#endif
"""

_FLOAT = """
#ifndef _FLOAT_H
#define _FLOAT_H
#define FLT_MAX 3.40282347e+38F
#define FLT_MIN 1.17549435e-38F
#define FLT_EPSILON 1.19209290e-07F
#define DBL_MAX 1.7976931348623157e+308
#define DBL_MIN 2.2250738585072014e-308
#define DBL_EPSILON 2.2204460492503131e-16
#define FLT_DIG 6
#define DBL_DIG 15
#endif
"""

_ERRNO = """
#ifndef _ERRNO_H
#define _ERRNO_H
extern int errno;
#define EDOM 33
#define ERANGE 34
#define ENOENT 2
#define EINVAL 22
#endif
"""

_TIME = """
#ifndef _TIME_H
#define _TIME_H
#include <stddef.h>
typedef long time_t;
typedef long clock_t;
#define CLOCKS_PER_SEC 1000000
struct tm {
    int tm_sec; int tm_min; int tm_hour; int tm_mday; int tm_mon;
    int tm_year; int tm_wday; int tm_yday; int tm_isdst;
};
clock_t clock(void);
time_t time(time_t *t);
double difftime(time_t end, time_t beginning);
time_t mktime(struct tm *tm);
struct tm *gmtime(const time_t *timep);
struct tm *localtime(const time_t *timep);
char *asctime(const struct tm *tm);
char *ctime(const time_t *timep);
size_t strftime(char *s, size_t max, const char *format, const struct tm *tm);
#endif
"""

_STDBOOL = """
#ifndef _STDBOOL_H
#define _STDBOOL_H
#define bool _Bool
#define true 1
#define false 0
#endif
"""

_SIGNAL = """
#ifndef _SIGNAL_H
#define _SIGNAL_H
typedef int sig_atomic_t;
#define SIGINT 2
#define SIGILL 4
#define SIGABRT 6
#define SIGFPE 8
#define SIGSEGV 11
#define SIGTERM 15
#define SIG_DFL ((void (*)(int))0)
#define SIG_IGN ((void (*)(int))1)
#define SIG_ERR ((void (*)(int))-1)
void (*signal(int signum, void (*handler)(int)))(int);
int raise(int sig);
#endif
"""

_UNISTD = """
#ifndef _UNISTD_H
#define _UNISTD_H
#include <stddef.h>
int read(int fd, void *buf, size_t count);
int write(int fd, const void *buf, size_t count);
int close(int fd);
int open(const char *pathname, int flags, ...);
int unlink(const char *pathname);
int access(const char *pathname, int mode);
#endif
"""

_SETJMP = """
#ifndef _SETJMP_H
#define _SETJMP_H
typedef int jmp_buf[16];
int setjmp(jmp_buf env);
void longjmp(jmp_buf env, int val);
#endif
"""

HEADERS: dict[str, str] = {
    "setjmp.h": _SETJMP,
    "stddef.h": _STDDEF,
    "stdio.h": _STDIO,
    "stdlib.h": _STDLIB,
    "string.h": _STRING,
    "math.h": _MATH,
    "ctype.h": _CTYPE,
    "assert.h": _ASSERT,
    "stdarg.h": _STDARG,
    "limits.h": _LIMITS,
    "float.h": _FLOAT,
    "errno.h": _ERRNO,
    "time.h": _TIME,
    "stdbool.h": _STDBOOL,
    "signal.h": _SIGNAL,
    "unistd.h": _UNISTD,
    "fcntl.h": "#ifndef _FCNTL_H\n#define _FCNTL_H\n#define O_RDONLY 0\n#define O_WRONLY 1\n#define O_RDWR 2\n#define O_CREAT 64\n#endif\n",
}
