"""Parsing driver: C source text → pycparser AST → analysis IR.

This is the front door of the front end: it chains the mini preprocessor
(:mod:`repro.frontend.cpp`), pycparser, and the lowerer
(:mod:`repro.frontend.lower`).
"""

from __future__ import annotations

from typing import Optional

import pycparser
from pycparser import c_ast
from pycparser.c_parser import ParseError as _PycparserParseError

from .cpp import Preprocessor, PreprocessorError
from .lower import Lowerer
from ..ir.program import Program

__all__ = ["parse_c_source", "load_program", "load_program_from_file", "load_project", "load_project_files", "ParseError"]


class ParseError(Exception):
    """Syntax or preprocessing error in an input program."""


def parse_c_source(
    source: str,
    filename: str = "<input>",
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> c_ast.FileAST:
    """Preprocess and parse one translation unit."""
    pp = Preprocessor(include_paths=include_paths, defines=defines)
    try:
        text = pp.preprocess(source, filename)
    except PreprocessorError as exc:
        raise ParseError(str(exc)) from exc
    parser = pycparser.CParser()
    try:
        return parser.parse(text, filename)
    except _PycparserParseError as exc:
        raise ParseError(str(exc)) from exc


def load_program(
    source: str,
    filename: str = "<input>",
    name: Optional[str] = None,
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> Program:
    """Parse + lower one C source string to an analyzable :class:`Program`."""
    ast = parse_c_source(source, filename, include_paths, defines)
    program = Lowerer(name or filename).lower(ast)
    program.source_lines = source.count("\n") + 1
    program.finalize()
    return program


def load_program_from_file(
    path: str,
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> Program:
    """Parse + lower a C file on disk."""
    with open(path, "r") as f:
        source = f.read()
    import os

    paths = [os.path.dirname(os.path.abspath(path))] + list(include_paths or [])
    return load_program(source, os.path.basename(path), os.path.basename(path), paths, defines)


def load_project(
    units: list[tuple[str, str]],
    name: str = "<project>",
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> Program:
    """Parse + lower several translation units into one program.

    ``units`` is a list of ``(filename, source)`` pairs.  All units share
    one symbol table, so ``extern`` declarations in one file resolve to
    definitions in another — the usual whole-program link model.  (File-
    local ``static`` functions are not renamed per unit; give them distinct
    names across files.)
    """
    from .lower import Lowerer

    lowerer = Lowerer(name)
    total_lines = 0
    for filename, source in units:
        ast = parse_c_source(source, filename, include_paths, defines)
        lowerer.lower(ast)
        total_lines += source.count("\n") + 1
    program = lowerer.program
    program.source_lines = total_lines
    program.finalize()
    return program


def load_project_files(
    paths: list[str],
    name: str = "<project>",
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> Program:
    """Parse + lower several C files on disk into one program."""
    import os

    units = []
    dirs = list(include_paths or [])
    for path in paths:
        with open(path, "r") as f:
            units.append((os.path.basename(path), f.read()))
        d = os.path.dirname(os.path.abspath(path))
        if d not in dirs:
            dirs.append(d)
    return load_project(units, name, dirs, defines)
