"""Parsing driver: C source text → pycparser AST → analysis IR.

This is the front door of the front end: it chains the mini preprocessor
(:mod:`repro.frontend.cpp`), pycparser, and the lowerer
(:mod:`repro.frontend.lower`).
"""

from __future__ import annotations

from typing import Optional

import pycparser
from pycparser import c_ast
from pycparser.c_parser import ParseError as _PycparserParseError

from .cpp import Preprocessor, PreprocessorError
from .lower import FrontendError, Lowerer
from ..ir.program import Program

__all__ = ["parse_c_source", "load_program", "load_program_from_file", "load_project", "load_project_files", "ParseError"]


class ParseError(Exception):
    """Syntax or preprocessing error in an input program."""


def parse_c_source(
    source: str,
    filename: str = "<input>",
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> c_ast.FileAST:
    """Preprocess and parse one translation unit."""
    pp = Preprocessor(include_paths=include_paths, defines=defines)
    try:
        text = pp.preprocess(source, filename)
    except PreprocessorError as exc:
        raise ParseError(str(exc)) from exc
    parser = pycparser.CParser()
    try:
        return parser.parse(text, filename)
    except _PycparserParseError as exc:
        raise ParseError(str(exc)) from exc


def load_program(
    source: str,
    filename: str = "<input>",
    name: Optional[str] = None,
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> Program:
    """Parse + lower one C source string to an analyzable :class:`Program`."""
    ast = parse_c_source(source, filename, include_paths, defines)
    program = Lowerer(name or filename).lower(ast)
    program.source_lines = source.count("\n") + 1
    program.finalize()
    return program


def load_program_from_file(
    path: str,
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> Program:
    """Parse + lower a C file on disk."""
    with open(path, "r") as f:
        source = f.read()
    import os

    paths = [os.path.dirname(os.path.abspath(path))] + list(include_paths or [])
    return load_program(source, os.path.basename(path), os.path.basename(path), paths, defines)


def _frontend_fault(filename: str, proc: str, reason: str, detail: str):
    """Build a :class:`~repro.analysis.guards.FrontendFault` lazily.

    The import lives inside the function because ``repro.analysis``
    imports ``repro.frontend.ctypes_model`` at module level; a top-level
    import here would close the cycle.
    """
    from ..analysis.guards import FrontendFault

    return FrontendFault(filename=filename, proc=proc, reason=reason, detail=detail)


def load_project(
    units: list[tuple[str, str]],
    name: str = "<project>",
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
    tolerant: bool = False,
    faults=None,
) -> Program:
    """Parse + lower several translation units into one program.

    ``units`` is a list of ``(filename, source)`` pairs.  All units share
    one symbol table, so ``extern`` declarations in one file resolve to
    definitions in another — the usual whole-program link model.  (File-
    local ``static`` functions are not renamed per unit; give them distinct
    names across files.)

    With ``tolerant=True`` a unit that fails to preprocess/parse, and a
    single procedure that fails to lower, is *quarantined* instead of
    aborting the whole load: a
    :class:`~repro.analysis.guards.FrontendFault` is appended to
    ``program.frontend_failures`` and the rest of the project is kept.
    (Procedures of a unit lowered *before* a mid-unit top-level fault are
    retained — the drop granularity is "everything at and after the
    fault".)  The analyzer reads ``frontend_failures`` and replaces calls
    to quarantined procedures with conservative havoc stubs, so the
    partial result stays sound for the procedures that remain.

    ``faults`` is an optional
    :class:`~repro.diagnostics.faults.FaultPlan`; units matching its
    ``parse`` site are dropped as injected parse failures (forcing
    ``tolerant`` behavior for those units) to exercise the degradation
    path deterministically.
    """
    from .lower import Lowerer

    lowerer = Lowerer(name)
    failures: list = []
    total_lines = 0
    for filename, source in units:
        if faults is not None and faults.fail_parse(filename):
            failures.append(
                _frontend_fault(filename, "", "injected", "injected parse failure")
            )
            continue
        if tolerant:
            lowerer.fault_handler = (
                lambda proc, exc, _f=filename: failures.append(
                    _frontend_fault(_f, proc, "lower_error", str(exc))
                )
            )
        try:
            ast = parse_c_source(source, filename, include_paths, defines)
            lowerer.lower(ast)
        except ParseError as exc:
            if not tolerant:
                raise
            failures.append(_frontend_fault(filename, "", "parse_error", str(exc)))
            continue
        except FrontendError as exc:
            if not tolerant:
                raise
            failures.append(_frontend_fault(filename, "", "lower_error", str(exc)))
            continue
        finally:
            lowerer.fault_handler = None
        total_lines += source.count("\n") + 1
    program = lowerer.program
    program.frontend_failures = failures
    program.source_lines = total_lines
    program.finalize()
    return program


def load_project_files(
    paths: list[str],
    name: str = "<project>",
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
    tolerant: bool = False,
    faults=None,
) -> Program:
    """Parse + lower several C files on disk into one program."""
    import os

    units = []
    dirs = list(include_paths or [])
    for path in paths:
        with open(path, "r") as f:
            units.append((os.path.basename(path), f.read()))
        d = os.path.dirname(os.path.abspath(path))
        if d not in dirs:
            dirs.append(d)
    return load_project(units, name, dirs, defines, tolerant=tolerant, faults=faults)
