"""Build :mod:`repro.frontend.ctypes_model` types from pycparser AST nodes.

Handles typedefs, struct/union tags with forward references and later
completion, enums (constants become integers), array sizes from constant
expressions, and function types.  Also provides the constant-expression
evaluator the lowerer needs for array bounds, case labels, and enum values.
"""

from __future__ import annotations

from typing import Optional, Union

from pycparser import c_ast

from . import ctypes_model as tm

__all__ = ["TypeBuilder", "ConstEvalError", "FrontendError"]


class FrontendError(Exception):
    """An unsupported construct or an inconsistent declaration."""

    def __init__(self, message: str, coord: Optional[object] = None) -> None:
        if coord is not None:
            message = f"{coord}: {message}"
        super().__init__(message)


class ConstEvalError(FrontendError):
    """An expression required to be constant is not."""


_INT_KINDS = {
    (): tm.type_int,
    ("int",): tm.type_int,
    ("signed",): tm.type_int,
    ("unsigned",): tm.type_uint,
    ("signed", "int"): tm.type_int,
    ("unsigned", "int"): tm.type_uint,
    ("char",): tm.type_char,
    ("signed", "char"): tm.type_schar,
    ("unsigned", "char"): tm.type_uchar,
    ("short",): tm.type_short,
    ("short", "int"): tm.type_short,
    ("signed", "short"): tm.type_short,
    ("signed", "short", "int"): tm.type_short,
    ("unsigned", "short"): tm.type_ushort,
    ("unsigned", "short", "int"): tm.type_ushort,
    ("long",): tm.type_long,
    ("long", "int"): tm.type_long,
    ("signed", "long"): tm.type_long,
    ("signed", "long", "int"): tm.type_long,
    ("unsigned", "long"): tm.type_ulong,
    ("unsigned", "long", "int"): tm.type_ulong,
    ("long", "long"): tm.type_longlong,
    ("long", "long", "int"): tm.type_longlong,
    ("signed", "long", "long"): tm.type_longlong,
    ("signed", "long", "long", "int"): tm.type_longlong,
    ("unsigned", "long", "long"): tm.type_ulonglong,
    ("unsigned", "long", "long", "int"): tm.type_ulonglong,
    ("float",): tm.type_float,
    ("double",): tm.type_double,
    ("long", "double"): tm.type_longdouble,
    ("void",): tm.type_void,
    ("_Bool",): tm.type_bool,
}


class TypeBuilder:
    """Shared per-translation-unit type environment."""

    def __init__(self) -> None:
        self.typedefs: dict[str, tm.CType] = {}
        # tag tables; records may be completed after first (forward) use
        self.records: dict[str, tm.CRecord] = {}
        self.enums: dict[str, tm.CEnum] = {}
        self.enum_constants: dict[str, int] = {}
        self._anon_counter = 0

    # -- public API ----------------------------------------------------

    def type_of(self, node: c_ast.Node) -> tm.CType:
        """The :class:`CType` denoted by a pycparser type node."""
        if isinstance(node, c_ast.TypeDecl):
            return self.type_of(node.type)
        if isinstance(node, c_ast.IdentifierType):
            return self._named_type(node.names)
        if isinstance(node, c_ast.PtrDecl):
            return tm.CPointer(self.type_of(node.type))
        if isinstance(node, c_ast.ArrayDecl):
            elem = self.type_of(node.type)
            length: Optional[int] = None
            if node.dim is not None:
                try:
                    length = self.const_value(node.dim)
                except ConstEvalError:
                    length = None  # VLA: treat as incomplete
            return tm.CArray(elem, length)
        if isinstance(node, c_ast.FuncDecl):
            ret = self.type_of(node.type)
            params: list[tm.CType] = []
            varargs = False
            if node.args is not None:
                for p in node.args.params:
                    if isinstance(p, c_ast.EllipsisParam):
                        varargs = True
                        continue
                    ptype = self.type_of(p.type) if not isinstance(p, c_ast.ID) else tm.type_int
                    if isinstance(ptype, tm.CVoid):
                        continue  # f(void)
                    params.append(self.decay(ptype))
            return tm.CFunction(ret, tuple(params), varargs)
        if isinstance(node, (c_ast.Struct, c_ast.Union)):
            return self._record_type(node)
        if isinstance(node, c_ast.Enum):
            return self._enum_type(node)
        if isinstance(node, c_ast.Typename):
            return self.type_of(node.type)
        if isinstance(node, c_ast.Decl):
            return self.type_of(node.type)
        raise FrontendError(f"unsupported type node {type(node).__name__}", getattr(node, "coord", None))

    def add_typedef(self, name: str, node: c_ast.Node) -> None:
        self.typedefs[name] = self.type_of(node)

    @staticmethod
    def decay(ctype: tm.CType) -> tm.CType:
        """Apply array/function-to-pointer decay (parameter adjustment)."""
        if isinstance(ctype, tm.CArray):
            return tm.CPointer(ctype.element)
        if isinstance(ctype, tm.CFunction):
            return tm.CPointer(ctype)
        return ctype

    def sizeof(self, ctype: tm.CType) -> int:
        if isinstance(ctype, tm.CVoid):
            return 1  # GNU-compatible: sizeof(void) == 1, used in ptr arith
        if isinstance(ctype, tm.CFunction):
            return 1
        return ctype.size

    # -- record / enum construction --------------------------------------

    def _named_type(self, names: list[str]) -> tm.CType:
        key = tuple(n for n in names if n != "const" and n != "volatile")
        if len(key) == 1 and key[0] in self.typedefs:
            return self.typedefs[key[0]]
        ordered = tuple(sorted(key, key=lambda n: (n != "signed" and n != "unsigned", n)))
        # normalize word order: signedness first, then size words, then int
        base = tuple(
            [n for n in key if n in ("signed", "unsigned")]
            + [n for n in key if n in ("short", "long")]
            + [n for n in key if n in ("char", "int", "float", "double", "void", "_Bool")]
        )
        if base in _INT_KINDS:
            return _INT_KINDS[base]
        if ordered in _INT_KINDS:
            return _INT_KINDS[ordered]
        if len(key) == 1:
            raise FrontendError(f"unknown type name {key[0]!r}")
        raise FrontendError(f"unknown type {' '.join(names)!r}")

    def _record_type(self, node: Union[c_ast.Struct, c_ast.Union]) -> tm.CRecord:
        is_union = isinstance(node, c_ast.Union)
        tag = node.name
        if tag is None:
            self._anon_counter += 1
            tag = f"<anon#{self._anon_counter}>"
        key = ("union " if is_union else "struct ") + tag
        if node.decls is None:
            # reference to a possibly-forward-declared tag
            record = self.records.get(key)
            if record is None:
                record = tm.CRecord(tag=tag, is_union=is_union, complete=False)
                self.records[key] = record
            return record
        members: list[tuple[Optional[str], tm.CType, Optional[int]]] = []
        for decl in node.decls:
            bitwidth: Optional[int] = None
            if isinstance(decl, c_ast.Decl) and decl.bitsize is not None:
                bitwidth = self.const_value(decl.bitsize)
            mtype = self.type_of(decl.type if isinstance(decl, c_ast.Decl) else decl)
            mname = decl.name if isinstance(decl, c_ast.Decl) else None
            members.append((mname, mtype, bitwidth))
        record = tm.CRecord.build(tag, members, is_union)
        self.records[key] = record
        return record

    def record_by_tag(self, tag: str, is_union: bool = False) -> tm.CRecord:
        key = ("union " if is_union else "struct ") + tag
        return self.records[key]

    def refresh(self, ctype: tm.CType) -> tm.CType:
        """Swap an incomplete record reference for its completed version.

        Forward declarations and definition-before-use ordering (e.g. a
        function prototype mentioning ``struct node *`` above the struct's
        definition) leave frozen incomplete records embedded in earlier
        types; this resolves them against the current tag table.
        """
        if isinstance(ctype, tm.CRecord) and not ctype.complete:
            key = ("union " if ctype.is_union else "struct ") + (ctype.tag or "")
            current = self.records.get(key)
            if current is not None and current.complete:
                return current
        if isinstance(ctype, tm.CPointer):
            fresh = self.refresh(ctype.pointee)
            if fresh is not ctype.pointee:
                return tm.CPointer(fresh)
        if isinstance(ctype, tm.CArray):
            fresh = self.refresh(ctype.element)
            if fresh is not ctype.element:
                return tm.CArray(fresh, ctype.length)
        return ctype

    def _enum_type(self, node: c_ast.Enum) -> tm.CEnum:
        tag = node.name
        if tag is None:
            self._anon_counter += 1
            tag = f"<anon#{self._anon_counter}>"
        key = "enum " + tag
        if node.values is None:
            enum = self.enums.get(key)
            if enum is None:
                enum = tm.CEnum(tag=tag)
                self.enums[key] = enum
            return enum
        values: list[tuple[str, int]] = []
        next_value = 0
        for enumerator in node.values.enumerators:
            if enumerator.value is not None:
                next_value = self.const_value(enumerator.value)
            values.append((enumerator.name, next_value))
            self.enum_constants[enumerator.name] = next_value
            next_value += 1
        enum = tm.CEnum(tag=tag, values=tuple(values))
        self.enums[key] = enum
        return enum

    # -- constant expressions ----------------------------------------------

    def const_value(self, node: c_ast.Node) -> int:
        """Evaluate an integer constant expression."""
        if isinstance(node, c_ast.Constant):
            if node.type in ("int", "long int", "unsigned int", "long long int",
                             "unsigned long int", "unsigned long long int"):
                return _parse_int(node.value)
            if node.type == "char":
                return _char_const(node.value)
            raise ConstEvalError(f"non-integer constant {node.value!r}", node.coord)
        if isinstance(node, c_ast.ID):
            if node.name in self.enum_constants:
                return self.enum_constants[node.name]
            raise ConstEvalError(f"non-constant identifier {node.name!r}", node.coord)
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "sizeof":
                target = node.expr
                if isinstance(target, (c_ast.Typename, c_ast.Decl)):
                    return self.sizeof(self.type_of(target))
                raise ConstEvalError("sizeof expression in constant context", node.coord)
            value = self.const_value(node.expr)
            ops = {"-": -value, "+": value, "~": ~value, "!": int(not value)}
            if node.op in ops:
                return ops[node.op]
            raise ConstEvalError(f"non-constant unary {node.op}", node.coord)
        if isinstance(node, c_ast.BinaryOp):
            a = self.const_value(node.left)
            b = self.const_value(node.right)
            return _binop(node.op, a, b, node.coord)
        if isinstance(node, c_ast.TernaryOp):
            return (
                self.const_value(node.iftrue)
                if self.const_value(node.cond)
                else self.const_value(node.iffalse)
            )
        if isinstance(node, c_ast.Cast):
            return self.const_value(node.expr)
        raise ConstEvalError(
            f"non-constant expression {type(node).__name__}", getattr(node, "coord", None)
        )

    def try_const_value(self, node: c_ast.Node) -> Optional[int]:
        try:
            return self.const_value(node)
        except ConstEvalError:
            return None


def _parse_int(text: str) -> int:
    t = text.rstrip("uUlL")
    if t.lower().startswith("0x"):
        return int(t, 16)
    if t.startswith("0") and len(t) > 1 and t[1].isdigit():
        return int(t, 8)
    return int(t, 10)


def _char_const(text: str) -> int:
    from .cpp import _char_value

    return _char_value(text)


def _binop(op: str, a: int, b: int, coord: object) -> int:
    def cdiv(x: int, y: int) -> int:
        if y == 0:
            raise ConstEvalError("division by zero in constant", coord)
        q = abs(x) // abs(y)
        return q if (x >= 0) == (y >= 0) else -q

    table = {
        "+": lambda: a + b,
        "-": lambda: a - b,
        "*": lambda: a * b,
        "/": lambda: cdiv(a, b),
        "%": lambda: a - b * cdiv(a, b),
        "<<": lambda: a << b,
        ">>": lambda: a >> b,
        "&": lambda: a & b,
        "|": lambda: a | b,
        "^": lambda: a ^ b,
        "&&": lambda: int(bool(a) and bool(b)),
        "||": lambda: int(bool(a) or bool(b)),
        "==": lambda: int(a == b),
        "!=": lambda: int(a != b),
        "<": lambda: int(a < b),
        ">": lambda: int(a > b),
        "<=": lambda: int(a <= b),
        ">=": lambda: int(a >= b),
    }
    if op not in table:
        raise ConstEvalError(f"non-constant operator {op}", coord)
    return table[op]()
