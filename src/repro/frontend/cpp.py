"""A miniature C preprocessor.

``pycparser`` parses *preprocessed* C only, and this reproduction must run
offline with no external ``cpp`` binary, so we implement the subset of the
C89/C99 preprocessor that real benchmark programs use:

* comment removal and line splicing (``\\`` continuation),
* ``#include "..."`` and ``#include <...>`` with include paths plus the
  built-in header set in :mod:`repro.frontend.fake_libc`,
* object-like and function-like ``#define`` (with ``#`` stringize, ``##``
  paste, variadic macros, rescanning with self-reference suppression),
* ``#undef``, ``#ifdef`` / ``#ifndef`` / ``#if`` / ``#elif`` / ``#else`` /
  ``#endif`` with full constant-expression evaluation including
  ``defined(X)``,
* ``#error``, ``#warning``, ``#pragma`` (ignored), ``#line``,
* ``__LINE__`` / ``__FILE__`` and ``#line`` emission so downstream
  diagnostics carry original coordinates.

The output is a single translation unit string suitable for pycparser.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

__all__ = ["Preprocessor", "PreprocessorError", "MacroDefinition", "preprocess"]


class PreprocessorError(Exception):
    """A malformed directive, missing include, or #error directive."""

    def __init__(self, message: str, filename: str = "<input>", line: int = 0) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


# -- tokenization -----------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>L?"(?:[^"\\\n]|\\.)*")
  | (?P<char>L?'(?:[^'\\\n]|\\.)*')
  | (?P<num>\.?\d(?:[\w.]|[eEpP][+-])*)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<punct>\#\#|\#|<<=|>>=|\.\.\.|<<|>>|<=|>=|==|!=|&&|\|\||->|\+\+|--|
      [-+*/%&|^~!<>=?:;,.(){}\[\]])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    """Split a preprocessing line into tokens (whitespace collapsed to '')."""
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            # unknown byte: pass it through as its own token
            tokens.append(text[pos])
            pos += 1
            continue
        pos = m.end()
        if m.lastgroup == "ws":
            if tokens and tokens[-1] != "":
                tokens.append("")  # whitespace marker
        else:
            tokens.append(m.group())
    while tokens and tokens[-1] == "":
        tokens.pop()
    while tokens and tokens[0] == "":
        tokens.pop(0)
    return tokens


def detokenize(tokens: Iterable[str]) -> str:
    """Rebuild program text; the '' whitespace markers become single spaces."""
    out: list[str] = []
    prev = ""
    for tok in tokens:
        if tok == "":
            out.append(" ")
            prev = ""
            continue
        # keep identifiers/numbers from gluing together accidentally
        if out and prev and (prev[-1].isalnum() or prev[-1] == "_") and (
            tok[0].isalnum() or tok[0] == "_"
        ):
            out.append(" ")
        out.append(tok)
        prev = tok
    return "".join(out)


# -- macros -----------------------------------------------------------------


@dataclass
class MacroDefinition:
    """One ``#define``; ``params is None`` marks an object-like macro."""

    name: str
    params: Optional[list[str]]
    body: list[str]
    variadic: bool = False

    @property
    def is_function(self) -> bool:
        return self.params is not None


def _strip_ws(tokens: list[str]) -> list[str]:
    return [t for t in tokens if t != ""]


# -- comment removal / line handling ----------------------------------------


def strip_comments(text: str) -> str:
    """Remove comments, preserving newlines so line numbers survive."""
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n - 2
            out.append(" ")
            out.extend(ch for ch in text[i : j + 2] if ch == "\n")
            i = j + 2
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def splice_lines(text: str) -> list[tuple[int, str]]:
    """Join ``\\``-continued lines; returns ``(original_line_no, text)``."""
    raw = text.split("\n")
    out: list[tuple[int, str]] = []
    i = 0
    while i < len(raw):
        start = i
        line = raw[i]
        while line.endswith("\\") and i + 1 < len(raw):
            i += 1
            line = line[:-1] + raw[i]
        out.append((start + 1, line))
        i += 1
    return out


# -- conditional expression evaluation ---------------------------------------


class _CondParser:
    """Recursive-descent evaluator for #if constant expressions."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = _strip_ws(tokens)
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Optional[str]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise PreprocessorError(f"expected {tok!r} in #if expression, got {got!r}")

    def parse(self) -> int:
        value = self.ternary()
        if self.peek() is not None:
            raise PreprocessorError(f"trailing tokens in #if expression: {self.peek()!r}")
        return value

    def ternary(self) -> int:
        cond = self.logical_or()
        if self.peek() == "?":
            self.next()
            a = self.ternary()
            self.expect(":")
            b = self.ternary()
            return a if cond else b
        return cond

    def _binary(self, sub: Callable[[], int], ops: dict[str, Callable[[int, int], int]]) -> int:
        value = sub()
        while self.peek() in ops:
            op = self.next()
            rhs = sub()
            value = ops[op](value, rhs)  # type: ignore[index]
        return value

    def logical_or(self) -> int:
        value = self.logical_and()
        while self.peek() == "||":
            self.next()
            rhs = self.logical_and()
            value = 1 if (value or rhs) else 0
        return value

    def logical_and(self) -> int:
        value = self.bit_or()
        while self.peek() == "&&":
            self.next()
            rhs = self.bit_or()
            value = 1 if (value and rhs) else 0
        return value

    def bit_or(self) -> int:
        return self._binary(self.bit_xor, {"|": lambda a, b: a | b})

    def bit_xor(self) -> int:
        return self._binary(self.bit_and, {"^": lambda a, b: a ^ b})

    def bit_and(self) -> int:
        return self._binary(self.equality, {"&": lambda a, b: a & b})

    def equality(self) -> int:
        return self._binary(
            self.relational,
            {"==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b)},
        )

    def relational(self) -> int:
        return self._binary(
            self.shift,
            {
                "<": lambda a, b: int(a < b),
                ">": lambda a, b: int(a > b),
                "<=": lambda a, b: int(a <= b),
                ">=": lambda a, b: int(a >= b),
            },
        )

    def shift(self) -> int:
        return self._binary(
            self.additive, {"<<": lambda a, b: a << b, ">>": lambda a, b: a >> b}
        )

    def additive(self) -> int:
        return self._binary(
            self.multiplicative, {"+": lambda a, b: a + b, "-": lambda a, b: a - b}
        )

    def multiplicative(self) -> int:
        def div(a: int, b: int) -> int:
            if b == 0:
                raise PreprocessorError("division by zero in #if expression")
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q

        return self._binary(
            self.unary,
            {"*": lambda a, b: a * b, "/": div, "%": lambda a, b: a - b * div(a, b)},
        )

    def unary(self) -> int:
        tok = self.peek()
        if tok == "!":
            self.next()
            return int(not self.unary())
        if tok == "-":
            self.next()
            return -self.unary()
        if tok == "+":
            self.next()
            return self.unary()
        if tok == "~":
            self.next()
            return ~self.unary()
        return self.primary()

    def primary(self) -> int:
        tok = self.next()
        if tok is None:
            raise PreprocessorError("unexpected end of #if expression")
        if tok == "(":
            value = self.ternary()
            self.expect(")")
            return value
        if re.fullmatch(r"0[xX][0-9a-fA-F]+[uUlL]*", tok):
            return int(tok.rstrip("uUlL"), 16)
        if re.fullmatch(r"0\d+[uUlL]*", tok):
            return int(tok.rstrip("uUlL"), 8)
        if re.fullmatch(r"\d+[uUlL]*", tok):
            return int(tok.rstrip("uUlL"), 10)
        if tok.startswith("'"):
            return _char_value(tok)
        if re.fullmatch(r"[A-Za-z_]\w*", tok):
            # undefined identifiers evaluate to 0 (C standard)
            return 0
        raise PreprocessorError(f"bad token in #if expression: {tok!r}")


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "a": 7, "b": 8, "f": 12, "v": 11,
    "\\": 92, "'": 39, '"': 34, "?": 63,
}


def _char_value(tok: str) -> int:
    body = tok[1:-1]
    if body.startswith("\\"):
        esc = body[1:]
        if esc and esc[0] in "xX":
            return int(esc[1:], 16)
        if esc and esc[0].isdigit():
            return int(esc, 8)
        return _ESCAPES.get(esc[0], ord(esc[0])) if esc else 0
    return ord(body[0]) if body else 0


# -- the preprocessor driver -------------------------------------------------


class Preprocessor:
    """Expand one translation unit to plain C text."""

    MAX_EXPANSION_DEPTH = 200

    def __init__(
        self,
        include_paths: Optional[list[str]] = None,
        defines: Optional[dict[str, str]] = None,
        builtin_headers: Optional[dict[str, str]] = None,
        max_include_depth: int = 50,
    ) -> None:
        if builtin_headers is None:
            from .fake_libc import HEADERS as builtin_headers  # lazy import
        self.include_paths = list(include_paths or [])
        self.builtin_headers = dict(builtin_headers)
        self.macros: dict[str, MacroDefinition] = {}
        self.max_include_depth = max_include_depth
        self.included_once: set[str] = set()
        for name, value in (defines or {}).items():
            self.define_text(name, value)
        # standard predefined macros
        self.define_text("__STDC__", "1")
        self.define_text("__repro__", "1")

    # -- definitions --------------------------------------------------

    def define_text(self, name: str, value: str = "1") -> None:
        """Define an object-like macro from plain text."""
        self.macros[name] = MacroDefinition(name, None, tokenize(value))

    def undef(self, name: str) -> None:
        self.macros.pop(name, None)

    # -- top level -----------------------------------------------------

    def preprocess(self, text: str, filename: str = "<input>") -> str:
        out: list[str] = []
        self._process(text, filename, out, depth=0)
        return "\n".join(out) + "\n"

    def preprocess_file(self, path: str) -> str:
        with open(path, "r") as f:
            text = f.read()
        self.include_paths.insert(0, os.path.dirname(os.path.abspath(path)))
        try:
            return self.preprocess(text, os.path.basename(path))
        finally:
            self.include_paths.pop(0)

    # -- internals ------------------------------------------------------

    def _process(self, text: str, filename: str, out: list[str], depth: int) -> None:
        if depth > self.max_include_depth:
            raise PreprocessorError("include depth exceeded", filename)
        lines = splice_lines(strip_comments(text))
        # conditional stack entries: (taking, taken_before, saw_else)
        cond: list[list[bool]] = []
        out.append(f'#line 1 "{filename}"')
        need_line_marker = False

        for lineno, line in lines:
            stripped = line.lstrip()
            if stripped.startswith("#"):
                directive = stripped[1:].lstrip()
                name, _, rest = directive.partition(" ")
                name = name.strip()
                rest = rest.strip()
                # tolerate '#if(x)' style with no space
                m = re.match(r"([A-Za-z_]+)(.*)$", directive)
                if m:
                    name, rest = m.group(1), m.group(2).strip()
                active = all(frame[0] for frame in cond)
                handler = getattr(self, f"_dir_{name}", None)
                if name in ("if", "ifdef", "ifndef", "elif", "else", "endif"):
                    self._conditional(name, rest, cond, filename, lineno)
                elif not active:
                    pass  # any other directive in a dead region is skipped
                elif handler is not None:
                    emitted = handler(rest, filename, lineno, out, depth)
                    need_line_marker = True
                    if emitted:
                        continue
                elif name == "":
                    pass  # null directive
                else:
                    raise PreprocessorError(
                        f"unknown directive #{name}", filename, lineno
                    )
                continue
            if not all(frame[0] for frame in cond):
                continue
            if need_line_marker:
                out.append(f'#line {lineno} "{filename}"')
                need_line_marker = False
            expanded = self._expand_line(line, filename, lineno)
            out.append(expanded)
        if cond:
            raise PreprocessorError("unterminated conditional", filename)

    # conditionals ------------------------------------------------------

    def _conditional(
        self,
        name: str,
        rest: str,
        cond: list[list[bool]],
        filename: str,
        lineno: int,
    ) -> None:
        outer_active = all(frame[0] for frame in cond)
        if name == "if":
            take = outer_active and bool(self._eval_cond(rest, filename, lineno))
            cond.append([take, take, False])
        elif name == "ifdef":
            take = outer_active and rest.split()[0] in self.macros if rest else False
            cond.append([take, take, False])
        elif name == "ifndef":
            take = outer_active and (not rest or rest.split()[0] not in self.macros)
            take = outer_active and take
            cond.append([take, take, False])
        elif name == "elif":
            if not cond:
                raise PreprocessorError("#elif without #if", filename, lineno)
            frame = cond[-1]
            if frame[2]:
                raise PreprocessorError("#elif after #else", filename, lineno)
            outer = all(f[0] for f in cond[:-1])
            if frame[1] or not outer:
                frame[0] = False
            else:
                take = bool(self._eval_cond(rest, filename, lineno))
                frame[0] = take
                frame[1] = take
        elif name == "else":
            if not cond:
                raise PreprocessorError("#else without #if", filename, lineno)
            frame = cond[-1]
            if frame[2]:
                raise PreprocessorError("duplicate #else", filename, lineno)
            outer = all(f[0] for f in cond[:-1])
            frame[0] = outer and not frame[1]
            frame[1] = True
            frame[2] = True
        elif name == "endif":
            if not cond:
                raise PreprocessorError("#endif without #if", filename, lineno)
            cond.pop()

    def _eval_cond(self, text: str, filename: str, lineno: int) -> int:
        tokens = tokenize(text)
        tokens = self._expand_defined(tokens)
        tokens = self._expand_tokens(tokens, set(), filename, lineno, 0)
        try:
            return _CondParser(tokens).parse()
        except PreprocessorError as exc:
            raise PreprocessorError(str(exc), filename, lineno) from None

    def _expand_defined(self, tokens: list[str]) -> list[str]:
        out: list[str] = []
        i = 0
        toks = _strip_ws(tokens)
        while i < len(toks):
            tok = toks[i]
            if tok == "defined":
                if i + 1 < len(toks) and toks[i + 1] == "(":
                    name = toks[i + 2] if i + 2 < len(toks) else ""
                    out.append("1" if name in self.macros else "0")
                    i += 4  # defined ( name )
                else:
                    name = toks[i + 1] if i + 1 < len(toks) else ""
                    out.append("1" if name in self.macros else "0")
                    i += 2
            else:
                out.append(tok)
                i += 1
        return out

    # directives --------------------------------------------------------

    def _dir_include(
        self, rest: str, filename: str, lineno: int, out: list[str], depth: int
    ) -> bool:
        rest = detokenize(
            self._expand_tokens(tokenize(rest), set(), filename, lineno, 0)
        ).strip()
        m = re.match(r'"([^"]+)"', rest) or re.match(r"<([^>]+)>", rest)
        if not m:
            raise PreprocessorError(f"bad #include {rest!r}", filename, lineno)
        target = m.group(1)
        is_system = rest.startswith("<")
        key = f"{is_system}:{target}"
        if key in self.included_once:
            out.append(f'#line {lineno + 1} "{filename}"')
            return True
        text = self._find_include(target, is_system, filename, lineno)
        self._process(text, target, out, depth + 1)
        out.append(f'#line {lineno + 1} "{filename}"')
        return True

    def _find_include(
        self, target: str, is_system: bool, filename: str, lineno: int
    ) -> str:
        if not is_system:
            for base in self.include_paths:
                path = os.path.join(base, target)
                if os.path.isfile(path):
                    with open(path, "r") as f:
                        return f.read()
        if target in self.builtin_headers:
            # builtin headers are include-once by construction
            self.included_once.add(f"{is_system}:{target}")
            return self.builtin_headers[target]
        if is_system:
            for base in self.include_paths:
                path = os.path.join(base, target)
                if os.path.isfile(path):
                    with open(path, "r") as f:
                        return f.read()
        raise PreprocessorError(f"include file not found: {target}", filename, lineno)

    def _dir_define(
        self, rest: str, filename: str, lineno: int, out: list[str], depth: int
    ) -> bool:
        m = re.match(r"([A-Za-z_]\w*)(\()?", rest)
        if not m:
            raise PreprocessorError(f"bad #define {rest!r}", filename, lineno)
        name = m.group(1)
        pos = m.end(1)
        params: Optional[list[str]] = None
        variadic = False
        if m.group(2):  # function-like: no space before '('
            end = rest.find(")", pos)
            if end < 0:
                raise PreprocessorError("unterminated macro params", filename, lineno)
            raw = rest[pos + 1 : end].strip()
            params = []
            if raw:
                for p in raw.split(","):
                    p = p.strip()
                    if p == "...":
                        variadic = True
                    elif p:
                        params.append(p)
            body = rest[end + 1 :].strip()
        else:
            body = rest[pos:].strip()
        self.macros[name] = MacroDefinition(name, params, tokenize(body), variadic)
        return True

    def _dir_undef(
        self, rest: str, filename: str, lineno: int, out: list[str], depth: int
    ) -> bool:
        name = rest.split()[0] if rest.split() else ""
        self.undef(name)
        return True

    def _dir_error(
        self, rest: str, filename: str, lineno: int, out: list[str], depth: int
    ) -> bool:
        raise PreprocessorError(f"#error {rest}", filename, lineno)

    def _dir_warning(
        self, rest: str, filename: str, lineno: int, out: list[str], depth: int
    ) -> bool:
        return True  # ignored

    def _dir_pragma(
        self, rest: str, filename: str, lineno: int, out: list[str], depth: int
    ) -> bool:
        if rest.strip() == "once":
            self.included_once.add(f"True:{filename}")
            self.included_once.add(f"False:{filename}")
        return True

    def _dir_line(
        self, rest: str, filename: str, lineno: int, out: list[str], depth: int
    ) -> bool:
        out.append(f"#line {rest}")
        return True

    # macro expansion ----------------------------------------------------

    def _expand_line(self, line: str, filename: str, lineno: int) -> str:
        tokens = tokenize(line)
        expanded = self._expand_tokens(tokens, set(), filename, lineno, 0)
        indent = line[: len(line) - len(line.lstrip())]
        return indent + detokenize(expanded)

    def _expand_tokens(
        self,
        tokens: list[str],
        hide: set[str],
        filename: str,
        lineno: int,
        depth: int,
    ) -> list[str]:
        if depth > self.MAX_EXPANSION_DEPTH:
            raise PreprocessorError("macro expansion too deep", filename, lineno)
        out: list[str] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok == "__LINE__":
                out.append(str(lineno))
                i += 1
                continue
            if tok == "__FILE__":
                out.append('"' + filename + '"')
                i += 1
                continue
            macro = self.macros.get(tok) if tok not in hide else None
            if macro is None or not re.fullmatch(r"[A-Za-z_]\w*", tok or " "):
                out.append(tok)
                i += 1
                continue
            if macro.is_function:
                # needs a following '(' (possibly after whitespace)
                j = i + 1
                while j < len(tokens) and tokens[j] == "":
                    j += 1
                if j >= len(tokens) or tokens[j] != "(":
                    out.append(tok)
                    i += 1
                    continue
                args, next_i = self._collect_args(tokens, j, filename, lineno)
                body = self._substitute(macro, args, hide, filename, lineno, depth)
                out.extend(
                    self._expand_tokens(
                        body, hide | {tok}, filename, lineno, depth + 1
                    )
                )
                i = next_i
            else:
                body = self._paste(list(macro.body))
                out.extend(
                    self._expand_tokens(
                        body, hide | {tok}, filename, lineno, depth + 1
                    )
                )
                i += 1
        return out

    def _collect_args(
        self, tokens: list[str], open_paren: int, filename: str, lineno: int
    ) -> tuple[list[list[str]], int]:
        args: list[list[str]] = []
        current: list[str] = []
        level = 0
        i = open_paren
        while i < len(tokens):
            tok = tokens[i]
            if tok == "(":
                level += 1
                if level > 1:
                    current.append(tok)
            elif tok == ")":
                level -= 1
                if level == 0:
                    args.append(current)
                    return args, i + 1
                current.append(tok)
            elif tok == "," and level == 1:
                args.append(current)
                current = []
            else:
                current.append(tok)
            i += 1
        raise PreprocessorError("unterminated macro arguments", filename, lineno)

    def _substitute(
        self,
        macro: MacroDefinition,
        args: list[list[str]],
        hide: set[str],
        filename: str,
        lineno: int,
        depth: int,
    ) -> list[str]:
        params = macro.params or []
        # drop the single empty argument of a zero-parameter invocation
        if len(args) == 1 and not _strip_ws(args[0]) and not params and not macro.variadic:
            args = []
        named = {p: args[i] if i < len(args) else [] for i, p in enumerate(params)}
        if macro.variadic:
            rest = args[len(params) :]
            va: list[str] = []
            for k, a in enumerate(rest):
                if k:
                    va.append(",")
                va.extend(a)
            named["__VA_ARGS__"] = va
        out: list[str] = []
        body = macro.body
        i = 0
        while i < len(body):
            tok = body[i]
            nxt = _next_solid(body, i)
            if tok == "#" and nxt is not None and body[nxt] in named:
                out.append(_stringize(named[body[nxt]]))
                i = nxt + 1
                continue
            if nxt is not None and body[nxt] == "##":
                # paste handled in a second pass; substitute raw (no expand)
                pass
            if tok in named:
                arg = named[tok]
                prev_paste = _prev_solid_is(out, "##")
                next_paste = nxt is not None and body[nxt] == "##"
                if prev_paste or next_paste:
                    out.extend(arg)  # raw for pasting
                else:
                    out.extend(
                        self._expand_tokens(
                            list(arg), hide, filename, lineno, depth + 1
                        )
                    )
            else:
                out.append(tok)
            i += 1
        return self._paste(out)

    @staticmethod
    def _paste(tokens: list[str]) -> list[str]:
        out: list[str] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok == "##":
                while out and out[-1] == "":
                    out.pop()
                j = i + 1
                while j < len(tokens) and tokens[j] == "":
                    j += 1
                rhs = tokens[j] if j < len(tokens) else ""
                lhs = out.pop() if out else ""
                glued = lhs + rhs
                if glued:
                    out.extend(tokenize(glued))
                i = j + 1
            else:
                out.append(tok)
                i += 1
        return out


def _next_solid(tokens: list[str], i: int) -> Optional[int]:
    j = i + 1
    while j < len(tokens) and tokens[j] == "":
        j += 1
    return j if j < len(tokens) else None


def _prev_solid_is(tokens: list[str], what: str) -> bool:
    j = len(tokens) - 1
    while j >= 0 and tokens[j] == "":
        j -= 1
    return j >= 0 and tokens[j] == what


def _stringize(tokens: list[str]) -> str:
    text = detokenize(tokens).strip()
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def preprocess(
    text: str,
    filename: str = "<input>",
    include_paths: Optional[list[str]] = None,
    defines: Optional[dict[str, str]] = None,
) -> str:
    """One-shot convenience wrapper around :class:`Preprocessor`."""
    return Preprocessor(include_paths, defines).preprocess(text, filename)
