"""The C front end: preprocessor, parser driver, type layout, lowering."""

from .cpp import Preprocessor, PreprocessorError, preprocess
from .parser import (
    ParseError,
    load_program,
    load_program_from_file,
    load_project,
    load_project_files,
    parse_c_source,
)

__all__ = [
    "Preprocessor",
    "PreprocessorError",
    "preprocess",
    "ParseError",
    "parse_c_source",
    "load_program",
    "load_program_from_file",
    "load_project",
    "load_project_files",
]
