"""Concurrency-safe file I/O shared by every layer that persists JSON.

The repo's persistence points (``repro index`` stores, the benchmark
trajectory, snapshot files) all follow the same discipline: serialize to
a temporary sibling, then ``os.replace`` so readers never observe a
truncated document.  The original spelling used a *fixed* ``<path>.tmp``
sibling — two concurrent writers (two ``repro index`` runs against one
store, two ``--record`` batches appending to one trajectory) would then
write into the *same* temporary file and rename each other's half-written
bytes into place.

``atomic_write_text`` closes that race: the temporary name is unique per
process (``<path>.tmp.<pid>``) and created with ``O_EXCL`` so even a pid
collision (container pid reuse, a leftover file from a crash) fails loudly
instead of silently interleaving two writers.  The final ``os.replace``
is atomic on POSIX, so concurrent writers serialize to
last-replace-wins — each outcome a complete, valid document.
"""

from __future__ import annotations

import itertools
import os
import sys
from contextlib import contextmanager
from typing import IO, Iterator

__all__ = [
    "RotatingLineWriter",
    "atomic_write_text",
    "out_stream",
    "write_text",
]

#: per-call disambiguator so concurrent *threads* of one process get
#: distinct temporaries too (the pid alone separates processes)
_seq = itertools.count()


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    Writes to a unique ``<path>.tmp.<pid>.<n>`` sibling opened with
    ``O_EXCL`` (two writers can never share a temporary), then renames it
    over ``path``.  On any failure the temporary is removed, never left
    to shadow a later writer's ``O_EXCL`` create.
    """
    tmp = f"{path}.tmp.{os.getpid()}.{next(_seq)}"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def out_stream(dest: str) -> Iterator[IO[str]]:
    """The one ``-``-means-stdout output convention, shared by every
    JSON-emitting destination flag (``--stats-json``, ``--trace-json``,
    ``--trace-jsonl``, ``explain --json``, ``query -o``, ``serve
    --access-log``, ``loadtest -o``): ``-`` yields ``sys.stdout`` (left
    open), anything else opens the file at that path for writing."""
    if dest == "-":
        yield sys.stdout
    else:
        with open(dest, "w", encoding="utf-8") as fh:
            yield fh


def write_text(dest: str, text: str) -> None:
    """Write ``text`` (newline-terminated) to ``dest`` per
    :func:`out_stream`'s convention."""
    with out_stream(dest) as fh:
        fh.write(text if text.endswith("\n") else text + "\n")


class RotatingLineWriter:
    """A file-like line writer with size-based rotation (``repro serve
    --access-log-max-bytes``).

    Presents the ``write``/``flush``/``close`` surface the query
    server's buffered access-log path expects, so rotation is invisible
    to the writer: when appending ``chunk`` would push the current file
    past ``max_bytes`` (and the file is non-empty — a single oversized
    record still lands somewhere), the file is flushed, closed, and
    atomically renamed to ``<path>.1`` (``os.replace``, clobbering the
    previous backup), and a fresh ``<path>`` is opened.  A chunk is
    never split across the rotation boundary, so both files always hold
    whole JSONL records.

    Opens in append mode — restarting a daemon against an existing log
    continues (and correctly sizes) it rather than truncating history.
    The caller serializes ``write`` calls (the server already holds its
    access-log lock); rotation happens inside the same call, so no
    extra locking is needed here.
    """

    def __init__(self, path: str, max_bytes: int) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = path
        self.max_bytes = max_bytes
        self.rotations = 0
        self._fh = open(path, "a", encoding="utf-8")
        self._size = self._fh.tell()

    def write(self, chunk: str) -> int:
        n = len(chunk.encode("utf-8"))
        if self._size > 0 and self._size + n > self.max_bytes:
            self._rotate()
        self._fh.write(chunk)
        self._size += n
        return len(chunk)

    def _rotate(self) -> None:
        self._fh.flush()
        self._fh.close()
        os.replace(self.path, f"{self.path}.1")
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "RotatingLineWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
