"""Concurrency-safe file I/O shared by every layer that persists JSON.

The repo's persistence points (``repro index`` stores, the benchmark
trajectory, snapshot files) all follow the same discipline: serialize to
a temporary sibling, then ``os.replace`` so readers never observe a
truncated document.  The original spelling used a *fixed* ``<path>.tmp``
sibling — two concurrent writers (two ``repro index`` runs against one
store, two ``--record`` batches appending to one trajectory) would then
write into the *same* temporary file and rename each other's half-written
bytes into place.

``atomic_write_text`` closes that race: the temporary name is unique per
process (``<path>.tmp.<pid>``) and created with ``O_EXCL`` so even a pid
collision (container pid reuse, a leftover file from a crash) fails loudly
instead of silently interleaving two writers.  The final ``os.replace``
is atomic on POSIX, so concurrent writers serialize to
last-replace-wins — each outcome a complete, valid document.
"""

from __future__ import annotations

import itertools
import os
import sys
from contextlib import contextmanager
from typing import IO, Iterator

__all__ = ["atomic_write_text", "out_stream", "write_text"]

#: per-call disambiguator so concurrent *threads* of one process get
#: distinct temporaries too (the pid alone separates processes)
_seq = itertools.count()


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    Writes to a unique ``<path>.tmp.<pid>.<n>`` sibling opened with
    ``O_EXCL`` (two writers can never share a temporary), then renames it
    over ``path``.  On any failure the temporary is removed, never left
    to shadow a later writer's ``O_EXCL`` create.
    """
    tmp = f"{path}.tmp.{os.getpid()}.{next(_seq)}"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def out_stream(dest: str) -> Iterator[IO[str]]:
    """The one ``-``-means-stdout output convention, shared by every
    JSON-emitting destination flag (``--stats-json``, ``--trace-json``,
    ``--trace-jsonl``, ``explain --json``, ``query -o``, ``serve
    --access-log``, ``loadtest -o``): ``-`` yields ``sys.stdout`` (left
    open), anything else opens the file at that path for writing."""
    if dest == "-":
        yield sys.stdout
    else:
        with open(dest, "w", encoding="utf-8") as fh:
            yield fh


def write_text(dest: str, text: str) -> None:
    """Write ``text`` (newline-terminated) to ``dest`` per
    :func:`out_stream`'s convention."""
    with out_stream(dest) as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
