"""The paper's low-level memory model (§3): blocks, location sets, and the
flow-sensitive points-to state representations."""

from .blocks import (
    ExtendedParameter,
    GlobalBlock,
    HeapBlock,
    LocalBlock,
    MemoryBlock,
    ProcedureBlock,
    ReturnBlock,
    StringBlock,
)
from .locset import LocationSet, locations_overlap, ranges_overlap_mod
from .pointsto import DenseState, SparseState, normalize_loc, normalize_values

__all__ = [
    "MemoryBlock",
    "LocalBlock",
    "ReturnBlock",
    "HeapBlock",
    "GlobalBlock",
    "ExtendedParameter",
    "StringBlock",
    "ProcedureBlock",
    "LocationSet",
    "locations_overlap",
    "ranges_overlap_mod",
    "DenseState",
    "SparseState",
    "normalize_loc",
    "normalize_values",
]
