"""Points-to functions: flow-sensitive maps from location sets to values.

At each statement a points-to function maps the location sets containing
pointers to the locations that may be reached through them (§3.3).  Two
interchangeable state representations implement the same interface:

* :class:`DenseState` — a full points-to map per flow-graph node.  Simple
  and obviously correct; used as the reference implementation and in the
  sparse-vs-dense ablation benchmark.
* :class:`SparseState` — the paper's scheme (§4.2): per-node *deltas* only,
  dominator-tree walks to find the most recent assignment, φ-functions
  inserted dynamically at iterated dominance frontiers, and strong-update
  fences for unique locations (§4.3).

Both honour the same uniqueness rules: a *strong update* (overwriting the
destination's previous contents) happens only when the destination is a
single location set with no stride whose base is a unique block (§4.1).

Keys follow parameter subsumption lazily: whenever a location set's base is
an extended parameter that has been subsumed (§3.2), the key is normalized
to the representative parameter before use.

Lookup memoization (the hot path)
---------------------------------

The sparse representation's dominator walks are the hottest loop of the
whole engine: every dereference triggers ``lookup_overlapping``, which
walks the dominator tree once per registered pointer location of the base
block.  :class:`SparseState` therefore memoizes

* ``_search`` results keyed ``(loc, node.uid, inclusive, fence.uid)``,
* ``_find_strong_fence`` results keyed ``(loc, node.uid, width, inclusive)``,
* ``lookup_overlapping`` results keyed
  ``(loc, node.uid, width, before, base.pointer_version)``,

each partitioned *per base block*.  Every cached answer depends only on
defs, φ results and initial entries whose key shares the probe's base
block (searches are exact-key, fences and overlap sets consult only
same-base entries), so recording a def for ``loc`` invalidates just the
partition of ``loc.base`` — untouched bases stay warm across fixpoint
passes, which is where most of the hit rate comes from.  The two events
that are *not* attributable to one base — parameter subsumption, which
rewrites keys wholesale, and a uniqueness downgrade, which changes fence
applicability — funnel through :meth:`SparseState.mark_changed` and drop
everything (both are rare).  Walks additionally *path-fill*: every
dominator visited on the way to an answer caches that answer too (into
the *inclusive* partition, where the answer is valid regardless of
whether the walk that reaches it later starts at the node itself), and
every walk consults that same partition at each dominator it visits — a
warm entry there short-circuits the remaining walk.  Together the two
halves amount to path compression: a cold walk of length k warms k
future probes, and any later probe anywhere below the warmed chain
terminates after at most one cold step.  The key list consulted by
``lookup_overlapping`` is cached separately, keyed by the block's
monotone ``pointer_version``, because the pointer-location registry
changes far more rarely than the points-to values do.

Provenance
----------

When an :class:`repro.diagnostics.provenance.ProvenanceLog` is threaded
in (``AnalyzerOptions.provenance=True``), every state mutation that
records new points-to information — ``assign``, ``assign_phi``,
``set_initial`` — tags the written ``(location, values)`` entry with a
derivation record (the assigning node, initial-value fetch, summary
binding or φ-merge, plus the engine-provided source context), which the
``repro explain`` CLI walks back to source lines.  With provenance off
(the default) each hook is one ``is not None`` check.

Values are interned (:func:`intern_values` hash-conses the frozensets,
:func:`~repro.memory.locset.intern_locset` the location sets inside them)
so that the equality checks behind dict probes and change detection
usually succeed on identity.  ``lookup_cache=False`` switches every cache
off and must produce bit-identical results — the caches are pure
memoization, asserted by the property tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..diagnostics import Metrics
from ..ir.dominators import iterated_frontier
from ..ir.nodes import MeetNode, Node
from . import blocks as _blocks
from .blocks import ExtendedParameter, MemoryBlock
from .locset import LocationSet, intern_locset

__all__ = [
    "Values",
    "DenseState",
    "SparseState",
    "normalize_loc",
    "normalize_values",
    "intern_values",
    "reset_interning",
    "values_intern_size",
]

#: A points-to value: the set of locations a pointer may target.
Values = frozenset  # frozenset[LocationSet]

EMPTY: frozenset = frozenset()

#: hash-cons table for points-to value sets; bounded to keep a long-lived
#: process (or a long test run) from accumulating dead blocks
_VALUES_INTERN: dict = {}
_VALUES_INTERN_CAP = 1 << 18

#: cache-miss sentinel (``None`` is a valid fence result)
_MISS = object()


def intern_values(values: frozenset) -> frozenset:
    """Return the canonical instance of ``values`` (hash-consing).

    Interned value sets make the ``old != new`` change-detection compares
    and dict probes across the engine hit the identity fast path.
    """
    if not values:
        return EMPTY
    hit = _VALUES_INTERN.get(values)
    if hit is not None:
        return hit
    if len(_VALUES_INTERN) >= _VALUES_INTERN_CAP:
        _VALUES_INTERN.clear()
    _VALUES_INTERN[values] = values
    return values


def values_intern_size() -> int:
    """Live entry count of the global value-set hash-cons table.

    A memory gauge for the snapshot layer: the table is bounded by
    ``_VALUES_INTERN_CAP`` (it clears wholesale at the cap), so this also
    tells *how close* a run drove it to the flush threshold.
    """
    return len(_VALUES_INTERN)


def reset_interning() -> None:
    """Drop the global value-intern table and restart block uid numbering
    (see :func:`repro.memory.blocks.reset_uid_counter`).  Used by the
    benchmark harness and the equivalence tests to give every analysis an
    identical process state; never call it between analyses that share
    memory blocks."""
    _VALUES_INTERN.clear()
    _blocks.reset_uid_counter()


def normalize_loc(loc: LocationSet) -> LocationSet:
    """Rewrite a location set whose base parameter has been subsumed."""
    base = loc.base
    if base.subsumed_by is None:
        # canonical-instance fast path: nothing to rewrite, already interned
        if loc._interned:  # type: ignore[attr-defined]
            return loc
        return intern_locset(loc)
    rep = base.representative()
    return intern_locset(LocationSet(rep, loc.offset, loc.stride))


def normalize_values(values: Iterable[LocationSet]) -> frozenset:
    if not isinstance(values, frozenset):
        values = frozenset(values)
    # fast path: nothing to rewrite — intern and return as-is
    for v in values:
        if v.base.subsumed_by is not None:
            return intern_values(frozenset(normalize_loc(x) for x in values))
    return intern_values(values)


def _register(loc: LocationSet) -> bool:
    """Register ``loc`` as a pointer-holding location on its block (§3.3)."""
    return loc.base.register_pointer_location(loc.offset, loc.stride)


class PointsToState:
    """Interface shared by the dense and sparse representations."""

    kind = "abstract"

    def __init__(
        self,
        entry: Node,
        lookup_cache: bool = True,
        metrics: Optional[Metrics] = None,
        provenance=None,
    ) -> None:
        self.entry = entry
        #: keys ever assigned by the procedure body (excludes pure initial
        #: entries); the PTF summary is built from these
        self.assigned_keys: set[LocationSet] = set()
        #: bumped whenever anything changes; drives the fixpoint loop *and*
        #: the lookup-cache invalidation generation
        self.change_counter = 0
        #: when False, every memoization layer is bypassed (ablation /
        #: ``AnalyzerOptions.lookup_cache=False``)
        self.lookup_cache = lookup_cache
        #: shared diagnostics sink; a private one when not threaded in
        self.metrics = metrics if metrics is not None else Metrics()
        #: optional shared :class:`repro.diagnostics.provenance.
        #: ProvenanceLog`; when None (the default) every provenance hook
        #: is a single ``is not None`` check — same contract as tracing
        self.provenance = provenance

    # -- initial values (procedure inputs, recorded at the entry node) --

    def set_initial(self, loc: LocationSet, values: Iterable[LocationSet]) -> None:
        raise NotImplementedError

    def get_initial(self, loc: LocationSet) -> Optional[frozenset]:
        raise NotImplementedError

    def initial_items(self) -> list[tuple[LocationSet, frozenset]]:
        raise NotImplementedError

    # -- transfer ---------------------------------------------------------

    def assign(
        self,
        loc: LocationSet,
        values: Iterable[LocationSet],
        node: Node,
        strong: bool,
        size: int = 4,
    ) -> bool:
        """Record ``loc -> values`` at ``node``; returns True on change.

        ``size`` is the byte width of the store: a strong update kills every
        overlapping location within it.
        """
        raise NotImplementedError

    def assign_phi(
        self, loc: LocationSet, values: Iterable[LocationSet], node: Node
    ) -> bool:
        """Record a φ result: replaces the recorded merge at a meet node but
        is not a strong update (it does not fence overlapping locations)."""
        return self.assign(loc, values, node, strong=False)

    def lookup(self, loc: LocationSet, node: Node, before: bool = True) -> frozenset:
        """Exact-key lookup of the values of ``loc`` visible at ``node``
        (before the node executes when ``before`` is True)."""
        raise NotImplementedError

    def lookup_overlapping(
        self, loc: LocationSet, node: Node, width: int = 1, before: bool = True
    ) -> frozenset:
        """Dereference semantics (§4.3): union the values of every
        registered pointer location overlapping ``loc``, respecting strong
        update fences for unique locations."""
        raise NotImplementedError

    def merge_at(self, node: Node, evaluated: set[int]) -> None:
        """Prepare the in-state of ``node`` from its evaluated predecessors."""
        raise NotImplementedError

    def finish_node(self, node: Node) -> None:
        """Commit a node's evaluation (change detection hook)."""
        return

    def summary(self, exit_node: Node) -> dict[LocationSet, frozenset]:
        """The final points-to function over assigned keys at the exit."""
        out: dict[LocationSet, frozenset] = {}
        for key in sorted(self.assigned_keys, key=lambda l: (l.base.uid, l.offset, l.stride)):
            key_n = normalize_loc(key)
            vals = self.lookup(key_n, exit_node, before=True)
            if vals:
                out[key_n] = vals
        return out

    def mark_changed(self) -> None:
        self.change_counter += 1

    # -- memory accounting -------------------------------------------------

    def entry_count(self) -> int:
        """Assigned keys plus lazily fetched initial entries — the same
        size proxy the ``max_state_entries`` guard polls."""
        return len(self.assigned_keys) + len(getattr(self, "_initial", ()))

    def footprint(self) -> dict[str, int]:
        """Live per-representation size gauges (snapshot memory profile).

        Both representations report ``entries`` (the guard proxy) and
        ``initial``; each adds its own dominant structures — per-node map
        cells for the dense state, defs/φ/memo-partition entries for the
        sparse one.
        """
        return {"entries": self.entry_count(), "initial": len(getattr(self, "_initial", ()))}


# ---------------------------------------------------------------------------
# Dense representation
# ---------------------------------------------------------------------------


class DenseState(PointsToState):
    """Full per-node points-to maps (reference implementation)."""

    kind = "dense"

    def __init__(
        self,
        entry: Node,
        lookup_cache: bool = True,
        metrics: Optional[Metrics] = None,
        provenance=None,
    ) -> None:
        super().__init__(
            entry, lookup_cache=lookup_cache, metrics=metrics, provenance=provenance
        )
        self._initial: dict[LocationSet, frozenset] = {}
        #: node uid -> map at node exit
        self._out: dict[int, dict[LocationSet, frozenset]] = {}
        #: node uid -> map at node entry (after merging predecessors)
        self._in: dict[int, dict[LocationSet, frozenset]] = {}
        #: node uid -> the out map from the previous pass (change detection)
        self._prev_out: dict[int, Optional[dict]] = {}

    # -- initial ----------------------------------------------------------

    def set_initial(self, loc: LocationSet, values: Iterable[LocationSet]) -> None:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        _register(loc)
        old = self._initial.get(loc)
        # compare the *union* against the old entry: re-recording values
        # already present must not mark the state changed, or redundant
        # set_initial calls trigger spurious extra fixpoint passes
        new = vals if old is None else intern_values(old | vals)
        if old != new:
            self._initial[loc] = new
            self.mark_changed()
            if self.provenance is not None:
                self.provenance.tag_initial(loc, vals, self.entry)

    def get_initial(self, loc: LocationSet) -> Optional[frozenset]:
        return self._initial.get(normalize_loc(loc))

    def initial_items(self) -> list[tuple[LocationSet, frozenset]]:
        return list(self._initial.items())

    # -- maps ------------------------------------------------------------

    def _map_at(self, node: Node, before: bool) -> dict[LocationSet, frozenset]:
        if node is self.entry:
            return self._initial
        if before:
            return self._in.get(node.uid, {})
        return self._out.get(node.uid, self._in.get(node.uid, {}))

    def merge_at(self, node: Node, evaluated: set[int]) -> None:
        if node is self.entry:
            return
        merged: dict[LocationSet, frozenset] = {}
        for pred in node.preds:
            if pred.uid not in evaluated and pred is not self.entry:
                continue
            pmap = self._out.get(pred.uid)
            if pmap is None:
                pmap = self._initial if pred is self.entry else self._in.get(pred.uid, {})
            for key, vals in pmap.items():
                key = normalize_loc(key)
                vals = normalize_values(vals)
                old = merged.get(key)
                merged[key] = vals if old is None else intern_values(old | vals)
        self._in[node.uid] = merged
        # out starts as a copy of in; assign() then mutates it in place, and
        # finish_node compares against the previous pass's out map
        self._prev_out[node.uid] = self._out.get(node.uid)
        self._out[node.uid] = dict(merged)

    def finish_node(self, node: Node) -> None:
        if node is self.entry:
            return
        if self._out.get(node.uid) != self._prev_out.get(node.uid):
            self.mark_changed()

    def assign(
        self,
        loc: LocationSet,
        values: Iterable[LocationSet],
        node: Node,
        strong: bool,
        size: int = 4,
    ) -> bool:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        if vals:
            _register(loc)
        self.assigned_keys.add(loc)
        out = self._out.setdefault(node.uid, dict(self._in.get(node.uid, {})))
        changed = False
        if strong:
            # a strong update overwrites every location the write covers
            doomed = [
                k
                for k in out
                if k.base is loc.base
                and k != loc
                and loc.overlaps(k, width=max(size, 1), other_width=1)
            ]
            for k in doomed:
                del out[k]
                changed = True
            if out.get(loc) != vals:
                out[loc] = vals
                changed = True
        else:
            old = out.get(loc, EMPTY)
            new = intern_values(old | vals)
            if new != old:
                out[loc] = new
                changed = True
        if changed:
            if strong:
                self.metrics.strong_updates += 1
            else:
                self.metrics.weak_updates += 1
            if self.provenance is not None:
                self.provenance.tag(loc, vals, node, strong)
        return changed

    def lookup(self, loc: LocationSet, node: Node, before: bool = True) -> frozenset:
        self.metrics.lookups += 1
        loc = normalize_loc(loc)
        table = self._map_at(node, before)
        hit = table.get(loc)
        if hit is None:
            # keys may have been recorded before their base was subsumed
            for key, vals in table.items():
                if normalize_loc(key) == loc:
                    hit = vals
                    break
        return normalize_values(hit or EMPTY)

    def lookup_overlapping(
        self, loc: LocationSet, node: Node, width: int = 1, before: bool = True
    ) -> frozenset:
        self.metrics.lookups += 1
        loc = normalize_loc(loc)
        result: set[LocationSet] = set()
        for key, vals in self._map_at(node, before).items():
            key_n = normalize_loc(key)
            if key_n.base is loc.base and loc.overlaps(key_n, width=width, other_width=1):
                result |= vals
        return normalize_values(result)

    def footprint(self) -> dict[str, int]:
        out = super().footprint()
        out["map_cells"] = sum(len(m) for m in self._in.values()) + sum(
            len(m) for m in self._out.values()
        )
        out["nodes_mapped"] = len(self._in)
        return out


# ---------------------------------------------------------------------------
# Sparse representation (the paper's §4.2 scheme)
# ---------------------------------------------------------------------------


class SparseState(PointsToState):
    """Per-node deltas + dominator-walk lookups + dynamic φ insertion.

    Only the points-to values that change at a node are recorded.  Looking
    up the value of a pointer searches back through the dominating flow
    graph nodes for the most recent assignment; meet nodes carry φ-functions
    (inserted at iterated dominance frontiers when a location is assigned)
    that combine the values from each predecessor (§4.2, Figure 9).

    The dominator walks are memoized behind generation-invalidated caches;
    see the module docstring for the invariants.
    """

    kind = "sparse"

    def __init__(
        self,
        entry: Node,
        lookup_cache: bool = True,
        metrics: Optional[Metrics] = None,
        provenance=None,
    ) -> None:
        super().__init__(
            entry, lookup_cache=lookup_cache, metrics=metrics, provenance=provenance
        )
        self._initial: dict[LocationSet, frozenset] = {}
        #: node uid -> {loc: (values, strong, kill_size)}; kill_size is the
        #: byte width a strong update overwrote (0 for weak and φ entries)
        self._defs: dict[int, dict[LocationSet, tuple[frozenset, bool, int]]] = {}
        #: node uid -> φ locations attached to that (meet) node
        self.phis: dict[int, set[LocationSet]] = {}
        # -- memoization, partitioned per base block (see module docstring);
        # recording a def for ``loc`` drops only ``loc.base``'s partition.
        # Two-level layout: the outer key carries everything but the node,
        # the inner dict is keyed by bare node uid — path compression then
        # fills int-keyed entries instead of allocating a tuple per node --
        #: base uid -> {(loc, inclusive, fence uid): {node uid: values}}
        self._search_cache: dict[int, dict[tuple, dict[int, frozenset]]] = {}
        #: base uid -> {(loc, width): {node uid: fence node or None}}
        self._fence_cache: dict[int, dict[tuple, dict[int, Optional[Node]]]] = {}
        #: base uid -> {(loc, width, before, ptr_version): {node uid: values}}
        self._overlap_cache: dict[int, dict[tuple, dict[int, frozenset]]] = {}
        #: (loc, width, pointer_version) -> overlapping registered keys;
        #: keyed by the block's monotone pointer_version, so *not* cleared
        #: on value changes — the registry grows far more rarely
        self._overlap_keys: dict[tuple, tuple[LocationSet, ...]] = {}
        #: snapshot of the global subsumption epoch; when it moves, def keys
        #: are renormalized and the memo partitions dropped (lazily — the
        #: state cannot observe ``subsumed_by`` assignments directly)
        self._keys_epoch = _blocks.subsumption_epoch()

    # -- initial ---------------------------------------------------------

    def set_initial(self, loc: LocationSet, values: Iterable[LocationSet]) -> None:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        _register(loc)
        old = self._initial.get(loc)
        new = vals if old is None else intern_values(old | vals)
        if old != new:
            self._initial[loc] = new
            self._note_write(loc)
            if self.provenance is not None:
                self.provenance.tag_initial(loc, vals, self.entry)

    def get_initial(self, loc: LocationSet) -> Optional[frozenset]:
        return self._initial.get(normalize_loc(loc))

    def initial_items(self) -> list[tuple[LocationSet, frozenset]]:
        return list(self._initial.items())

    def merge_at(self, node: Node, evaluated: set[int]) -> None:
        # sparse states do not materialize merged maps; φ evaluation happens
        # when the meet node itself is evaluated (Figure 9)
        return

    # -- φ bookkeeping -----------------------------------------------------

    def phi_locations(self, node: Node) -> set[LocationSet]:
        return {normalize_loc(l) for l in self.phis.get(node.uid, ())}

    def _insert_phis(self, loc: LocationSet, node: Node) -> None:
        for meet in iterated_frontier([node]):
            locs = self.phis.setdefault(meet.uid, set())
            if loc not in locs:
                locs.add(loc)
                self.metrics.phi_insertions += 1
                # a pending φ is only visible to lookups once assign_phi
                # records its value (which invalidates), so bump the
                # fixpoint counter without dropping any cache partition
                self.change_counter += 1

    # -- transfer ---------------------------------------------------------

    def assign(
        self,
        loc: LocationSet,
        values: Iterable[LocationSet],
        node: Node,
        strong: bool,
        size: int = 4,
    ) -> bool:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        if vals:
            _register(loc)
        self.assigned_keys.add(loc)
        defs = self._defs.setdefault(node.uid, {})
        old = defs.get(loc)
        if not strong and old is not None:
            vals = vals | old[0]
        if not strong:
            # a weak update must preserve what was already visible here
            vals = vals | self._search(loc, node, inclusive=False)
        new_entry = (intern_values(vals), strong, size if strong else 0)
        if old != new_entry:
            defs[loc] = new_entry
            if strong:
                self.metrics.strong_updates += 1
            else:
                self.metrics.weak_updates += 1
            if self.provenance is not None:
                self.provenance.tag(loc, new_entry[0], node, strong)
            self._note_write(loc)
            self._insert_phis(loc, node)
            return True
        return False

    def assign_phi(
        self, loc: LocationSet, values: Iterable[LocationSet], node: Node
    ) -> bool:
        """Record a φ merge: exact replacement, never a strong-update fence."""
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        if vals:
            _register(loc)
        defs = self._defs.setdefault(node.uid, {})
        old = defs.get(loc)
        new_entry = (vals, False, 0)
        if old != new_entry:
            defs[loc] = new_entry
            if self.provenance is not None:
                self.provenance.tag_phi(loc, vals, node)
            self._note_write(loc)
            self._insert_phis(loc, node)
            return True
        return False

    # -- lookups -----------------------------------------------------------

    def lookup(self, loc: LocationSet, node: Node, before: bool = True) -> frozenset:
        self.metrics.lookups += 1
        loc = normalize_loc(loc)
        return self._search(loc, node, inclusive=not before)

    def _defs_at(
        self, node: Node, loc: LocationSet
    ) -> Optional[tuple[frozenset, bool, int]]:
        defs = self._defs.get(node.uid)
        if defs is None:
            return None
        # keys are kept canonical: mark_changed() renormalizes any key whose
        # base was subsumed, so an exact probe is complete
        return defs.get(loc)

    # -- cache plumbing ---------------------------------------------------

    def _note_write(self, loc: LocationSet) -> None:
        """A def/φ/initial entry for ``loc`` changed: bump the fixpoint
        counter and drop the memo partition of ``loc.base`` (cached answers
        for other bases cannot depend on this entry)."""
        self.change_counter += 1
        uid = loc.base.uid
        self._search_cache.pop(uid, None)
        self._fence_cache.pop(uid, None)
        self._overlap_cache.pop(uid, None)

    def mark_changed(self) -> None:
        """Non-local change (parameter subsumption, uniqueness downgrade):
        no single base owns the effect, so drop every memo partition and
        rewrite def keys whose base parameter was subsumed (§3.2).  The
        ``_overlap_keys`` table survives: it depends only on the
        pointer-location registry, whose monotone version is part of its
        keys."""
        self.change_counter += 1
        self._search_cache.clear()
        self._fence_cache.clear()
        self._overlap_cache.clear()
        self._renormalize_def_keys()
        self._keys_epoch = _blocks.subsumption_epoch()

    def _sync_keys(self) -> None:
        """Catch up with subsumptions performed since the last lookup:
        renormalize def keys and drop the memo partitions.  Cheap when
        nothing happened (one module-attribute compare)."""
        epoch = _blocks._subsumption_epoch
        if self._keys_epoch != epoch:
            self._keys_epoch = epoch
            self._search_cache.clear()
            self._fence_cache.clear()
            self._overlap_cache.clear()
            self._renormalize_def_keys()

    def _renormalize_def_keys(self) -> None:
        """Rewrite def keys recorded before their base was subsumed.

        Exact-key probes then stay complete without a linear fallback scan.
        When the canonical key already has an entry it wins — matching the
        lookup semantics this replaces, where an exact hit shadowed any
        stale aliases — and among several stale aliases the first in
        insertion order is kept.
        """
        for defs in self._defs.values():
            stale = [k for k in defs if k.base.subsumed_by is not None]
            for k in stale:
                entry = defs.pop(k)
                k_n = normalize_loc(k)
                if k_n not in defs:
                    defs[k_n] = entry

    def _search(
        self,
        loc: LocationSet,
        node: Node,
        inclusive: bool,
        fence: Optional[Node] = None,
    ) -> frozenset:
        """Memoized dominator-tree search for the latest def of ``loc``.

        ``fence`` (a strong-update node) bounds the search: defs at the
        fence itself are visible, anything strictly before it is not.
        """
        self._sync_keys()
        if not self.lookup_cache:
            return self._search_walk(loc, node, inclusive, fence)
        metrics = self.metrics
        fence_uid = fence.uid if fence is not None else -1
        cache = self._search_cache.get(loc.base.uid)
        if cache is None:
            cache = self._search_cache[loc.base.uid] = {}
        key = (loc, inclusive, fence_uid)
        by_node = cache.get(key)
        if by_node is None:
            by_node = cache[key] = {}
        hit = by_node.get(node.uid)
        if hit is not None:
            metrics.cache_hits += 1
            return hit
        metrics.cache_misses += 1
        # the *inclusive* partition doubles as the walk's shortcut table:
        # the value-after-n cached there is exactly what the remaining walk
        # from n would compute, so a walk that reaches a warm dominator
        # stops right there instead of re-walking to the def/entry
        if inclusive:
            incl = by_node
        else:
            incl = cache.get((loc, True, fence_uid))
            if incl is None:
                incl = cache[(loc, True, fence_uid)] = {}
        trail: list[int] = []
        result = self._search_walk(loc, node, inclusive, fence, trail, incl)
        by_node[node.uid] = result
        # path compression: every dominator whose defs the walk checked and
        # missed (and the one it stopped at) yields this same answer for an
        # inclusive search starting there
        for uid in trail:
            incl[uid] = result
        return result

    def _search_walk(
        self,
        loc: LocationSet,
        node: Node,
        inclusive: bool,
        fence: Optional[Node] = None,
        trail: Optional[list[int]] = None,
        memo: Optional[dict[int, frozenset]] = None,
    ) -> frozenset:
        """The raw walk of §4.2 (uncached); ``trail`` collects the uids of
        nodes at which an inclusive restart would produce the same result.

        ``memo`` is the inclusive-result shortcut table for this
        (loc, fence) pair: a warm entry at a visited dominator is exactly
        the remaining walk's answer, so the walk stops there.
        """
        steps = 0
        n: Optional[Node] = node
        first = True
        result = EMPTY
        while n is not None:
            if not first or inclusive:
                if memo is not None and n is not node:
                    hit = memo.get(n.uid)
                    if hit is not None:
                        result = hit
                        break
                if trail is not None:
                    trail.append(n.uid)
                hit = self._defs_at(n, loc)
                if hit is not None:
                    result = normalize_values(hit[0])
                    break
            if fence is not None and n is fence:
                result = EMPTY
                break
            if n is self.entry:
                result = normalize_values(self._initial.get(loc, EMPTY))
                break
            first = False
            n = n.idom
            steps += 1
        self.metrics.dom_walk_steps += steps
        return result

    def _find_strong_fence(
        self, loc: LocationSet, node: Node, width: int, inclusive: bool = False
    ) -> Optional[Node]:
        """The most recent dominating strong update that overwrote the
        *entire* ``width``-byte read at ``loc`` (§4.3), memoized.

        Coverage of the full read range is required: a narrower strong
        update leaves the history of the uncovered bytes visible, exactly
        as the dense representation's per-key kill does.  ``inclusive``
        reads (the value *after* the node executes) also see a covering
        strong update at the node itself.
        """
        self._sync_keys()
        if not self.lookup_cache:
            return self._fence_walk(loc, node, width, inclusive)
        metrics = self.metrics
        cache = self._fence_cache.get(loc.base.uid)
        if cache is None:
            cache = self._fence_cache[loc.base.uid] = {}
        by_node = cache.get((loc, width, inclusive))
        if by_node is None:
            by_node = cache[(loc, width, inclusive)] = {}
        hit = by_node.get(node.uid, _MISS)
        if hit is not _MISS:
            metrics.cache_hits += 1
            return hit  # type: ignore[return-value]
        metrics.cache_misses += 1
        # inclusive partition = mid-walk shortcut table (see _search)
        if inclusive:
            incl = by_node
        else:
            incl = cache.get((loc, width, True))
            if incl is None:
                incl = cache[(loc, width, True)] = {}
        trail: list[int] = []
        result = self._fence_walk(loc, node, width, inclusive, trail, incl)
        by_node[node.uid] = result
        for uid in trail:
            incl[uid] = result
        return result

    def _fence_walk(
        self,
        loc: LocationSet,
        node: Node,
        width: int,
        inclusive: bool = False,
        trail: Optional[list[int]] = None,
        memo: Optional[dict[int, Optional[Node]]] = None,
    ) -> Optional[Node]:
        steps = 0
        n: Optional[Node] = node
        first = True
        result: Optional[Node] = None
        while n is not None:
            if not first or inclusive:
                if memo is not None and n is not node:
                    hit = memo.get(n.uid, _MISS)
                    if hit is not _MISS:
                        result = hit  # type: ignore[assignment]
                        break
                defs = self._defs.get(n.uid)
                if defs is not None and self._has_covering_strong_def(
                    defs, loc, width
                ):
                    result = n
                    break
                # no covering strong def here: a restart from n checks (or
                # skips) its own clean defs and then walks the same ancestors
                if trail is not None:
                    trail.append(n.uid)
            if n is self.entry:
                break
            first = False
            n = n.idom
            steps += 1
        self.metrics.dom_walk_steps += steps
        return result

    @staticmethod
    def _has_covering_strong_def(
        defs: dict[LocationSet, tuple[frozenset, bool, int]],
        loc: LocationSet,
        width: int,
    ) -> bool:
        for key, (_vals, strong, kill_size) in defs.items():
            if not strong:
                continue
            key_n = normalize_loc(key)
            if key_n.base is not loc.base:
                continue
            if key_n.stride or loc.stride:
                # strong updates only target stride-0 unique sets (§4.1);
                # a strided read is never fully covered by one store
                continue
            if (
                key_n.offset <= loc.offset
                and key_n.offset + max(kill_size, 1) >= loc.offset + width
            ):
                return True
        return False

    def _overlapping_keys(self, loc: LocationSet, width: int) -> tuple[LocationSet, ...]:
        """Registered pointer locations of ``loc.base`` that a ``width``-byte
        read at ``loc`` can touch, cached per registry version."""
        base = loc.base
        cache_key = (loc, width, base.pointer_version)
        if self.lookup_cache:
            hit = self._overlap_keys.get(cache_key)
            if hit is not None:
                return hit
        keys: list[LocationSet] = []
        for offset, stride in sorted(base.pointer_locations):
            key = intern_locset(LocationSet(base, offset, stride))
            if loc.overlaps(key, width=width, other_width=1):
                keys.append(key)
        result = tuple(keys)
        if self.lookup_cache:
            self._overlap_keys[cache_key] = result
        return result

    def lookup_overlapping(
        self, loc: LocationSet, node: Node, width: int = 1, before: bool = True
    ) -> frozenset:
        metrics = self.metrics
        metrics.lookups += 1
        self._sync_keys()
        loc = normalize_loc(loc)
        by_node = None
        if self.lookup_cache:
            cache = self._overlap_cache.get(loc.base.uid)
            if cache is None:
                cache = self._overlap_cache[loc.base.uid] = {}
            cache_key = (loc, width, before, loc.base.pointer_version)
            by_node = cache.get(cache_key)
            if by_node is None:
                by_node = cache[cache_key] = {}
            hit = by_node.get(node.uid)
            if hit is not None:
                metrics.cache_hits += 1
                return hit
            metrics.cache_misses += 1
        fence: Optional[Node] = None
        if loc.is_unique:
            fence = self._find_strong_fence(
                loc, node, width=width, inclusive=not before
            )
        result: set[LocationSet] = set()
        for key in self._overlapping_keys(loc, width):
            result |= self._search(key, node, inclusive=not before, fence=fence)
        # normalize like DenseState.lookup_overlapping does: values recorded
        # before their base parameter was subsumed must not leak through
        out = normalize_values(frozenset(result))
        if by_node is not None:
            by_node[node.uid] = out
        return out

    def summary(self, exit_node: Node) -> dict[LocationSet, frozenset]:
        out: dict[LocationSet, frozenset] = {}
        for key in sorted(
            self.assigned_keys, key=lambda l: (l.base.uid, l.offset, l.stride)
        ):
            key_n = normalize_loc(key)
            vals = self._search(key_n, exit_node, inclusive=True)
            if vals:
                out[key_n] = vals
        return out

    def footprint(self) -> dict[str, int]:
        out = super().footprint()
        out["defs"] = sum(len(d) for d in self._defs.values())
        out["phis"] = sum(len(p) for p in self.phis.values())
        out["cache_entries"] = (
            sum(
                len(by_node)
                for part in self._search_cache.values()
                for by_node in part.values()
            )
            + sum(
                len(by_node)
                for part in self._fence_cache.values()
                for by_node in part.values()
            )
            + sum(
                len(by_node)
                for part in self._overlap_cache.values()
                for by_node in part.values()
            )
            + len(self._overlap_keys)
        )
        return out
