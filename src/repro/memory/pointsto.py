"""Points-to functions: flow-sensitive maps from location sets to values.

At each statement a points-to function maps the location sets containing
pointers to the locations that may be reached through them (§3.3).  Two
interchangeable state representations implement the same interface:

* :class:`DenseState` — a full points-to map per flow-graph node.  Simple
  and obviously correct; used as the reference implementation and in the
  sparse-vs-dense ablation benchmark.
* :class:`SparseState` — the paper's scheme (§4.2): per-node *deltas* only,
  dominator-tree walks to find the most recent assignment, φ-functions
  inserted dynamically at iterated dominance frontiers, and strong-update
  fences for unique locations (§4.3).

Both honour the same uniqueness rules: a *strong update* (overwriting the
destination's previous contents) happens only when the destination is a
single location set with no stride whose base is a unique block (§4.1).

Keys follow parameter subsumption lazily: whenever a location set's base is
an extended parameter that has been subsumed (§3.2), the key is normalized
to the representative parameter before use.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..ir.dominators import iterated_frontier
from ..ir.nodes import MeetNode, Node
from .blocks import ExtendedParameter, MemoryBlock
from .locset import LocationSet

__all__ = ["Values", "DenseState", "SparseState", "normalize_loc", "normalize_values"]

#: A points-to value: the set of locations a pointer may target.
Values = frozenset  # frozenset[LocationSet]

EMPTY: frozenset = frozenset()


def normalize_loc(loc: LocationSet) -> LocationSet:
    """Rewrite a location set whose base parameter has been subsumed."""
    base = loc.base
    if isinstance(base, ExtendedParameter) and base.subsumed_by is not None:
        rep = base.representative()
        return LocationSet(rep, loc.offset, loc.stride)
    return loc


def normalize_values(values: Iterable[LocationSet]) -> frozenset:
    return frozenset(normalize_loc(v) for v in values)


def _register(loc: LocationSet) -> bool:
    """Register ``loc`` as a pointer-holding location on its block (§3.3)."""
    return loc.base.register_pointer_location(loc.offset, loc.stride)


class PointsToState:
    """Interface shared by the dense and sparse representations."""

    kind = "abstract"

    def __init__(self, entry: Node) -> None:
        self.entry = entry
        #: keys ever assigned by the procedure body (excludes pure initial
        #: entries); the PTF summary is built from these
        self.assigned_keys: set[LocationSet] = set()
        #: bumped whenever anything changes; drives the fixpoint loop
        self.change_counter = 0

    # -- initial values (procedure inputs, recorded at the entry node) --

    def set_initial(self, loc: LocationSet, values: Iterable[LocationSet]) -> None:
        raise NotImplementedError

    def get_initial(self, loc: LocationSet) -> Optional[frozenset]:
        raise NotImplementedError

    def initial_items(self) -> list[tuple[LocationSet, frozenset]]:
        raise NotImplementedError

    # -- transfer ---------------------------------------------------------

    def assign(
        self,
        loc: LocationSet,
        values: Iterable[LocationSet],
        node: Node,
        strong: bool,
        size: int = 4,
    ) -> bool:
        """Record ``loc -> values`` at ``node``; returns True on change.

        ``size`` is the byte width of the store: a strong update kills every
        overlapping location within it.
        """
        raise NotImplementedError

    def assign_phi(
        self, loc: LocationSet, values: Iterable[LocationSet], node: Node
    ) -> bool:
        """Record a φ result: replaces the recorded merge at a meet node but
        is not a strong update (it does not fence overlapping locations)."""
        return self.assign(loc, values, node, strong=False)

    def lookup(self, loc: LocationSet, node: Node, before: bool = True) -> frozenset:
        """Exact-key lookup of the values of ``loc`` visible at ``node``
        (before the node executes when ``before`` is True)."""
        raise NotImplementedError

    def lookup_overlapping(
        self, loc: LocationSet, node: Node, width: int = 1, before: bool = True
    ) -> frozenset:
        """Dereference semantics (§4.3): union the values of every
        registered pointer location overlapping ``loc``, respecting strong
        update fences for unique locations."""
        raise NotImplementedError

    def merge_at(self, node: Node, evaluated: set[int]) -> None:
        """Prepare the in-state of ``node`` from its evaluated predecessors."""
        raise NotImplementedError

    def finish_node(self, node: Node) -> None:
        """Commit a node's evaluation (change detection hook)."""
        return

    def summary(self, exit_node: Node) -> dict[LocationSet, frozenset]:
        """The final points-to function over assigned keys at the exit."""
        out: dict[LocationSet, frozenset] = {}
        for key in sorted(self.assigned_keys, key=lambda l: (l.base.uid, l.offset, l.stride)):
            key_n = normalize_loc(key)
            vals = self.lookup(key_n, exit_node, before=True)
            if vals:
                out[key_n] = vals
        return out

    def mark_changed(self) -> None:
        self.change_counter += 1


# ---------------------------------------------------------------------------
# Dense representation
# ---------------------------------------------------------------------------


class DenseState(PointsToState):
    """Full per-node points-to maps (reference implementation)."""

    kind = "dense"

    def __init__(self, entry: Node) -> None:
        super().__init__(entry)
        self._initial: dict[LocationSet, frozenset] = {}
        #: node uid -> map at node exit
        self._out: dict[int, dict[LocationSet, frozenset]] = {}
        #: node uid -> map at node entry (after merging predecessors)
        self._in: dict[int, dict[LocationSet, frozenset]] = {}
        #: node uid -> the out map from the previous pass (change detection)
        self._prev_out: dict[int, Optional[dict]] = {}

    # -- initial ----------------------------------------------------------

    def set_initial(self, loc: LocationSet, values: Iterable[LocationSet]) -> None:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        _register(loc)
        old = self._initial.get(loc)
        if old != vals:
            self._initial[loc] = vals if old is None else (old | vals)
            self.mark_changed()

    def get_initial(self, loc: LocationSet) -> Optional[frozenset]:
        return self._initial.get(normalize_loc(loc))

    def initial_items(self) -> list[tuple[LocationSet, frozenset]]:
        return list(self._initial.items())

    # -- maps ------------------------------------------------------------

    def _map_at(self, node: Node, before: bool) -> dict[LocationSet, frozenset]:
        if node is self.entry:
            return self._initial
        if before:
            return self._in.get(node.uid, {})
        return self._out.get(node.uid, self._in.get(node.uid, {}))

    def merge_at(self, node: Node, evaluated: set[int]) -> None:
        if node is self.entry:
            return
        merged: dict[LocationSet, frozenset] = {}
        for pred in node.preds:
            if pred.uid not in evaluated and pred is not self.entry:
                continue
            pmap = self._out.get(pred.uid)
            if pmap is None:
                pmap = self._initial if pred is self.entry else self._in.get(pred.uid, {})
            for key, vals in pmap.items():
                key = normalize_loc(key)
                vals = normalize_values(vals)
                old = merged.get(key)
                merged[key] = vals if old is None else old | vals
        self._in[node.uid] = merged
        # out starts as a copy of in; assign() then mutates it in place, and
        # finish_node compares against the previous pass's out map
        self._prev_out[node.uid] = self._out.get(node.uid)
        self._out[node.uid] = dict(merged)

    def finish_node(self, node: Node) -> None:
        if node is self.entry:
            return
        if self._out.get(node.uid) != self._prev_out.get(node.uid):
            self.mark_changed()

    def assign(
        self,
        loc: LocationSet,
        values: Iterable[LocationSet],
        node: Node,
        strong: bool,
        size: int = 4,
    ) -> bool:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        if vals:
            _register(loc)
        self.assigned_keys.add(loc)
        out = self._out.setdefault(node.uid, dict(self._in.get(node.uid, {})))
        changed = False
        if strong:
            # a strong update overwrites every location the write covers
            doomed = [
                k
                for k in out
                if k.base is loc.base
                and k != loc
                and loc.overlaps(k, width=max(size, 1), other_width=1)
            ]
            for k in doomed:
                del out[k]
                changed = True
            if out.get(loc) != vals:
                out[loc] = vals
                changed = True
        else:
            old = out.get(loc, EMPTY)
            new = old | vals
            if new != old:
                out[loc] = new
                changed = True
        return changed

    def lookup(self, loc: LocationSet, node: Node, before: bool = True) -> frozenset:
        loc = normalize_loc(loc)
        table = self._map_at(node, before)
        hit = table.get(loc)
        if hit is None:
            # keys may have been recorded before their base was subsumed
            for key, vals in table.items():
                if normalize_loc(key) == loc:
                    hit = vals
                    break
        return normalize_values(hit or EMPTY)

    def lookup_overlapping(
        self, loc: LocationSet, node: Node, width: int = 1, before: bool = True
    ) -> frozenset:
        loc = normalize_loc(loc)
        result: set[LocationSet] = set()
        for key, vals in self._map_at(node, before).items():
            key_n = normalize_loc(key)
            if key_n.base is loc.base and loc.overlaps(key_n, width=width, other_width=1):
                result |= vals
        return normalize_values(result)


# ---------------------------------------------------------------------------
# Sparse representation (the paper's §4.2 scheme)
# ---------------------------------------------------------------------------


class SparseState(PointsToState):
    """Per-node deltas + dominator-walk lookups + dynamic φ insertion.

    Only the points-to values that change at a node are recorded.  Looking
    up the value of a pointer searches back through the dominating flow
    graph nodes for the most recent assignment; meet nodes carry φ-functions
    (inserted at iterated dominance frontiers when a location is assigned)
    that combine the values from each predecessor (§4.2, Figure 9).
    """

    kind = "sparse"

    def __init__(self, entry: Node) -> None:
        super().__init__(entry)
        self._initial: dict[LocationSet, frozenset] = {}
        #: node uid -> {loc: (values, strong)}
        self._defs: dict[int, dict[LocationSet, tuple[frozenset, bool]]] = {}
        #: node uid -> φ locations attached to that (meet) node
        self.phis: dict[int, set[LocationSet]] = {}

    # -- initial ---------------------------------------------------------

    def set_initial(self, loc: LocationSet, values: Iterable[LocationSet]) -> None:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        _register(loc)
        old = self._initial.get(loc)
        new = vals if old is None else old | vals
        if old != new:
            self._initial[loc] = new
            self.mark_changed()

    def get_initial(self, loc: LocationSet) -> Optional[frozenset]:
        return self._initial.get(normalize_loc(loc))

    def initial_items(self) -> list[tuple[LocationSet, frozenset]]:
        return list(self._initial.items())

    def merge_at(self, node: Node, evaluated: set[int]) -> None:
        # sparse states do not materialize merged maps; φ evaluation happens
        # when the meet node itself is evaluated (Figure 9)
        return

    # -- φ bookkeeping -----------------------------------------------------

    def phi_locations(self, node: Node) -> set[LocationSet]:
        return {normalize_loc(l) for l in self.phis.get(node.uid, ())}

    def _insert_phis(self, loc: LocationSet, node: Node) -> None:
        for meet in iterated_frontier([node]):
            locs = self.phis.setdefault(meet.uid, set())
            if loc not in locs:
                locs.add(loc)
                self.mark_changed()

    # -- transfer ---------------------------------------------------------

    def assign(
        self,
        loc: LocationSet,
        values: Iterable[LocationSet],
        node: Node,
        strong: bool,
        size: int = 4,
    ) -> bool:
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        if vals:
            _register(loc)
        self.assigned_keys.add(loc)
        defs = self._defs.setdefault(node.uid, {})
        old = defs.get(loc)
        if not strong and old is not None:
            vals = vals | old[0]
        if not strong:
            # a weak update must preserve what was already visible here
            vals = vals | self._search(loc, node, inclusive=False)
        new_entry = (vals, strong, size if strong else 0)
        if old != new_entry:
            defs[loc] = new_entry
            self.mark_changed()
            self._insert_phis(loc, node)
            return True
        return False

    def assign_phi(
        self, loc: LocationSet, values: Iterable[LocationSet], node: Node
    ) -> bool:
        """Record a φ merge: exact replacement, never a strong-update fence."""
        loc = normalize_loc(loc)
        vals = normalize_values(values)
        if vals:
            _register(loc)
        defs = self._defs.setdefault(node.uid, {})
        old = defs.get(loc)
        new_entry = (vals, False, 0)
        if old != new_entry:
            defs[loc] = new_entry
            self.mark_changed()
            self._insert_phis(loc, node)
            return True
        return False

    # -- lookups -----------------------------------------------------------

    def lookup(self, loc: LocationSet, node: Node, before: bool = True) -> frozenset:
        loc = normalize_loc(loc)
        return self._search(loc, node, inclusive=not before)

    def _defs_at(self, node: Node, loc: LocationSet) -> Optional[tuple[frozenset, bool]]:
        defs = self._defs.get(node.uid)
        if defs is None:
            return None
        hit = defs.get(loc)
        if hit is not None:
            return hit
        # keys may have been recorded pre-subsumption
        for key, entry in defs.items():
            if normalize_loc(key) == loc:
                return entry
        return None

    def _search(
        self,
        loc: LocationSet,
        node: Node,
        inclusive: bool,
        fence: Optional[Node] = None,
    ) -> frozenset:
        """Walk the dominator tree from ``node`` for the latest def of ``loc``.

        ``fence`` (a strong-update node) bounds the search: defs at the
        fence itself are visible, anything strictly before it is not.
        """
        n: Optional[Node] = node
        first = True
        while n is not None:
            if not first or inclusive:
                hit = self._defs_at(n, loc)
                if hit is not None:
                    return normalize_values(hit[0])
            if fence is not None and n is fence:
                return EMPTY
            if n is self.entry:
                return normalize_values(self._initial.get(loc, EMPTY))
            first = False
            n = n.idom
        return EMPTY

    def _find_strong_fence(self, loc: LocationSet, node: Node, width: int) -> Optional[Node]:
        """The most recent dominating strong update covering ``loc`` (§4.3)."""
        n: Optional[Node] = node
        first = True
        while n is not None:
            defs = self._defs.get(n.uid)
            if defs is not None and not first:
                for key, (vals, strong, kill_size) in defs.items():
                    if not strong:
                        continue
                    key_n = normalize_loc(key)
                    if key_n.base is loc.base and key_n.overlaps(
                        loc, width=max(kill_size, width), other_width=1
                    ):
                        return n
            if n is self.entry:
                return None
            first = False
            n = n.idom
        return None

    def lookup_overlapping(
        self, loc: LocationSet, node: Node, width: int = 1, before: bool = True
    ) -> frozenset:
        loc = normalize_loc(loc)
        fence: Optional[Node] = None
        if loc.is_unique:
            fence = self._find_strong_fence(loc, node, width=4)
        result: set[LocationSet] = set()
        seen: set[tuple[int, int]] = set()
        for offset, stride in list(loc.base.pointer_locations):
            if (offset, stride) in seen:
                continue
            seen.add((offset, stride))
            key = LocationSet(loc.base, offset, stride)
            if not loc.overlaps(key, width=width, other_width=1):
                continue
            result |= self._search(key, node, inclusive=not before, fence=fence)
        return frozenset(result)

    def summary(self, exit_node: Node) -> dict[LocationSet, frozenset]:
        out: dict[LocationSet, frozenset] = {}
        for key in sorted(
            self.assigned_keys, key=lambda l: (l.base.uid, l.offset, l.stride)
        ):
            key_n = normalize_loc(key)
            vals = self._search(key_n, exit_node, inclusive=True)
            if vals:
                out[key_n] = vals
        return out
