"""Memory blocks: the paper's low-level model of storage (§3).

Memory is divided into *blocks* of contiguous storage whose positions
relative to one another are undefined.  A block is one of:

* a **local variable** of some procedure (always a unique block — it
  corresponds directly to one real memory location),
* the special **return-value** local of a procedure,
* a **heap block**, grouping all storage allocated at one static allocation
  site (never unique: one name stands for many runtime objects),
* an **extended parameter**, the symbolic name for the locations reached
  through an input pointer at procedure entry — including global variables,
  which the paper treats as extended parameters so PTFs stay reusable across
  contexts that bind different globals (§2.2, §3.2).

Uniqueness drives *strong updates* (§4.1): a destination location set can be
strongly updated only when its base block is unique.  An extended parameter
representing the initial value of a unique pointer is unique *within the
scope of the procedure*, even if the pointer has many possible values in the
calling context — the pointer holds only one of them at any moment.  The
parameter manager (:mod:`repro.analysis.params`) clears
:attr:`ExtendedParameter.known_unique` when that reasoning stops applying.

Every block also carries the registry of location sets within it that may
hold pointers (§3.3): without high-level types, the analysis would otherwise
have to treat every assignment as a potential pointer assignment, which is
safe but slow.  The registry only ever grows; missing entries are an
efficiency concern, not a soundness one, and PTFs are re-extended when their
inputs gain new pointer locations (§5.2).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..frontend.ctypes_model import CType

__all__ = [
    "MemoryBlock",
    "LocalBlock",
    "ReturnBlock",
    "HeapBlock",
    "GlobalBlock",
    "ExtendedParameter",
    "StringBlock",
    "ProcedureBlock",
    "all_pointer_locations",
    "subsumption_epoch",
    "reset_uid_counter",
    "blocks_created",
]

_block_counter = itertools.count()
#: monotone count of blocks ever constructed in this process; survives
#: :func:`reset_uid_counter` so per-run deltas (see
#: ``Analyzer.memory_profile``) stay meaningful across resets
_blocks_created = 0

#: monotone count of parameter subsumptions across the process; sparse
#: states compare it against a snapshot to renormalize their def keys and
#: drop memoized lookups lazily (they cannot observe the assignment to
#: :attr:`ExtendedParameter.subsumed_by` directly)
_subsumption_epoch = 0


def subsumption_epoch() -> int:
    """The current value of the global subsumption counter."""
    return _subsumption_epoch


def blocks_created() -> int:
    """Monotone count of :class:`MemoryBlock` constructions this process.

    A live-memory gauge for the snapshot layer: the difference between two
    readings bounds how many blocks (and with them per-block locset intern
    tables) one analysis allocated.  Unlike the uid counter this is never
    reset, so deltas across :func:`reset_uid_counter` remain valid.
    """
    return _blocks_created


def reset_uid_counter() -> None:
    """Restart block uid numbering from zero (test/benchmark isolation).

    Block uids feed :class:`~repro.memory.locset.LocationSet` hashes, so
    set iteration order — and with it e.g. the order extended parameters
    are created in — depends on how many blocks earlier analyses in the
    same process allocated.  Resetting before each run makes independent
    analyses of the same program reproduce byte-identical output, which
    the cached-vs-uncached equivalence checks rely on.  Never call this
    between analyses that share blocks.
    """
    global _block_counter
    _block_counter = itertools.count()


class MemoryBlock:
    """A contiguous block of memory with undefined position."""

    #: subclasses override; used in display names
    kind = "block"

    #: class-level default so hot paths can test ``base.subsumed_by is None``
    #: without an ``isinstance`` check; only :class:`ExtendedParameter`
    #: instances ever carry a non-None value (§3.2)
    subsumed_by = None

    def __init__(self, name: str, size: Optional[int] = None) -> None:
        global _blocks_created
        _blocks_created += 1
        self.name = name
        self.size = size
        self.uid = next(_block_counter)
        # (offset, stride) positions within this block that may hold pointers
        self.pointer_locations: set[tuple[int, int]] = set()
        # monotone version bump on each new pointer location; PTFs snapshot
        # this to detect that their inputs gained pointer locations (§5.2)
        self.pointer_version = 0
        # hash-cons table for location sets based on this block, filled by
        # :func:`repro.memory.locset.intern_locset`; keyed (offset, stride)
        self._locset_interns: dict = {}

    @property
    def is_unique(self) -> bool:
        """Whether this block names exactly one runtime location."""
        raise NotImplementedError

    def register_pointer_location(self, offset: int, stride: int) -> bool:
        """Record that ``(offset, stride)`` within this block may hold a pointer.

        Returns True when this is a new location (the registry grew).
        """
        key = (offset, stride)
        if key in self.pointer_locations:
            return False
        self.pointer_locations.add(key)
        self.pointer_version += 1
        return True

    def __repr__(self) -> str:
        return f"<{self.kind} {self.name}>"

    def __str__(self) -> str:
        return self.name


class LocalBlock(MemoryBlock):
    """A local variable (or formal parameter) of a procedure."""

    kind = "local"

    def __init__(
        self,
        name: str,
        proc_name: str,
        ctype: Optional["CType"] = None,
        size: Optional[int] = None,
    ) -> None:
        super().__init__(name, size)
        self.proc_name = proc_name
        self.ctype = ctype

    @property
    def is_unique(self) -> bool:
        # "local variables correspond directly to real memory locations so
        # they are always unique blocks" (§4.1)
        return True


class ReturnBlock(MemoryBlock):
    """The special local variable holding a procedure's return value (§3)."""

    kind = "retval"

    def __init__(self, proc_name: str) -> None:
        super().__init__(f"<return:{proc_name}>")
        self.proc_name = proc_name

    @property
    def is_unique(self) -> bool:
        return True


class HeapBlock(MemoryBlock):
    """All storage allocated at one static allocation site (§3).

    The paper limits allocation contexts to static allocation sites, which
    "is sufficient to provide good precision for the programs we have
    analyzed so far"; we follow that choice by default.  With
    ``AnalyzerOptions.heap_context_depth > 0`` the name additionally carries
    up to k call-chain edges (the Choi et al. scheme the paper discusses),
    and summaries re-key the block per calling context when applied.
    """

    kind = "heap"

    def __init__(self, site: str, chain: tuple = ()) -> None:
        display = site + ("<-" + "<-".join(chain) if chain else "")
        super().__init__(f"heap@{display}")
        self.site = site
        self.chain = tuple(chain)

    @property
    def is_unique(self) -> bool:
        # a heap block represents *all* storage allocated in its context, so
        # it is never unique (§4.1)
        return False


class StringBlock(MemoryBlock):
    """Storage for a string literal.

    String literals are shared, read-only arrays of char; like heap blocks
    they may name several runtime objects (a literal in a loop or a merged
    constant pool), so they are not unique.
    """

    kind = "string"

    def __init__(self, text: str, site: str) -> None:
        display = text if len(text) <= 12 else text[:9] + "..."
        super().__init__(f'"{display}"@{site}', size=len(text) + 1)
        self.text = text
        self.site = site

    @property
    def is_unique(self) -> bool:
        return False


class ProcedureBlock(MemoryBlock):
    """The code block of a procedure; `&f` points at one of these.

    Function pointers are ordinary pointer values whose targets are
    procedure blocks; call-through-pointer resolution (§5.1) reads them out
    of the points-to function.
    """

    kind = "proc"

    def __init__(self, proc_name: str) -> None:
        super().__init__(proc_name)
        self.proc_name = proc_name

    @property
    def is_unique(self) -> bool:
        return True


class GlobalBlock(MemoryBlock):
    """The actual storage of a file-scope variable.

    Inside a procedure's name space globals are *represented by* extended
    parameters (§2.2); the global block itself is the canonical identity
    those parameters map to, and the storage the root context (``main``)
    binds them to.
    """

    kind = "global"

    def __init__(
        self,
        name: str,
        ctype: Optional["CType"] = None,
        size: Optional[int] = None,
    ) -> None:
        super().__init__(name, size)
        self.ctype = ctype

    @property
    def is_unique(self) -> bool:
        return True


class ExtendedParameter(MemoryBlock):
    """A symbolic name for locations reached through a procedure's inputs.

    One extended parameter represents *at most one object* (§2.2): when
    initial values alias several existing parameters, the manager subsumes
    them into a fresh parameter (§3.2, Figure 6).

    ``global_block`` is set when the parameter stands for a specific global
    variable; directly referenced globals and globals reached through
    pointers then share one parameter, which models the alias between the
    two access paths (§2.2).
    """

    kind = "xparam"

    def __init__(
        self,
        name: str,
        proc_name: str,
        global_block: Optional[MemoryBlock] = None,
    ) -> None:
        super().__init__(name)
        self.proc_name = proc_name
        self.global_block = global_block
        #: cleared when more than one location points at this parameter and
        #: its actual values are not a single unique location (§4.1)
        self.known_unique = True
        #: set when the parameter is used as a call target; its values then
        #: become part of the PTF's input domain (§5.1)
        self.is_function_pointer = False
        #: parameter that subsumed this one, if any (§3.2, Figure 6);
        #: stored behind the ``subsumed_by`` property so assignments bump
        #: the global subsumption epoch
        self._subsumed_by: Optional["ExtendedParameter"] = None
        #: creation order within the PTF, used when matching PTFs (§5.2)
        self.order: int = -1

    @property
    def subsumed_by(self) -> Optional["ExtendedParameter"]:
        return self._subsumed_by

    @subsumed_by.setter
    def subsumed_by(self, value: Optional["ExtendedParameter"]) -> None:
        self._subsumed_by = value
        if value is not None:
            global _subsumption_epoch
            _subsumption_epoch += 1
            # the subsumed parameter's registered pointer locations carry
            # over to the representative: renormalized def keys must stay
            # visible to registry-driven overlap lookups (§3.3).  The
            # parameter manager migrates these itself, so this is a no-op
            # there; it makes direct assignments equally safe.
            for off_stride in self.pointer_locations:
                value.register_pointer_location(*off_stride)

    @property
    def is_unique(self) -> bool:
        return self.known_unique

    def representative(self) -> "ExtendedParameter":
        """Follow subsumption links to the current representative."""
        param = self
        while param.subsumed_by is not None:
            param = param.subsumed_by
        return param


def all_pointer_locations(blocks: Iterable[MemoryBlock]) -> set[tuple[int, int]]:
    """Union of the registered pointer locations of ``blocks``."""
    out: set[tuple[int, int]] = set()
    for block in blocks:
        out |= block.pointer_locations
    return out
