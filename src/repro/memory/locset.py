"""Location sets: ``(base, offset, stride)`` triples (§3.1, Figure 5).

A location set names the byte positions ``{offset + i * stride | i ∈ Z}``
within one memory block.  Offsets and strides are measured in bytes.

Normalization rules from the paper:

* For array references the stride is the element size; for everything else
  the stride is zero.
* An array nested inside a structure may be indexed out of bounds, so it is
  treated as overlapping the *entire* structure; consequently whenever the
  stride is non-zero the offset is reduced modulo the stride (``offset <
  stride`` always holds for strided sets).
* When the position within a block is entirely unknown (complex pointer
  arithmetic), the stride is set to one: the set covers every byte of the
  block.
* Offsets of stride-zero sets may be negative (§3.2, Figure 7): when a
  pointer to a field is seen before a pointer to its enclosing structure,
  the enclosing structure lies at a negative offset from the extended
  parameter that was created for the field.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterable, Iterator

from .blocks import MemoryBlock

__all__ = [
    "LocationSet",
    "intern_locset",
    "locations_overlap",
    "ranges_overlap_mod",
    "locsets_interned",
]

#: monotone count of canonical location-set instances created by
#: :func:`intern_locset` in this process; the snapshot layer's memory
#: profile reads per-run deltas of it (the per-block intern tables die
#: with their blocks, so a live sum would need a global block registry)
_locsets_interned = 0


def locsets_interned() -> int:
    """Monotone count of interned (canonical) location sets this process."""
    return _locsets_interned


@dataclass(frozen=True)
class LocationSet:
    """A set of byte positions within one block of memory.

    Instances are immutable and hashable; the hash is computed once at
    construction (location sets are the keys of every points-to map and
    every lookup-cache probe, so hashing is on the engine's hottest path)
    and equality takes an identity fast path — :func:`intern_locset`
    hash-conses instances per block so that equal sets usually *are* the
    same object.
    """

    base: MemoryBlock
    offset: int = 0
    stride: int = 0

    def __post_init__(self) -> None:
        if self.stride < 0:
            raise ValueError(f"negative stride {self.stride}")
        if self.stride:
            # keep the invariant offset ∈ [0, stride)
            object.__setattr__(self, "offset", self.offset % self.stride)
        object.__setattr__(
            self, "_hash", hash((self.base.uid, self.offset, self.stride))
        )
        # set to True on the canonical instance by :func:`intern_locset`;
        # lets normalize_loc() skip the intern-table probe entirely
        object.__setattr__(self, "_interned", False)

    # explicit __eq__/__hash__ (dataclass keeps user definitions): identity
    # first, then field comparison with the base compared by identity
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not LocationSet:
            return NotImplemented
        return (
            self.base is other.base
            and self.offset == other.offset
            and self.stride == other.stride
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    # -- derived sets --------------------------------------------------

    def with_offset(self, delta: int) -> "LocationSet":
        """The location set shifted by ``delta`` bytes (field access)."""
        return LocationSet(self.base, self.offset + delta, self.stride)

    def with_stride(self, stride: int) -> "LocationSet":
        """Combine with an additional stride (array indexing).

        Strides compose by gcd: indexing a strided set with a new element
        size yields positions reachable by integer combinations of both
        strides.
        """
        if stride == 0:
            return self
        return LocationSet(self.base, self.offset, gcd(self.stride, stride))

    def blurred(self) -> "LocationSet":
        """The whole-block set used for unknown pointer arithmetic (§3.1)."""
        return LocationSet(self.base, 0, 1)

    # -- predicates -----------------------------------------------------

    @property
    def is_whole_block(self) -> bool:
        return self.stride == 1

    @property
    def is_unique(self) -> bool:
        """Whether this names one location: no stride and a unique base (§4.1)."""
        return self.stride == 0 and self.base.is_unique

    def contains(self, position: int) -> bool:
        """Whether byte ``position`` is a member of this set."""
        if self.stride == 0:
            return position == self.offset
        return position % self.stride == self.offset

    def positions(self, limit: int) -> Iterator[int]:
        """Enumerate the first non-negative positions (for display/tests)."""
        if self.stride == 0:
            yield self.offset
            return
        pos = self.offset
        for _ in range(limit):
            yield pos
            pos += self.stride

    def overlaps(self, other: "LocationSet", width: int = 1, other_width: int = 1) -> bool:
        """Whether an access of ``width`` bytes at any of our positions can
        touch an access of ``other_width`` bytes at any of ``other``'s.

        Values assigned through one location set must be observed through
        every overlapping one (§4.3).
        """
        if self.base is not other.base:
            return False
        return ranges_overlap_mod(
            self.offset, self.stride, width, other.offset, other.stride, other_width
        )

    def __str__(self) -> str:
        if self.stride:
            return f"({self.base.name}, {self.offset}, {self.stride})"
        return f"({self.base.name}, {self.offset})"


def intern_locset(loc: LocationSet) -> LocationSet:
    """Hash-cons ``loc``: one canonical instance per ``(base, offset,
    stride)``, stored on the base block so the table's lifetime matches the
    block's.

    Interned location sets make dict probes and frozenset membership tests
    hit the ``__eq__`` identity fast path, which matters because location
    sets key every points-to map and every sparse lookup-cache entry.
    """
    if loc._interned:  # type: ignore[attr-defined]
        return loc
    cache = loc.base._locset_interns
    key = (loc.offset, loc.stride)
    hit = cache.get(key)
    if hit is None:
        global _locsets_interned
        _locsets_interned += 1
        object.__setattr__(loc, "_interned", True)
        cache[key] = loc
        return loc
    return hit


def ranges_overlap_mod(
    off_a: int, stride_a: int, width_a: int, off_b: int, stride_b: int, width_b: int
) -> bool:
    """Whether ``[off_a + i*stride_a, +width_a)`` intersects
    ``[off_b + j*stride_b, +width_b)`` for some integers ``i, j``.

    With ``g = gcd(stride_a, stride_b)`` the achievable differences
    ``t = (off_b + j*stride_b) - (off_a + i*stride_a)`` are exactly the
    integers congruent to ``off_b - off_a`` modulo ``g`` (all integers when
    ``g == 1``; the single value when ``g == 0``).  The two byte ranges
    intersect iff some achievable ``t`` satisfies ``-width_b < t < width_a``.
    """
    if width_a <= 0 or width_b <= 0:
        return False
    g = gcd(stride_a, stride_b)
    diff = off_b - off_a
    if g == 0:
        return -width_b < diff < width_a
    # number of integers in the open interval (-width_b, width_a)
    span = width_a + width_b - 1
    if span >= g:
        return True
    r = diff % g  # canonical residue in [0, g)
    # candidates congruent to diff: r (covers 0 <= t < width_a) and r - g
    # (covers -width_b < t < 0)
    return r < width_a or r - g > -width_b


def merge_locations(locs: Iterable[LocationSet]) -> list[LocationSet]:
    """Collapse redundant members: drop sets subsumed by a whole-block set."""
    locs = list(locs)
    whole = {ls.base for ls in locs if ls.is_whole_block}
    out: list[LocationSet] = []
    seen: set[tuple[int, int, int]] = set()
    for ls in locs:
        if ls.base in whole and not ls.is_whole_block:
            continue
        key = (ls.base.uid, ls.offset, ls.stride)
        if key in seen:
            continue
        seen.add(key)
        out.append(ls)
    return out


def locations_overlap(a: LocationSet, b: LocationSet, width_a: int = 1, width_b: int = 1) -> bool:
    """Module-level alias of :meth:`LocationSet.overlaps`."""
    return a.overlaps(b, width_a, width_b)
