"""Benchmark trajectory: the Table 2 suite's history, one entry per run.

The snapshot/diff layer (:mod:`repro.diagnostics.snapshot`) compares two
*runs*; this module compares a run against the suite's own *history*.
``record_trajectory`` appends one entry per Table 2 batch to a JSON file
(default ``BENCH_table2.json``) — revision, timestamp, per-program rows,
suite totals, and the optional tracemalloc peak — and reports drift
against the previous entry so a perf or precision regression shows up the
moment the benchmark lands, not when someone remembers to read the table.

File format (a JSON object, additive keys only)::

    {
      "format": "repro-bench-trajectory/1",
      "entries": [
        {"timestamp": "...", "revision": "abc1234", "rows": [...],
         "totals": {"seconds": ..., "avg_ptfs": ..., "dom_walk_steps": ...,
                    "errors": 0, "degraded": 0, "peak_kb": ...,
                    "jobs": 4}},
        ...
      ]
    }

``totals.jobs`` records the worker-process count of the batch that
produced the entry (absent for the classic sequential harness), so the
trajectory can carry sequential and parallel runs side by side without
their wall-clock columns reading as drift by accident.

Writes are atomic (:func:`repro.ioutil.atomic_write_text`: unique
``<path>.tmp.<pid>`` sibling + ``os.replace``), so a crashed run never
truncates the history and two concurrent ``--record`` batches serialize
to last-replace-wins instead of corrupting each other's temporary.

Drift reporting is deliberately looser than the snapshot differ — the
trajectory is a *trend* instrument, comparing totals and per-program
columns, not canonical solutions.  Thresholds mirror the differ's
defaults (10% relative, small absolute floors).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Optional

from ..ioutil import atomic_write_text
from .harness import Table2Row

__all__ = [
    "TRAJECTORY_FORMAT",
    "TRAJECTORY_PATH",
    "build_entry",
    "compare_entries",
    "load_trajectory",
    "record_trajectory",
]

TRAJECTORY_FORMAT = "repro-bench-trajectory/1"
TRAJECTORY_PATH = "BENCH_table2.json"

#: suite-total drift below these floors is noise, never reported
_SECONDS_FLOOR = 0.05
_RELATIVE_THRESHOLD = 0.10


def _revision() -> str:
    """The current git revision (short), or ``unknown`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def build_entry(
    rows: list[Table2Row],
    peak_kb: Optional[float] = None,
    revision: Optional[str] = None,
    jobs: Optional[int] = None,
    batch_seconds: Optional[float] = None,
) -> dict:
    """One trajectory entry for a finished Table 2 batch.

    ``jobs``/``batch_seconds`` record the parallel harness's worker
    count and whole-batch wall clock (``totals.seconds`` stays the sum
    of in-worker analysis times, comparable across jobs values)."""
    good = [r for r in rows if not r.error]
    totals = {
        "seconds": round(sum(r.seconds for r in good), 6),
        "avg_ptfs": (
            round(sum(r.avg_ptfs for r in good) / len(good), 4) if good else None
        ),
        "dom_walk_steps": sum(r.dom_walk_steps for r in good),
        "errors": len(rows) - len(good),
        "degraded": sum(1 for r in rows if r.degraded),
    }
    if peak_kb is not None:
        totals["peak_kb"] = round(peak_kb, 1)
    if jobs is not None:
        totals["jobs"] = jobs
    if batch_seconds is not None:
        totals["batch_seconds"] = round(batch_seconds, 6)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "revision": revision if revision is not None else _revision(),
        "rows": [r.as_dict() for r in rows],
        "totals": totals,
    }


def compare_entries(prev: dict, cur: dict) -> list[str]:
    """Human-readable drift lines between two trajectory entries.

    Covers the three things a benchmark trend can move: wall time
    (suite + per program), precision proxy (suite avg PTFs/proc and
    per-program avg PTFs), and outcome class (new errors / degradations).
    Empty list = steady state.
    """
    lines: list[str] = []
    p_tot, c_tot = prev.get("totals", {}), cur.get("totals", {})

    p_sec, c_sec = p_tot.get("seconds"), c_tot.get("seconds")
    if p_sec and c_sec is not None:
        delta = c_sec - p_sec
        if abs(delta) >= _SECONDS_FLOOR and abs(delta) / p_sec >= _RELATIVE_THRESHOLD:
            verb = "slower" if delta > 0 else "faster"
            lines.append(
                f"suite {verb}: {p_sec:.3f}s -> {c_sec:.3f}s "
                f"({delta / p_sec:+.1%}) since {prev.get('revision', '?')}"
            )

    p_avg, c_avg = p_tot.get("avg_ptfs"), c_tot.get("avg_ptfs")
    if p_avg is not None and c_avg is not None and p_avg != c_avg:
        lines.append(f"suite avg PTFs/proc: {p_avg} -> {c_avg}")

    p_peak, c_peak = p_tot.get("peak_kb"), c_tot.get("peak_kb")
    if p_peak and c_peak is not None:
        delta = c_peak - p_peak
        if delta >= 64.0 and delta / p_peak >= _RELATIVE_THRESHOLD:
            lines.append(
                f"heap peak: {p_peak:.0f} KiB -> {c_peak:.0f} KiB "
                f"(+{delta / p_peak:.1%})"
            )

    p_rows = {r["name"]: r for r in prev.get("rows", [])}
    c_rows = {r["name"]: r for r in cur.get("rows", [])}
    for name in sorted(set(p_rows) & set(c_rows)):
        p_row, c_row = p_rows[name], c_rows[name]
        p_status = p_row.get("status", "error" if p_row.get("error") else "ok")
        c_status = c_row.get("status", "error" if c_row.get("error") else "ok")
        if p_status != c_status:
            lines.append(f"{name}: status {p_status} -> {c_status}")
        if p_status == "error" or c_status == "error":
            continue
        if p_row.get("avg_ptfs") != c_row.get("avg_ptfs"):
            lines.append(
                f"{name}: avg PTFs {p_row.get('avg_ptfs')} -> "
                f"{c_row.get('avg_ptfs')}"
            )
        ps, cs = p_row.get("seconds", 0.0), c_row.get("seconds", 0.0)
        if ps and abs(cs - ps) >= _SECONDS_FLOOR and abs(cs - ps) / ps >= _RELATIVE_THRESHOLD:
            verb = "slower" if cs > ps else "faster"
            lines.append(f"{name}: {verb} {ps:.3f}s -> {cs:.3f}s")
    only_prev = sorted(set(p_rows) - set(c_rows))
    only_cur = sorted(set(c_rows) - set(p_rows))
    if only_prev:
        lines.append(f"programs dropped from suite: {', '.join(only_prev)}")
    if only_cur:
        lines.append(f"programs added to suite: {', '.join(only_cur)}")
    return lines


def load_trajectory(path: str = TRAJECTORY_PATH) -> dict:
    """Read the trajectory file; an absent or corrupt file yields a fresh
    empty trajectory (the recorder must never refuse to record because a
    previous run crashed mid-write — that is what the history is *for*)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {"format": TRAJECTORY_FORMAT, "entries": []}
    if (
        not isinstance(data, dict)
        or data.get("format") != TRAJECTORY_FORMAT
        or not isinstance(data.get("entries"), list)
    ):
        return {"format": TRAJECTORY_FORMAT, "entries": []}
    return data


def record_trajectory(
    rows: list[Table2Row],
    path: str = TRAJECTORY_PATH,
    peak_kb: Optional[float] = None,
    revision: Optional[str] = None,
    jobs: Optional[int] = None,
    batch_seconds: Optional[float] = None,
) -> tuple[dict, list[str]]:
    """Append one entry for ``rows`` to the trajectory at ``path``.

    Returns ``(entry, drift_lines)`` where ``drift_lines`` compares the
    new entry against the previous last one (empty on the first run or
    steady state).  The write is atomic with a per-process unique
    temporary (:func:`repro.ioutil.atomic_write_text`).
    """
    trajectory = load_trajectory(path)
    entry = build_entry(
        rows,
        peak_kb=peak_kb,
        revision=revision,
        jobs=jobs,
        batch_seconds=batch_seconds,
    )
    drift: list[str] = []
    if trajectory["entries"]:
        drift = compare_entries(trajectory["entries"][-1], entry)
    trajectory["entries"].append(entry)
    payload = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    atomic_write_text(path, payload)
    return entry, drift
