"""Benchmark trajectory: the Table 2 suite's history, one entry per run.

The snapshot/diff layer (:mod:`repro.diagnostics.snapshot`) compares two
*runs*; this module compares a run against the suite's own *history*.
``record_trajectory`` appends one entry per Table 2 batch to a JSON file
(default ``BENCH_table2.json``) — revision, timestamp, per-program rows,
suite totals, and the optional tracemalloc peak — and reports drift
against the previous entry so a perf or precision regression shows up the
moment the benchmark lands, not when someone remembers to read the table.

File format (a JSON object, additive keys only)::

    {
      "format": "repro-bench-trajectory/1",
      "entries": [
        {"timestamp": "...", "revision": "abc1234", "rows": [...],
         "totals": {"seconds": ..., "avg_ptfs": ..., "dom_walk_steps": ...,
                    "errors": 0, "degraded": 0, "peak_kb": ...,
                    "jobs": 4}},
        ...
      ]
    }

``totals.jobs`` records the worker-process count of the batch that
produced the entry (absent for the classic sequential harness), so the
trajectory can carry sequential and parallel runs side by side without
their wall-clock columns reading as drift by accident.

Writes are atomic (:func:`repro.ioutil.atomic_write_text`: unique
``<path>.tmp.<pid>`` sibling + ``os.replace``), so a crashed run never
truncates the history and two concurrent ``--record`` batches serialize
to last-replace-wins instead of corrupting each other's temporary.

Drift reporting is deliberately looser than the snapshot differ — the
trajectory is a *trend* instrument, comparing totals and per-program
columns, not canonical solutions.  Thresholds mirror the differ's
defaults (10% relative, small absolute floors).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Optional

from ..ioutil import atomic_write_text
from .harness import Table2Row

__all__ = [
    "DEMAND_TRAJECTORY_FORMAT",
    "DEMAND_TRAJECTORY_PATH",
    "SERVE_TRAJECTORY_FORMAT",
    "SERVE_TRAJECTORY_PATH",
    "TRAJECTORY_FORMAT",
    "TRAJECTORY_PATH",
    "build_demand_entry",
    "build_entry",
    "build_serve_entry",
    "compare_demand_entries",
    "compare_entries",
    "compare_serve_entries",
    "load_demand_trajectory",
    "load_serve_trajectory",
    "load_trajectory",
    "parse_serve_fail_on",
    "record_demand_trajectory",
    "record_serve_trajectory",
    "record_trajectory",
    "serve_gate",
]

TRAJECTORY_FORMAT = "repro-bench-trajectory/1"
TRAJECTORY_PATH = "BENCH_table2.json"

SERVE_TRAJECTORY_FORMAT = "repro-serve-trajectory/1"
SERVE_TRAJECTORY_PATH = "BENCH_serve.json"

DEMAND_TRAJECTORY_FORMAT = "repro-demand-trajectory/1"
DEMAND_TRAJECTORY_PATH = "BENCH_demand.json"

#: suite-total drift below these floors is noise, never reported
_SECONDS_FLOOR = 0.05
_RELATIVE_THRESHOLD = 0.10


def _revision() -> str:
    """The current git revision (short), or ``unknown`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def build_entry(
    rows: list[Table2Row],
    peak_kb: Optional[float] = None,
    revision: Optional[str] = None,
    jobs: Optional[int] = None,
    batch_seconds: Optional[float] = None,
    utilization: Optional[float] = None,
    critical_path_seconds: Optional[float] = None,
) -> dict:
    """One trajectory entry for a finished Table 2 batch.

    ``jobs``/``batch_seconds`` record the parallel harness's worker
    count and whole-batch wall clock (``totals.seconds`` stays the sum
    of in-worker analysis times, comparable across jobs values);
    ``utilization``/``critical_path_seconds`` are the parallel
    observatory's batch columns (``--profile-parallel``): the fraction
    of pool capacity spent inside workers, and the slowest task — the
    wall-clock floor no worker count compresses below."""
    good = [r for r in rows if not r.error]
    totals = {
        "seconds": round(sum(r.seconds for r in good), 6),
        "avg_ptfs": (
            round(sum(r.avg_ptfs for r in good) / len(good), 4) if good else None
        ),
        "dom_walk_steps": sum(r.dom_walk_steps for r in good),
        "errors": len(rows) - len(good),
        "degraded": sum(1 for r in rows if r.degraded),
    }
    if peak_kb is not None:
        totals["peak_kb"] = round(peak_kb, 1)
    if jobs is not None:
        totals["jobs"] = jobs
    if batch_seconds is not None:
        totals["batch_seconds"] = round(batch_seconds, 6)
    if utilization is not None:
        totals["utilization"] = round(utilization, 4)
    if critical_path_seconds is not None:
        totals["critical_path_seconds"] = round(critical_path_seconds, 6)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "revision": revision if revision is not None else _revision(),
        "rows": [r.as_dict() for r in rows],
        "totals": totals,
    }


def compare_entries(prev: dict, cur: dict) -> list[str]:
    """Human-readable drift lines between two trajectory entries.

    Covers the three things a benchmark trend can move: wall time
    (suite + per program), precision proxy (suite avg PTFs/proc and
    per-program avg PTFs), and outcome class (new errors / degradations).
    Empty list = steady state.
    """
    lines: list[str] = []
    p_tot, c_tot = prev.get("totals", {}), cur.get("totals", {})

    p_sec, c_sec = p_tot.get("seconds"), c_tot.get("seconds")
    if p_sec and c_sec is not None:
        delta = c_sec - p_sec
        if abs(delta) >= _SECONDS_FLOOR and abs(delta) / p_sec >= _RELATIVE_THRESHOLD:
            verb = "slower" if delta > 0 else "faster"
            lines.append(
                f"suite {verb}: {p_sec:.3f}s -> {c_sec:.3f}s "
                f"({delta / p_sec:+.1%}) since {prev.get('revision', '?')}"
            )

    p_avg, c_avg = p_tot.get("avg_ptfs"), c_tot.get("avg_ptfs")
    if p_avg is not None and c_avg is not None and p_avg != c_avg:
        lines.append(f"suite avg PTFs/proc: {p_avg} -> {c_avg}")

    p_peak, c_peak = p_tot.get("peak_kb"), c_tot.get("peak_kb")
    if p_peak and c_peak is not None:
        delta = c_peak - p_peak
        if delta >= 64.0 and delta / p_peak >= _RELATIVE_THRESHOLD:
            lines.append(
                f"heap peak: {p_peak:.0f} KiB -> {c_peak:.0f} KiB "
                f"(+{delta / p_peak:.1%})"
            )

    p_rows = {r["name"]: r for r in prev.get("rows", [])}
    c_rows = {r["name"]: r for r in cur.get("rows", [])}
    for name in sorted(set(p_rows) & set(c_rows)):
        p_row, c_row = p_rows[name], c_rows[name]
        p_status = p_row.get("status", "error" if p_row.get("error") else "ok")
        c_status = c_row.get("status", "error" if c_row.get("error") else "ok")
        if p_status != c_status:
            lines.append(f"{name}: status {p_status} -> {c_status}")
        if p_status == "error" or c_status == "error":
            continue
        if p_row.get("avg_ptfs") != c_row.get("avg_ptfs"):
            lines.append(
                f"{name}: avg PTFs {p_row.get('avg_ptfs')} -> "
                f"{c_row.get('avg_ptfs')}"
            )
        ps, cs = p_row.get("seconds", 0.0), c_row.get("seconds", 0.0)
        if ps and abs(cs - ps) >= _SECONDS_FLOOR and abs(cs - ps) / ps >= _RELATIVE_THRESHOLD:
            verb = "slower" if cs > ps else "faster"
            lines.append(f"{name}: {verb} {ps:.3f}s -> {cs:.3f}s")
    only_prev = sorted(set(p_rows) - set(c_rows))
    only_cur = sorted(set(c_rows) - set(p_rows))
    if only_prev:
        lines.append(f"programs dropped from suite: {', '.join(only_prev)}")
    if only_cur:
        lines.append(f"programs added to suite: {', '.join(only_cur)}")
    return lines


def load_trajectory(path: str = TRAJECTORY_PATH) -> dict:
    """Read the trajectory file; an absent or corrupt file yields a fresh
    empty trajectory (the recorder must never refuse to record because a
    previous run crashed mid-write — that is what the history is *for*)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {"format": TRAJECTORY_FORMAT, "entries": []}
    if (
        not isinstance(data, dict)
        or data.get("format") != TRAJECTORY_FORMAT
        or not isinstance(data.get("entries"), list)
    ):
        return {"format": TRAJECTORY_FORMAT, "entries": []}
    return data


def record_trajectory(
    rows: list[Table2Row],
    path: str = TRAJECTORY_PATH,
    peak_kb: Optional[float] = None,
    revision: Optional[str] = None,
    jobs: Optional[int] = None,
    batch_seconds: Optional[float] = None,
    utilization: Optional[float] = None,
    critical_path_seconds: Optional[float] = None,
) -> tuple[dict, list[str]]:
    """Append one entry for ``rows`` to the trajectory at ``path``.

    Returns ``(entry, drift_lines)`` where ``drift_lines`` compares the
    new entry against the previous last one (empty on the first run or
    steady state).  The write is atomic with a per-process unique
    temporary (:func:`repro.ioutil.atomic_write_text`).
    """
    trajectory = load_trajectory(path)
    entry = build_entry(
        rows,
        peak_kb=peak_kb,
        revision=revision,
        jobs=jobs,
        batch_seconds=batch_seconds,
        utilization=utilization,
        critical_path_seconds=critical_path_seconds,
    )
    drift: list[str] = []
    if trajectory["entries"]:
        drift = compare_entries(trajectory["entries"][-1], entry)
    trajectory["entries"].append(entry)
    payload = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    atomic_write_text(path, payload)
    return entry, drift


# -- serve trajectory (BENCH_serve.json; docs/OBSERVABILITY.md §5) --------
#
# The Table 2 trajectory trends the *analyzer*; the serve trajectory
# trends the *daemon*: one entry per ``repro loadtest --record``, carrying
# the load report (qps, latency quantiles, cache hit rate, op mix) plus
# the run's shape (clients, requests).  Same discipline: append-only,
# atomic writes, drift lines against the previous entry — and, new here,
# an explicit CI gate (``--fail-on 'p99:100%,qps:30%'``) that turns a
# latency or throughput regression into a nonzero exit instead of a line
# someone has to notice.

#: serve drift below these floors is noise, never reported
_P99_FLOOR_MS = 0.5
_QPS_FLOOR = 10.0


def build_serve_entry(report: dict, revision: Optional[str] = None) -> dict:
    """One serve-trajectory entry for a finished load-test report
    (the ``LoadReport.as_dict()`` payload, recorded verbatim)."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "revision": revision if revision is not None else _revision(),
        "report": report,
    }


def load_serve_trajectory(path: str = SERVE_TRAJECTORY_PATH) -> dict:
    """Read the serve trajectory; absent/corrupt → fresh empty history
    (same never-refuse-to-record contract as :func:`load_trajectory`)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {"format": SERVE_TRAJECTORY_FORMAT, "entries": []}
    if (
        not isinstance(data, dict)
        or data.get("format") != SERVE_TRAJECTORY_FORMAT
        or not isinstance(data.get("entries"), list)
    ):
        return {"format": SERVE_TRAJECTORY_FORMAT, "entries": []}
    return data


def _comparable(prev: dict, cur: dict) -> bool:
    """Entries with different run shapes (clients, per-run request count,
    op mix) measure different workloads; their deltas are not drift."""
    for key in ("clients", "requests"):
        if prev.get(key) != cur.get(key):
            return False
    return prev.get("ops") == cur.get("ops")


def compare_serve_entries(prev: dict, cur: dict) -> list[str]:
    """Human-readable drift lines between two serve entries.

    Covers throughput (qps), tail latency (p50/p99), cache behavior
    (hit rate), and outcome class (new errors).  Entries whose run
    shapes differ produce a single shape line instead of bogus deltas.
    """
    lines: list[str] = []
    p, c = prev.get("report", {}), cur.get("report", {})
    since = prev.get("revision", "?")
    if not _comparable(p, c):
        lines.append(
            f"run shape changed since {since}: "
            f"{p.get('clients')}x{p.get('requests')} -> "
            f"{c.get('clients')}x{c.get('requests')} "
            "(latency/qps deltas not comparable)"
        )
        return lines

    p_qps, c_qps = p.get("qps"), c.get("qps")
    if p_qps and c_qps is not None:
        delta = c_qps - p_qps
        if abs(delta) >= _QPS_FLOOR and abs(delta) / p_qps >= _RELATIVE_THRESHOLD:
            verb = "up" if delta > 0 else "down"
            lines.append(
                f"throughput {verb}: {p_qps:.0f} -> {c_qps:.0f} qps "
                f"({delta / p_qps:+.1%}) since {since}"
            )

    for label in ("p50_ms", "p99_ms"):
        p_ms = (p.get("latency") or {}).get(label)
        c_ms = (c.get("latency") or {}).get(label)
        if p_ms and c_ms is not None:
            delta = c_ms - p_ms
            if abs(delta) >= _P99_FLOOR_MS and abs(delta) / p_ms >= _RELATIVE_THRESHOLD:
                verb = "slower" if delta > 0 else "faster"
                lines.append(
                    f"{label[:-3]} {verb}: {p_ms:.2f}ms -> {c_ms:.2f}ms "
                    f"({delta / p_ms:+.1%}) since {since}"
                )

    p_rate, c_rate = p.get("cache_hit_rate"), c.get("cache_hit_rate")
    if p_rate is not None and c_rate is not None and abs(c_rate - p_rate) >= 0.05:
        lines.append(f"cache hit rate: {p_rate} -> {c_rate}")

    p_err, c_err = p.get("errors", 0), c.get("errors", 0)
    if c_err and c_err != p_err:
        lines.append(f"errors: {p_err} -> {c_err}")
    return lines


def parse_serve_fail_on(spec: Optional[str]) -> Optional[dict[str, float]]:
    """Parse a ``--fail-on`` gate spec like ``p99:100%,qps:30%``.

    ``p99:100%`` = fail when p99 latency worsens by more than 100%
    relative to the previous comparable entry; ``qps:30%`` = fail when
    throughput drops by more than 30%.  Returns ``None`` for ``None``.
    """
    if spec is None:
        return None
    gates: dict[str, float] = {}
    for part in spec.split(","):
        metric, _, pct = part.partition(":")
        metric = metric.strip().lower()
        if metric not in ("p99", "qps"):
            raise ValueError(
                f"unknown gate metric {metric!r} in {spec!r} (use p99, qps)"
            )
        pct = pct.strip().rstrip("%")
        try:
            value = float(pct)
        except ValueError:
            raise ValueError(f"bad gate threshold in {part!r}")
        if value <= 0:
            raise ValueError(f"gate threshold must be positive: {part!r}")
        gates[metric] = value / 100.0
    if not gates:
        raise ValueError(f"empty gate spec: {spec!r}")
    return gates


def serve_gate(
    prev: dict, cur: dict, fail_on: dict[str, float]
) -> list[str]:
    """Gate failures (empty = pass) for ``cur`` against ``prev``.

    The gate only fires between comparable runs (same shape); a shape
    change resets the baseline rather than failing spuriously.
    """
    failures: list[str] = []
    p, c = prev.get("report", {}), cur.get("report", {})
    if not _comparable(p, c):
        return failures
    p99_pct = fail_on.get("p99")
    if p99_pct is not None:
        p_ms = (p.get("latency") or {}).get("p99_ms")
        c_ms = (c.get("latency") or {}).get("p99_ms")
        if p_ms and c_ms is not None:
            worsening = (c_ms - p_ms) / p_ms
            if c_ms - p_ms >= _P99_FLOOR_MS and worsening > p99_pct:
                failures.append(
                    f"p99 latency regressed {worsening:+.1%} "
                    f"({p_ms:.2f}ms -> {c_ms:.2f}ms), gate is {p99_pct:.0%}"
                )
    qps_pct = fail_on.get("qps")
    if qps_pct is not None:
        p_qps, c_qps = p.get("qps"), c.get("qps")
        if p_qps and c_qps is not None:
            drop = (p_qps - c_qps) / p_qps
            if p_qps - c_qps >= _QPS_FLOOR and drop > qps_pct:
                failures.append(
                    f"throughput dropped {drop:.1%} "
                    f"({p_qps:.0f} -> {c_qps:.0f} qps), gate is {qps_pct:.0%}"
                )
    return failures


def record_serve_trajectory(
    report: dict,
    path: str = SERVE_TRAJECTORY_PATH,
    fail_on: Optional[dict[str, float]] = None,
    revision: Optional[str] = None,
) -> tuple[dict, list[str], list[str]]:
    """Append one serve entry for ``report`` to the trajectory at
    ``path``; returns ``(entry, drift_lines, gate_failures)``.

    The entry is recorded even when the gate fails — the history must
    show the regression the gate caught.  Atomic write, same as the
    Table 2 recorder.
    """
    trajectory = load_serve_trajectory(path)
    entry = build_serve_entry(report, revision=revision)
    drift: list[str] = []
    failures: list[str] = []
    if trajectory["entries"]:
        prev = trajectory["entries"][-1]
        drift = compare_serve_entries(prev, entry)
        if fail_on:
            failures = serve_gate(prev, entry, fail_on)
    trajectory["entries"].append(entry)
    payload = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    atomic_write_text(path, payload)
    return entry, drift, failures


# -- demand trajectory (BENCH_demand.json; docs/QUERY.md §6) --------------
#
# The serve trajectory trends the daemon; the demand trajectory trends the
# *demand tier*: one entry per ``benchmarks/bench_demand.py --record`` run,
# carrying per-benchmark rows (slice size, demand analysis seconds, warm
# query latency, speedup vs a full re-index) so a regression in the slice
# construction or the memoized PTF path shows up as a drift line the run
# it lands.  Same discipline as the other two sections: append-only
# history, atomic writes, never refuse to record.

#: demand drift below these floors is noise, never reported
_DEMAND_SECONDS_FLOOR = 0.02


def build_demand_entry(rows: list[dict], revision: Optional[str] = None) -> dict:
    """One demand-trajectory entry for a finished bench_demand sweep.

    ``rows`` are the per-benchmark dicts the harness produced (name,
    procedures, slice_procs, demand_seconds, warm_query_ms, speedup,
    equal, error) — recorded verbatim, with suite totals alongside."""
    good = [r for r in rows if not r.get("error")]
    totals = {
        "demand_seconds": round(
            sum(r.get("demand_seconds") or 0.0 for r in good), 6
        ),
        "slice_procs": sum(r.get("slice_procs") or 0 for r in good),
        "errors": len(rows) - len(good),
        "mismatches": sum(1 for r in good if r.get("equal") is False),
    }
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "revision": revision if revision is not None else _revision(),
        "rows": rows,
        "totals": totals,
    }


def load_demand_trajectory(path: str = DEMAND_TRAJECTORY_PATH) -> dict:
    """Read the demand trajectory; absent/corrupt → fresh empty history
    (same never-refuse-to-record contract as :func:`load_trajectory`)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {"format": DEMAND_TRAJECTORY_FORMAT, "entries": []}
    if (
        not isinstance(data, dict)
        or data.get("format") != DEMAND_TRAJECTORY_FORMAT
        or not isinstance(data.get("entries"), list)
    ):
        return {"format": DEMAND_TRAJECTORY_FORMAT, "entries": []}
    return data


def compare_demand_entries(prev: dict, cur: dict) -> list[str]:
    """Human-readable drift lines between two demand entries.

    Covers total demand analysis time, total slice size (a slice that
    grows means the demand tier is analyzing more than it used to for
    the same queries), new errors, and new equality mismatches."""
    lines: list[str] = []
    p, c = prev.get("totals", {}), cur.get("totals", {})
    since = prev.get("revision", "?")

    p_sec, c_sec = p.get("demand_seconds"), c.get("demand_seconds")
    if p_sec and c_sec is not None:
        delta = c_sec - p_sec
        if (
            abs(delta) >= _DEMAND_SECONDS_FLOOR
            and abs(delta) / p_sec >= _RELATIVE_THRESHOLD
        ):
            verb = "slower" if delta > 0 else "faster"
            lines.append(
                f"demand analysis {verb}: {p_sec:.3f}s -> {c_sec:.3f}s "
                f"({delta / p_sec:+.1%}) since {since}"
            )

    p_procs, c_procs = p.get("slice_procs"), c.get("slice_procs")
    if p_procs and c_procs is not None and c_procs != p_procs:
        delta = c_procs - p_procs
        if abs(delta) / p_procs >= _RELATIVE_THRESHOLD:
            verb = "grew" if delta > 0 else "shrank"
            lines.append(
                f"demand slices {verb}: {p_procs} -> {c_procs} procs "
                f"({delta / p_procs:+.1%}) since {since}"
            )

    p_err, c_err = p.get("errors", 0), c.get("errors", 0)
    if c_err and c_err != p_err:
        lines.append(f"errors: {p_err} -> {c_err}")

    c_mis = c.get("mismatches", 0)
    if c_mis:
        lines.append(
            f"EQUALITY MISMATCHES: {c_mis} benchmark(s) where demand "
            "answers diverged from the exhaustive store"
        )
    return lines


def record_demand_trajectory(
    rows: list[dict],
    path: str = DEMAND_TRAJECTORY_PATH,
    revision: Optional[str] = None,
) -> tuple[dict, list[str]]:
    """Append one demand entry for ``rows`` to the trajectory at
    ``path``; returns ``(entry, drift_lines)``.  Atomic write, same as
    the Table 2 recorder."""
    trajectory = load_demand_trajectory(path)
    entry = build_demand_entry(rows, revision=revision)
    drift: list[str] = []
    if trajectory["entries"]:
        drift = compare_demand_entries(trajectory["entries"][-1], entry)
    trajectory["entries"].append(entry)
    payload = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    atomic_write_text(path, payload)
    return entry, drift
