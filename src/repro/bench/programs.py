"""Registry of the Table 2 benchmark suite.

One synthetic C program per row of the paper's Table 2, engineered to match
the original's *shape* (size class, procedure-count class, recursion and
pointer-usage style) as documented in DESIGN.md.  Each entry carries the
paper's reported numbers so the harness can print paper-vs-measured.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = ["BenchmarkProgram", "PROGRAMS", "program_dir", "source_path", "load_source"]


@dataclass(frozen=True)
class BenchmarkProgram:
    """One Table 2 row."""

    name: str
    #: the paper's reported values (source lines, procedures, seconds, PTFs)
    paper_lines: int
    paper_procedures: int
    paper_seconds: float
    paper_avg_ptfs: float
    #: one-line characterization driving the synthetic program's design
    character: str
    #: workload loop-invocation counts for the Table 3 model, when the
    #: program participates in the parallelization experiment
    table3_invocations: Optional[int] = None


PROGRAMS: list[BenchmarkProgram] = [
    BenchmarkProgram(
        "allroots", 188, 6, 0.18, 1.00,
        "polynomial root finding; scalar FP + output pointers",
    ),
    BenchmarkProgram(
        "alvinn", 272, 8, 0.22, 1.00,
        "backprop network; dense FP loops over weight matrices",
        table3_invocations=60,
    ),
    BenchmarkProgram(
        "grep", 430, 9, 0.65, 1.00,
        "regex matching; mutual recursion over char pointers",
    ),
    BenchmarkProgram(
        "diff", 668, 23, 2.13, 1.30,
        "LCS dynamic program; line table + heap edit list",
    ),
    BenchmarkProgram(
        "lex315", 776, 16, 0.93, 1.00,
        "lexer generator; NFA of heap transition lists",
    ),
    BenchmarkProgram(
        "compress", 1503, 14, 1.45, 1.00,
        "LZW codec; hash table of codes, table rebuild",
    ),
    BenchmarkProgram(
        "loader", 1539, 29, 1.70, 1.03,
        "object loader; symbol hash chains + relocation lists",
    ),
    BenchmarkProgram(
        "football", 2354, 57, 6.70, 1.02,
        "sports statistics; struct tables, qsort comparators",
    ),
    BenchmarkProgram(
        "compiler", 2360, 37, 7.57, 1.14,
        "recursive-descent compiler; the invocation-graph blow-up case",
    ),
    BenchmarkProgram(
        "assembler", 3361, 51, 5.82, 1.08,
        "two-pass assembler; opcode/symbol tables, fixup lists",
    ),
    BenchmarkProgram(
        "eqntott", 3454, 60, 9.88, 1.33,
        "boolean equations to truth tables; heap expression trees",
    ),
    BenchmarkProgram(
        "ear", 4284, 68, 2.99, 1.13,
        "auditory model; many small FP filter loops",
        table3_invocations=400,
    ),
    BenchmarkProgram(
        "simulator", 4663, 98, 15.54, 1.39,
        "CPU simulator; function-pointer dispatch, page table",
    ),
]


def program_dir() -> str:
    """The directory holding the C sources (benchmarks/programs)."""
    here = os.path.dirname(os.path.abspath(__file__))
    # installed layout: src/repro/bench -> repo root two levels up
    for candidate in (
        os.path.join(here, "..", "..", "..", "benchmarks", "programs"),
        os.path.join(os.getcwd(), "benchmarks", "programs"),
    ):
        path = os.path.normpath(candidate)
        if os.path.isdir(path):
            return path
    raise FileNotFoundError("benchmarks/programs directory not found")


def source_path(name: str) -> str:
    return os.path.join(program_dir(), f"{name}.c")


def load_source(name: str) -> str:
    with open(source_path(name), "r") as f:
        return f.read()


def by_name(name: str) -> BenchmarkProgram:
    for p in PROGRAMS:
        if p.name == name:
            return p
    raise KeyError(name)
