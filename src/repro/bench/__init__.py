"""Benchmark suite registry and measurement harness (Tables 2 & 3)."""

from .harness import (
    Table2Row,
    analyze_benchmark,
    invocation_rows,
    table2_rows,
    table2_text,
    table3_rows,
    table3_text,
)
from .programs import PROGRAMS, BenchmarkProgram, load_source, source_path

__all__ = [
    "PROGRAMS",
    "BenchmarkProgram",
    "load_source",
    "source_path",
    "Table2Row",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "invocation_rows",
    "analyze_benchmark",
]
