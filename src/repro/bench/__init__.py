"""Benchmark suite registry and measurement harness (Tables 2 & 3)."""

from .harness import (
    Table2Row,
    analyze_benchmark,
    invocation_rows,
    table2_rows,
    table2_text,
    table3_rows,
    table3_text,
)
from .programs import PROGRAMS, BenchmarkProgram, load_source, source_path
from .trajectory import (
    TRAJECTORY_PATH,
    build_entry,
    compare_entries,
    load_trajectory,
    record_trajectory,
)

__all__ = [
    "PROGRAMS",
    "BenchmarkProgram",
    "load_source",
    "source_path",
    "Table2Row",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "invocation_rows",
    "analyze_benchmark",
    "TRAJECTORY_PATH",
    "build_entry",
    "compare_entries",
    "load_trajectory",
    "record_trajectory",
]
