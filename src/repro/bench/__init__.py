"""Benchmark suite registry and measurement harness (Tables 2 & 3)."""

from .harness import (
    Table2Row,
    analyze_benchmark,
    invocation_rows,
    table2_rows,
    table2_text,
    table3_rows,
    table3_text,
)
from .loadgen import DEFAULT_MIX, LoadReport, build_workload, parse_mix, run_loadtest
from .programs import PROGRAMS, BenchmarkProgram, load_source, source_path
from .trajectory import (
    SERVE_TRAJECTORY_PATH,
    TRAJECTORY_PATH,
    build_entry,
    build_serve_entry,
    compare_entries,
    compare_serve_entries,
    load_serve_trajectory,
    load_trajectory,
    parse_serve_fail_on,
    record_serve_trajectory,
    record_trajectory,
    serve_gate,
)

__all__ = [
    "PROGRAMS",
    "BenchmarkProgram",
    "load_source",
    "source_path",
    "Table2Row",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "invocation_rows",
    "analyze_benchmark",
    "TRAJECTORY_PATH",
    "build_entry",
    "compare_entries",
    "load_trajectory",
    "record_trajectory",
    "SERVE_TRAJECTORY_PATH",
    "build_serve_entry",
    "compare_serve_entries",
    "load_serve_trajectory",
    "parse_serve_fail_on",
    "record_serve_trajectory",
    "serve_gate",
    "DEFAULT_MIX",
    "LoadReport",
    "build_workload",
    "parse_mix",
    "run_loadtest",
]
