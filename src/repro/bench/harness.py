"""Measurement harness: regenerate the paper's tables.

``table2_rows()`` runs the full Wilson-Lam analysis over the benchmark
suite and reports the paper's columns (lines, procedures, analysis seconds,
average PTFs per procedure) next to the paper's own numbers.

``table3_rows()`` runs the parallelizer + machine model over the two
numeric programs and reports (% parallel, average ms per loop, speedup on
2 and on 4 processors).

``invocation_rows()`` reproduces the §7 comparison of invocation-graph
sizes against PTF counts.

Fault isolation
---------------

A batch run over the whole suite must not die because one program does:
``table2_rows`` runs each benchmark under a per-program ``try/except`` by
default (``fault_tolerant=True``), turning a crash into an error row with
the exception in ``Table2Row.error``.  ``per_program_timeout=SECONDS``
goes further and runs every program in its own subprocess (``python -m
repro.bench.harness --row ...``), so a hung or memory-exploding analysis
is killed by the OS without taking the harness down.  Programs whose
analysis degraded (guard trips, quarantines — see ``docs/ROBUSTNESS.md``)
report the record count in ``Table2Row.degraded``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, fields as _dataclass_fields
from typing import Optional

from ..analysis.engine import AnalyzerOptions
from ..analysis.results import AnalysisResult, run_analysis
from ..baselines.invocation import build_invocation_graph
from ..clients.machine import MachineModel, ProgramTiming
from ..clients.parallel import Parallelizer
from ..frontend.parser import load_program
from .programs import PROGRAMS, BenchmarkProgram, by_name, load_source

__all__ = [
    "Table2Row",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "invocation_rows",
    "analyze_benchmark",
]


@dataclass
class Table2Row:
    name: str
    lines: int
    procedures: int
    seconds: float
    avg_ptfs: float
    paper: BenchmarkProgram
    #: fraction of memoized sparse lookups answered from cache
    cache_hit_rate: float = 0.0
    #: dominator-tree steps actually walked (cache misses only)
    dom_walk_steps: int = 0
    #: non-empty when the program crashed or timed out under the
    #: fault-isolated harness; measurement columns are zero then
    error: str = ""
    #: number of degradation records the analysis accumulated (0 = clean)
    degraded: int = 0
    #: degradation detail for degraded rows: quarantined procedures and
    #: one human-readable reason per record (None on clean/error rows)
    degradation: Optional[dict] = None

    @property
    def status(self) -> str:
        """``ok`` | ``degraded`` | ``error`` — the row's outcome class."""
        if self.error:
            return "error"
        if self.degraded:
            return "degraded"
        return "ok"

    def display(self) -> str:
        if self.error:
            return f"{self.name:<12} ERROR: {self.error}"
        # thousands separators keep the column readable (and aligned) once
        # dom_walk_steps crosses 999,999 on the larger benchmarks
        out = (
            f"{self.name:<12} {self.lines:>6,} {self.procedures:>6} "
            f"{self.seconds:>9.3f} {self.avg_ptfs:>6.2f} "
            f"{self.cache_hit_rate * 100:>5.1f}% {self.dom_walk_steps:>11,}   "
            f"(paper: {self.paper.paper_lines:>5} lines, "
            f"{self.paper.paper_procedures:>3} procs, "
            f"{self.paper.paper_seconds:>6.2f}s, "
            f"{self.paper.paper_avg_ptfs:.2f} PTFs)"
        )
        if self.degraded:
            out += f" [degraded:{self.degraded}]"
        return out

    def as_dict(self) -> dict:
        """JSON-serializable row (``repro table2 --json``)."""
        out = {
            "name": self.name,
            "lines": self.lines,
            "procedures": self.procedures,
            "seconds": round(self.seconds, 6),
            "avg_ptfs": round(self.avg_ptfs, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "dom_walk_steps": self.dom_walk_steps,
            "status": self.status,
            "paper": {
                "lines": self.paper.paper_lines,
                "procedures": self.paper.paper_procedures,
                "seconds": self.paper.paper_seconds,
                "avg_ptfs": self.paper.paper_avg_ptfs,
            },
        }
        # keys stay additive: error/degradation detail only on non-ok
        # rows, so consumers of the clean-run JSON see no churn beyond
        # the (always-present) status field
        if self.error:
            out["error"] = self.error
        if self.degraded:
            out["degraded"] = self.degraded
        if self.degradation:
            out["degradation"] = self.degradation
        return out


def analyze_benchmark(
    name: str, options: Optional[AnalyzerOptions] = None
) -> AnalysisResult:
    source = load_source(name)
    program = load_program(source, f"{name}.c", name)
    return run_analysis(program, options)


def _row_from_result(prog: BenchmarkProgram, result: AnalysisResult) -> Table2Row:
    stats = result.stats()
    metrics = result.analyzer.metrics
    report = result.degradation
    degraded = len(report.records) + len(report.frontend)
    degradation = None
    if degraded:
        degradation = {
            "quarantined": sorted(report.quarantined),
            "reasons": report.reasons(),
        }
    return Table2Row(
        name=prog.name,
        lines=stats.source_lines,
        procedures=stats.procedures,
        seconds=stats.analysis_seconds,
        avg_ptfs=stats.avg_ptfs,
        paper=prog,
        cache_hit_rate=metrics.cache_hit_rate(),
        dom_walk_steps=metrics.dom_walk_steps,
        degraded=degraded,
        degradation=degradation,
    )


def _error_row(prog: BenchmarkProgram, error: str) -> Table2Row:
    return Table2Row(
        name=prog.name, lines=0, procedures=0, seconds=0.0,
        avg_ptfs=0.0, paper=prog, error=error,
    )


def _options_payload(options: Optional[AnalyzerOptions]) -> dict:
    """Scalar option fields that differ from the defaults.

    Used to forward analyzer options into the per-program subprocess;
    non-serializable fields (tracer, fault plan) are dropped — subprocess
    isolation is a batch-robustness feature, not an observability one.
    """
    if options is None:
        return {}
    defaults = AnalyzerOptions()
    out = {}
    for f in _dataclass_fields(AnalyzerOptions):
        value = getattr(options, f.name)
        if value == getattr(defaults, f.name):
            continue
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[f.name] = value
    return out


def _run_isolated(
    cmd: list[str], timeout: float, env: dict
) -> tuple[int, str, str]:
    """Run ``cmd`` in its own session; on timeout kill the whole process
    **group**.

    ``subprocess.run(timeout=...)`` kills only the direct child — a
    grandchild (anything the analysis ever spawns, or a future child
    that forks workers of its own) keeps running after the harness has
    already reported an ERROR row.  ``start_new_session=True`` makes the
    child a process-group leader, so ``os.killpg`` on expiry reaps the
    whole tree.  Raises :class:`subprocess.TimeoutExpired` like
    ``subprocess.run`` would.
    """
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        start_new_session=True,
    )
    try:
        out, err = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (OSError, AttributeError):  # pragma: no cover - group gone
            proc.kill()
        proc.communicate()
        raise
    return proc.returncode, out, err


def _subprocess_row(
    prog: BenchmarkProgram,
    timeout: float,
    options: Optional[AnalyzerOptions],
) -> Table2Row:
    """Run one benchmark in its own interpreter; kill it (and every
    process it spawned) on timeout."""
    import repro

    payload = {"name": prog.name}
    opt_payload = _options_payload(options)
    if opt_payload:
        payload["options"] = opt_payload
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    # -c (not -m) so runpy does not re-execute an already-imported module
    cmd = [
        sys.executable,
        "-c",
        "import sys; from repro.bench.harness import _child_row; "
        "sys.exit(_child_row(sys.argv[1]))",
        json.dumps(payload),
    ]
    try:
        returncode, stdout, stderr = _run_isolated(cmd, timeout, env)
    except subprocess.TimeoutExpired:
        return _error_row(prog, f"timeout after {timeout:g}s")
    if returncode != 0:
        tail = (stderr or "").strip().splitlines()
        detail = tail[-1] if tail else f"exit status {returncode}"
        return _error_row(prog, detail)
    data = json.loads(stdout)
    return Table2Row(
        name=prog.name,
        lines=data["lines"],
        procedures=data["procedures"],
        seconds=data["seconds"],
        avg_ptfs=data["avg_ptfs"],
        paper=prog,
        cache_hit_rate=data["cache_hit_rate"],
        dom_walk_steps=data["dom_walk_steps"],
        degraded=data.get("degraded", 0),
        degradation=data.get("degradation"),
    )


def _parallel_rows(
    progs: list[BenchmarkProgram],
    options: Optional[AnalyzerOptions],
    jobs: int,
    profile: bool = False,
    tracer=None,
    batch_info: Optional[dict] = None,
) -> list[Table2Row]:
    """The whole batch through the parallel driver — one worker process
    per benchmark program, rows merged back in suite order.

    ``profile=True`` runs the batch under the parallel observatory
    (worker traces merged into ``tracer``, telemetry folded into the
    batch stats).  ``batch_info``, when given, receives the batch stats
    and — with profiling — the full ``repro-parprof/1`` document under
    ``"parallel_profile"`` (the trajectory's utilization /
    critical-path columns and the CI artifact both come from it).
    """
    from ..analysis.parallel import AnalysisTask, options_payload, run_batch

    tasks = [
        AnalysisTask(
            name=prog.name,
            source=load_source(prog.name),
            filename=f"{prog.name}.c",
            options=options_payload(options),
        )
        for prog in progs
    ]
    batch = run_batch(tasks, jobs=jobs, tracer=tracer, profile=profile)
    if batch_info is not None:
        batch_info.update(batch.stats())
        if profile:
            from ..diagnostics.parprof import build_parallel_profile

            batch_info["parallel_profile"] = build_parallel_profile(batch)
            if batch.telemetry is not None:
                batch_info["telemetry"] = batch.telemetry.as_dict()
    rows = []
    for prog, bundle in zip(progs, batch.results):
        if bundle.get("error"):
            rows.append(_error_row(prog, bundle["error"]))
            continue
        rows.append(
            Table2Row(
                name=prog.name,
                lines=bundle["lines"],
                procedures=bundle["procedures"],
                seconds=bundle["analysis_seconds"],
                avg_ptfs=bundle["avg_ptfs"],
                paper=prog,
                cache_hit_rate=bundle["cache_hit_rate"],
                dom_walk_steps=bundle["dom_walk_steps"],
                degraded=bundle.get("degraded", 0),
                degradation=bundle.get("degradation"),
            )
        )
    return rows


def table2_rows(
    names: Optional[list[str]] = None,
    options: Optional[AnalyzerOptions] = None,
    fault_tolerant: bool = True,
    per_program_timeout: Optional[float] = None,
    jobs: int = 1,
    profile: bool = False,
    tracer=None,
    batch_info: Optional[dict] = None,
) -> list[Table2Row]:
    progs = [p for p in PROGRAMS if names is None or p.name in names]
    if jobs > 1 or profile:
        # worker processes already give per-program fault isolation;
        # per_program_timeout applies to the sequential paths only
        return _parallel_rows(
            progs, options, jobs, profile=profile, tracer=tracer,
            batch_info=batch_info,
        )
    rows = []
    for prog in progs:
        if per_program_timeout is not None:
            rows.append(_subprocess_row(prog, per_program_timeout, options))
            continue
        try:
            result = analyze_benchmark(prog.name, options)
        except Exception as exc:  # noqa: BLE001 - fault isolation by design
            if not fault_tolerant:
                raise
            rows.append(_error_row(prog, f"{type(exc).__name__}: {exc}"))
            continue
        rows.append(_row_from_result(prog, result))
    return rows


def table2_text(rows: Optional[list[Table2Row]] = None) -> str:
    if rows is None:
        rows = table2_rows()
    lines = [
        "Table 2: Benchmark and Analysis Measurements",
        f"{'Benchmark':<12} {'Lines':>6} {'Procs':>6} {'Secs':>9} {'PTFs':>6} "
        f"{'Hit%':>6} {'DomSteps':>11}",
    ]
    lines.extend(r.display() for r in rows)
    good = [r for r in rows if not r.error]
    avg = sum(r.avg_ptfs for r in good) / len(good) if good else 0.0
    lines.append(f"{'(suite avg PTFs/proc)':<37} {avg:>6.2f}")
    failed = len(rows) - len(good)
    if failed:
        lines.append(f"({failed} of {len(rows)} programs failed; see ERROR rows)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


def table3_rows(
    names: tuple[str, ...] = ("alvinn", "ear"),
    model: Optional[MachineModel] = None,
) -> list[ProgramTiming]:
    model = model or MachineModel()
    out: list[ProgramTiming] = []
    for name in names:
        prog = by_name(name)
        source = load_source(name)
        analysis = analyze_benchmark(name)
        par = Parallelizer(source, alias_oracle=analysis, filename=f"{name}.c")
        par.run()
        loops = par.all_loops()
        invocations = {
            l.line: (prog.table3_invocations or 1) for l in loops
        }
        out.append(model.time_program(name, loops, invocations))
    return out


def table3_text(rows: Optional[list[ProgramTiming]] = None) -> str:
    if rows is None:
        rows = table3_rows()
    paper = {"alvinn": (97.7, 7.4, 1.95, 3.50), "ear": (85.8, 0.2, 1.42, 1.63)}
    lines = [
        "Table 3: Measurements of Parallelized Programs",
        f"{'Program':<10} {'%Par':>6} {'ms/loop':>8} {'S(2)':>6} {'S(4)':>6}",
    ]
    for r in rows:
        name, pct, avg, s2, s4 = r.row()
        p = paper.get(name)
        extra = (
            f"   (paper: {p[0]:.1f}% {p[1]:.1f}ms {p[2]:.2f} {p[3]:.2f})"
            if p
            else ""
        )
        lines.append(f"{name:<10} {pct:>6.1f} {avg:>8.2f} {s2:>6.2f} {s4:>6.2f}{extra}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §7 invocation-graph comparison
# ---------------------------------------------------------------------------


def invocation_rows(names: Optional[list[str]] = None, limit: int = 2_000_000):
    """(name, procedures, invocation-graph nodes, total PTFs) per program."""
    out = []
    for prog in PROGRAMS:
        if names is not None and prog.name not in names:
            continue
        source = load_source(prog.name)
        program = load_program(source, f"{prog.name}.c", prog.name)
        graph = build_invocation_graph(program, limit=limit)
        analysis = run_analysis(program)
        stats = analysis.stats()
        out.append(
            {
                "name": prog.name,
                "procedures": stats.procedures,
                "invocation_nodes": graph.nodes,
                "truncated": graph.truncated,
                "total_ptfs": stats.total_ptfs,
                "avg_ptfs": stats.avg_ptfs,
            }
        )
    return out


# ---------------------------------------------------------------------------
# subprocess entry point (fault-isolated batch mode)
# ---------------------------------------------------------------------------


def _child_row(payload_json: str) -> int:
    """``python -m repro.bench.harness --row '{...}'``: analyze one
    benchmark and print its measurement columns as JSON on stdout.

    The parent (:func:`_subprocess_row`) uses this so a crash, hang, or
    runaway allocation in one benchmark is contained by process isolation
    and the subprocess timeout.
    """
    payload = json.loads(payload_json)
    options = None
    if payload.get("options"):
        options = AnalyzerOptions(**payload["options"])
    result = analyze_benchmark(payload["name"], options)
    row = _row_from_result(by_name(payload["name"]), result)
    print(json.dumps({
        "lines": row.lines,
        "procedures": row.procedures,
        "seconds": row.seconds,
        "avg_ptfs": row.avg_ptfs,
        "cache_hit_rate": row.cache_hit_rate,
        "dom_walk_steps": row.dom_walk_steps,
        "degraded": row.degraded,
        "degradation": row.degradation,
    }))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.harness",
        description="Fault-isolated Table 2 batch runner",
    )
    parser.add_argument("--row", metavar="JSON",
                        help="(internal) analyze one benchmark, print row JSON")
    parser.add_argument("--names", help="comma-separated subset of benchmarks")
    parser.add_argument("--per-program-timeout", type=float, metavar="SECONDS",
                        help="run each benchmark in its own subprocess, "
                             "killed (whole process group) after SECONDS")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="analyze benchmarks in N worker processes "
                             "(deterministic merge; 1 = sequential)")
    parser.add_argument("--json", action="store_true",
                        help="emit rows as JSON instead of the text table")
    parser.add_argument("--record", nargs="?", const="BENCH_table2.json",
                        metavar="PATH",
                        help="append this run to the benchmark trajectory "
                             "file (default BENCH_table2.json) and report "
                             "drift against the previous entry")
    parser.add_argument("--profile-parallel", nargs="?",
                        const="parallel-profile.json", metavar="PATH",
                        help="run the batch under the parallel observatory "
                             "and write the critical-path profile to PATH "
                             "(default parallel-profile.json; render with "
                             "'repro parallel-report'); with --record, the "
                             "utilization and critical_path_seconds columns "
                             "land in the trajectory totals")
    parser.add_argument("--trace-json", metavar="PATH",
                        help="with --profile-parallel: write the merged "
                             "Chrome trace (one lane per worker, "
                             "Perfetto-loadable) to PATH")
    args = parser.parse_args(argv)
    if args.row is not None:
        return _child_row(args.row)
    names = args.names.split(",") if args.names else None
    peak_kb = None
    if args.record:
        # sample the whole batch's heap peak for the trajectory record
        import tracemalloc

        already = tracemalloc.is_tracing()
        if not already:
            tracemalloc.start()
        else:  # pragma: no cover - nested tracing
            tracemalloc.reset_peak()
    profiling = args.profile_parallel is not None
    tracer = None
    if profiling and args.trace_json:
        from ..diagnostics.trace import Tracer

        tracer = Tracer()
    batch_info: dict = {}
    batch_start = time.perf_counter()
    rows = table2_rows(
        names=names,
        per_program_timeout=args.per_program_timeout,
        jobs=args.jobs,
        profile=profiling,
        tracer=tracer,
        batch_info=batch_info,
    )
    batch_seconds = time.perf_counter() - batch_start
    profile_doc = batch_info.get("parallel_profile")
    if profile_doc is not None:
        from ..diagnostics.parprof import write_profile

        write_profile(profile_doc, args.profile_parallel)
        print(
            f"repro-bench: parallel profile -> {args.profile_parallel} "
            f"(measured {profile_doc['measured_speedup']}x, theoretical "
            f"{profile_doc['theoretical_speedup']}x)",
            file=sys.stderr,
        )
    if tracer is not None:
        tracer.save_chrome(args.trace_json)
        print(f"repro-bench: merged trace -> {args.trace_json}",
              file=sys.stderr)
    if args.record:
        peak_kb = tracemalloc.get_traced_memory()[1] / 1024.0
        if not already:
            tracemalloc.stop()
    if args.json:
        print(json.dumps([r.as_dict() for r in rows], indent=2, sort_keys=True))
    else:
        print(table2_text(rows))
        if args.jobs > 1:
            print(f"(batch: {batch_seconds:.3f}s wall with --jobs {args.jobs})")
    if args.record:
        from .trajectory import record_trajectory

        entry, drift = record_trajectory(
            rows,
            path=args.record,
            peak_kb=peak_kb,
            jobs=args.jobs,
            batch_seconds=batch_seconds,
            utilization=batch_info.get("utilization"),
            critical_path_seconds=batch_info.get("critical_path_seconds"),
        )
        print(
            f"repro-bench: recorded entry rev={entry['revision']} "
            f"-> {args.record}",
            file=sys.stderr,
        )
        for line in drift:
            print(f"repro-bench: drift: {line}", file=sys.stderr)
        if not drift:
            print("repro-bench: no drift vs previous entry", file=sys.stderr)
    return 1 if any(r.error for r in rows) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
