"""Measurement harness: regenerate the paper's tables.

``table2_rows()`` runs the full Wilson-Lam analysis over the benchmark
suite and reports the paper's columns (lines, procedures, analysis seconds,
average PTFs per procedure) next to the paper's own numbers.

``table3_rows()`` runs the parallelizer + machine model over the two
numeric programs and reports (% parallel, average ms per loop, speedup on
2 and on 4 processors).

``invocation_rows()`` reproduces the §7 comparison of invocation-graph
sizes against PTF counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..analysis.engine import AnalyzerOptions
from ..analysis.results import AnalysisResult, run_analysis
from ..baselines.invocation import build_invocation_graph
from ..clients.machine import MachineModel, ProgramTiming
from ..clients.parallel import Parallelizer
from ..frontend.parser import load_program
from .programs import PROGRAMS, BenchmarkProgram, by_name, load_source

__all__ = [
    "Table2Row",
    "table2_rows",
    "table2_text",
    "table3_rows",
    "table3_text",
    "invocation_rows",
    "analyze_benchmark",
]


@dataclass
class Table2Row:
    name: str
    lines: int
    procedures: int
    seconds: float
    avg_ptfs: float
    paper: BenchmarkProgram
    #: fraction of memoized sparse lookups answered from cache
    cache_hit_rate: float = 0.0
    #: dominator-tree steps actually walked (cache misses only)
    dom_walk_steps: int = 0

    def display(self) -> str:
        # thousands separators keep the column readable (and aligned) once
        # dom_walk_steps crosses 999,999 on the larger benchmarks
        return (
            f"{self.name:<12} {self.lines:>6,} {self.procedures:>6} "
            f"{self.seconds:>9.3f} {self.avg_ptfs:>6.2f} "
            f"{self.cache_hit_rate * 100:>5.1f}% {self.dom_walk_steps:>11,}   "
            f"(paper: {self.paper.paper_lines:>5} lines, "
            f"{self.paper.paper_procedures:>3} procs, "
            f"{self.paper.paper_seconds:>6.2f}s, "
            f"{self.paper.paper_avg_ptfs:.2f} PTFs)"
        )

    def as_dict(self) -> dict:
        """JSON-serializable row (``repro table2 --json``)."""
        return {
            "name": self.name,
            "lines": self.lines,
            "procedures": self.procedures,
            "seconds": round(self.seconds, 6),
            "avg_ptfs": round(self.avg_ptfs, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "dom_walk_steps": self.dom_walk_steps,
            "paper": {
                "lines": self.paper.paper_lines,
                "procedures": self.paper.paper_procedures,
                "seconds": self.paper.paper_seconds,
                "avg_ptfs": self.paper.paper_avg_ptfs,
            },
        }


def analyze_benchmark(
    name: str, options: Optional[AnalyzerOptions] = None
) -> AnalysisResult:
    source = load_source(name)
    program = load_program(source, f"{name}.c", name)
    return run_analysis(program, options)


def table2_rows(
    names: Optional[list[str]] = None,
    options: Optional[AnalyzerOptions] = None,
) -> list[Table2Row]:
    rows = []
    for prog in PROGRAMS:
        if names is not None and prog.name not in names:
            continue
        result = analyze_benchmark(prog.name, options)
        stats = result.stats()
        metrics = result.analyzer.metrics
        rows.append(
            Table2Row(
                name=prog.name,
                lines=stats.source_lines,
                procedures=stats.procedures,
                seconds=stats.analysis_seconds,
                avg_ptfs=stats.avg_ptfs,
                paper=prog,
                cache_hit_rate=metrics.cache_hit_rate(),
                dom_walk_steps=metrics.dom_walk_steps,
            )
        )
    return rows


def table2_text(rows: Optional[list[Table2Row]] = None) -> str:
    if rows is None:
        rows = table2_rows()
    lines = [
        "Table 2: Benchmark and Analysis Measurements",
        f"{'Benchmark':<12} {'Lines':>6} {'Procs':>6} {'Secs':>9} {'PTFs':>6} "
        f"{'Hit%':>6} {'DomSteps':>11}",
    ]
    lines.extend(r.display() for r in rows)
    avg = sum(r.avg_ptfs for r in rows) / len(rows) if rows else 0.0
    lines.append(f"{'(suite avg PTFs/proc)':<37} {avg:>6.2f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


def table3_rows(
    names: tuple[str, ...] = ("alvinn", "ear"),
    model: Optional[MachineModel] = None,
) -> list[ProgramTiming]:
    model = model or MachineModel()
    out: list[ProgramTiming] = []
    for name in names:
        prog = by_name(name)
        source = load_source(name)
        analysis = analyze_benchmark(name)
        par = Parallelizer(source, alias_oracle=analysis, filename=f"{name}.c")
        par.run()
        loops = par.all_loops()
        invocations = {
            l.line: (prog.table3_invocations or 1) for l in loops
        }
        out.append(model.time_program(name, loops, invocations))
    return out


def table3_text(rows: Optional[list[ProgramTiming]] = None) -> str:
    if rows is None:
        rows = table3_rows()
    paper = {"alvinn": (97.7, 7.4, 1.95, 3.50), "ear": (85.8, 0.2, 1.42, 1.63)}
    lines = [
        "Table 3: Measurements of Parallelized Programs",
        f"{'Program':<10} {'%Par':>6} {'ms/loop':>8} {'S(2)':>6} {'S(4)':>6}",
    ]
    for r in rows:
        name, pct, avg, s2, s4 = r.row()
        p = paper.get(name)
        extra = (
            f"   (paper: {p[0]:.1f}% {p[1]:.1f}ms {p[2]:.2f} {p[3]:.2f})"
            if p
            else ""
        )
        lines.append(f"{name:<10} {pct:>6.1f} {avg:>8.2f} {s2:>6.2f} {s4:>6.2f}{extra}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §7 invocation-graph comparison
# ---------------------------------------------------------------------------


def invocation_rows(names: Optional[list[str]] = None, limit: int = 2_000_000):
    """(name, procedures, invocation-graph nodes, total PTFs) per program."""
    out = []
    for prog in PROGRAMS:
        if names is not None and prog.name not in names:
            continue
        source = load_source(prog.name)
        program = load_program(source, f"{prog.name}.c", prog.name)
        graph = build_invocation_graph(program, limit=limit)
        analysis = run_analysis(program)
        stats = analysis.stats()
        out.append(
            {
                "name": prog.name,
                "procedures": stats.procedures,
                "invocation_nodes": graph.nodes,
                "truncated": graph.truncated,
                "total_ptfs": stats.total_ptfs,
                "avg_ptfs": stats.avg_ptfs,
            }
        )
    return out
