"""Load generator for the query daemon (``repro loadtest``).

The serving story's measurement substrate: spawn N concurrent TCP
clients, each replaying a deterministic mixed query workload against one
:class:`~repro.query.server.QueryServer`, and report **throughput**
(queries per second over the whole run) and **latency quantiles**
(p50/p90/p95/p99/max, measured client-side from request-write to
response-read on the monotonic clock).

Design points:

* **Per-thread histograms, merged at the end.**  Every client thread
  records into its own
  :class:`~repro.diagnostics.telemetry.LogHistogram`; the report folds
  them with the histogram's exact ``merge`` — zero cross-thread
  contention on the measurement path, and a production exercise of the
  mergeability the telemetry tests pin.
* **Deterministic workloads.**  The op mix is weighted
  (:data:`DEFAULT_MIX`) and drawn from the store's own index with
  ``random.Random(seed)``, so two runs over the same store replay the
  same requests in the same per-client order.
* **Cache-hit realism.**  With ``repeat_half=True`` (the default) the
  second half of every client's workload repeats its first half — the
  same discipline as the CI serve smoke — so the shared LRU must show
  hits and the report can carry a meaningful hit rate.
* **In-process or external daemon.**  By default the generator starts a
  :class:`QueryServer` over the store on an ephemeral TCP port in a
  background thread (clients still speak real TCP through the loopback
  stack) and shuts it down in-band afterwards; pass ``addr=`` to target
  an already-running daemon instead.
* **Chaos mode** (``repro loadtest --chaos`` — docs/ROBUSTNESS.md §8).
  Each client misbehaves deterministically
  (``random.Random(f"chaos:{seed}:{i}")``): ~8% of its sends are
  non-JSON garbage lines, ~8% are mid-request disconnects (send, close
  without reading, reconnect).  Empty reads (the daemon's injected
  ``disconnect`` fault) become ``server_drops`` + a reconnect instead of
  a failure; ``overloaded`` envelopes are counted as ``sheds``, not
  errors.  Every ``ok`` answer is verified against a fault-free baseline
  (:func:`baseline_answers` — the union over one or more stores, so a
  mid-run hot swap may answer old-or-new but never torn) and the report
  carries the accounting block the chaos gate asserts on: **every
  request the daemon finalized is an answer read, a deliberate client
  disconnect, or a server drop**.

The report feeds the append-only ``BENCH_serve.json`` trajectory
(:func:`repro.bench.trajectory.record_serve_trajectory`), where p99/qps
regressions gate CI the same way the snapshot differ gates precision
drift.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Optional

from ..diagnostics.metrics import safe_ratio
from ..diagnostics.telemetry import LogHistogram

__all__ = [
    "DEFAULT_MIX",
    "LoadReport",
    "baseline_answers",
    "build_workload",
    "parse_mix",
    "run_clients",
    "run_loadtest",
]

#: chaos-mode misbehavior rates (per request draw, per client)
CHAOS_GARBAGE_RATE = 0.08
CHAOS_DISCONNECT_RATE = 0.08

#: how many answer-mismatch samples the chaos report keeps verbatim
CHAOS_MISMATCH_SAMPLES = 5

#: default weighted op mix (weights are relative draw frequencies); the
#: shape mirrors what the §7 clients actually ask: mostly points-to and
#: alias, a sprinkle of MOD/REF and call-graph questions
DEFAULT_MIX = {
    "points_to": 6,
    "alias": 3,
    "modref": 1,
    "pointed_by": 1,
    "callees": 1,
    "callers": 1,
    "reaches": 1,
}

#: quantiles the report exports (plus max), chosen to match the ROADMAP
#: open item ("latency histograms p50/p99")
REPORT_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def parse_mix(spec: Optional[str]) -> dict[str, int]:
    """Parse an ``op=weight,op=weight`` mix spec (None = default mix)."""
    if not spec:
        return dict(DEFAULT_MIX)
    mix: dict[str, int] = {}
    for part in spec.split(","):
        op, _, weight = part.partition("=")
        op = op.strip().replace("-", "_")
        if op not in DEFAULT_MIX:
            raise ValueError(
                f"unknown op {op!r} in mix spec (choose from "
                f"{', '.join(sorted(DEFAULT_MIX))})"
            )
        try:
            w = int(weight) if weight else 1
        except ValueError:
            raise ValueError(f"bad weight in mix spec: {part!r}")
        if w < 0:
            raise ValueError(f"negative weight in mix spec: {part!r}")
        if w:
            mix[op] = w
    if not mix:
        raise ValueError(f"empty mix spec: {spec!r}")
    return mix


def _request_pools(store: dict) -> dict[str, list[dict]]:
    """Concrete request candidates per op, drawn from the store's own
    index (every generated request names real procedures/variables, so
    answers exercise the fact tables, not the error paths)."""
    procs = store["index"]["procedures"]
    pools: dict[str, list[dict]] = {op: [] for op in DEFAULT_MIX}
    names = sorted(procs)
    for pname in names:
        rec = procs[pname]
        pool = sorted(rec["vars"])
        for var in pool:
            pools["points_to"].append(
                {"op": "points_to", "var": var, "proc": pname}
            )
        for i in range(len(pool) - 1):
            pools["alias"].append(
                {"op": "alias", "a": pool[i], "b": pool[i + 1], "proc": pname}
            )
        pools["modref"].append({"op": "modref", "proc": pname})
        pools["callees"].append({"op": "callees", "proc": pname})
        pools["callers"].append({"op": "callers", "proc": pname})
        if pname != names[0]:
            pools["reaches"].append(
                {"op": "reaches", "src": names[0], "dst": pname}
            )
    for name in sorted(store["index"].get("pointed_by", {})):
        pools["pointed_by"].append({"op": "pointed_by", "name": name})
    return pools


def build_workload(
    store: dict,
    count: int,
    mix: Optional[dict[str, int]] = None,
    repeat_half: bool = True,
    seed: int = 0,
) -> list[dict]:
    """One client's deterministic request sequence (length ``count``).

    Ops are drawn with ``mix`` weights from the store-derived pools;
    with ``repeat_half`` the second half repeats the first (cache-hit
    realism).  Two calls with equal arguments build equal workloads.
    """
    mix = dict(mix) if mix else dict(DEFAULT_MIX)
    pools = _request_pools(store)
    ops = [op for op in sorted(mix) if pools.get(op)]
    if not ops:
        raise ValueError("store yields no requests for the requested mix")
    weights = [mix[op] for op in ops]
    rng = random.Random(seed)
    fresh = count - count // 2 if repeat_half else count
    out: list[dict] = []
    for _ in range(fresh):
        op = rng.choices(ops, weights=weights)[0]
        out.append(dict(rng.choice(pools[op])))
    if repeat_half:
        out.extend(dict(req) for req in out[: count - fresh])
    return out


def _request_key(req: dict) -> str:
    """Canonical identity of a request minus the client ``id`` (two
    clients asking the same question share one baseline entry)."""
    return json.dumps(
        {k: v for k, v in req.items() if k != "id"}, sort_keys=True
    )


def baseline_answers(
    stores: list[dict], workloads: list[list[dict]]
) -> dict[str, set]:
    """Fault-free reference answers for every workload request.

    Maps :func:`_request_key` to the *set* of acceptable serialized
    results — one per store, so passing both the pre- and post-reload
    stores encodes the hot-swap contract exactly: a non-shed answer must
    match the old store or the new store, never a torn mix.  Requests a
    store answers with an error contribute nothing (chaos clients only
    verify ``ok`` envelopes).
    """
    from ..query.engine import QueryEngine, QueryError

    expected: dict[str, set] = {}
    for store in stores:
        engine = QueryEngine(store, cache_size=0)
        seen: set[str] = set()
        for workload in workloads:
            for req in workload:
                key = _request_key(req)
                if key in seen:
                    continue
                seen.add(key)
                try:
                    result = engine.query(dict(req))
                except QueryError:
                    continue
                expected.setdefault(key, set()).add(
                    json.dumps(result, sort_keys=True)
                )
    return expected


class LoadReport:
    """Aggregated outcome of one load-test run."""

    def __init__(
        self,
        program: str,
        clients: int,
        histogram: LogHistogram,
        errors: int,
        seconds: float,
        ops: dict[str, int],
        stats: Optional[dict] = None,
        chaos: Optional[dict] = None,
    ) -> None:
        self.program = program
        self.clients = clients
        self.histogram = histogram
        self.errors = errors
        self.seconds = seconds
        self.ops = ops
        #: the daemon's final ``stats`` answer (cache hit rate source)
        self.stats = stats or {}
        #: chaos-mode accounting block (None on ordinary runs)
        self.chaos = chaos

    @property
    def requests(self) -> int:
        return self.histogram.count

    @property
    def qps(self) -> float:
        return (self.requests / self.seconds) if self.seconds > 0 else 0.0

    def latency_ms(self) -> dict:
        """Quantile block in milliseconds (p50/p90/p95/p99 + max)."""
        out = {}
        for q in REPORT_QUANTILES:
            value = self.histogram.quantile(q)
            out[f"p{int(q * 100)}_ms"] = (
                None if value is None else round(value, 4)
            )
        hi = self.histogram.max
        out["max_ms"] = None if hi is None else round(hi, 4)
        return out

    @property
    def cache_hits(self) -> int:
        return int(self.stats.get("cache_hits") or 0)

    @property
    def cache_misses(self) -> int:
        return int(self.stats.get("cache_misses") or 0)

    def as_dict(self) -> dict:
        out = {
            "program": self.program,
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": round(self.seconds, 6),
            "qps": round(self.qps, 2),
            "latency": self.latency_ms(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": safe_ratio(
                self.cache_hits, self.cache_hits + self.cache_misses
            ),
            "ops": dict(sorted(self.ops.items())),
        }
        if self.chaos is not None:
            out["chaos"] = self.chaos
        return out


class _ClientResult:
    __slots__ = ("histogram", "errors", "ops", "failure", "sheds", "garbage",
                 "client_disconnects", "server_drops", "answers_read",
                 "mismatches", "mismatch_samples")

    def __init__(self) -> None:
        self.histogram = LogHistogram()
        self.errors = 0
        self.ops: dict[str, int] = {}
        self.failure: Optional[BaseException] = None
        #: chaos accounting (all zero on ordinary runs)
        self.sheds = 0
        self.garbage = 0
        self.client_disconnects = 0
        self.server_drops = 0
        self.answers_read = 0
        self.mismatches = 0
        self.mismatch_samples: list[str] = []


def _connect(addr: tuple[str, int], timeout: float):
    sock = socket.create_connection(addr, timeout=timeout)
    return sock, sock.makefile("rw", encoding="utf-8")


def _run_client(
    addr: tuple[str, int],
    workload: list[dict],
    result: _ClientResult,
    start_barrier: threading.Barrier,
    timeout: float,
    chaos_rng: Optional[random.Random] = None,
    expected: Optional[dict] = None,
) -> None:
    """One client thread's replay loop.

    Ordinary mode treats an empty read as a failure (the daemon must
    never drop a well-behaved client).  Chaos mode (``chaos_rng`` set)
    misbehaves deterministically and keeps exact books instead: every
    line the daemon read is accounted as an answer read, a deliberate
    client disconnect, or a server drop — the invariant the chaos tests
    assert against the daemon's ``requests`` counter.
    """
    sock = fh = None
    try:
        sock, fh = _connect(addr, timeout)
        start_barrier.wait(timeout=timeout)
        for i, req in enumerate(workload):
            action = "normal"
            if chaos_rng is not None:
                draw = chaos_rng.random()
                if draw < CHAOS_GARBAGE_RATE:
                    action = "garbage"
                elif draw < CHAOS_GARBAGE_RATE + CHAOS_DISCONNECT_RATE:
                    action = "disconnect"
            if action == "garbage":
                # a non-JSON line; the daemon must answer one bad-json
                # envelope (or drop us via its own injected fault)
                result.garbage += 1
                try:
                    fh.write(f"@@chaos garbage {i}@@\n")
                    fh.flush()
                    line = fh.readline()
                except OSError:
                    line = ""
                if not line:
                    result.server_drops += 1
                    sock.close()
                    sock, fh = _connect(addr, timeout)
                else:
                    result.answers_read += 1
                continue
            if action == "disconnect":
                # send a real request, then vanish without reading the
                # answer; the daemon reads and finalizes the line (the
                # data is ordered before our FIN), so this counts
                # against its requests counter
                try:
                    fh.write(json.dumps(dict(req, id=i)) + "\n")
                    fh.flush()
                    result.client_disconnects += 1
                except OSError:
                    pass  # line never reached the daemon: no account
                sock.close()
                sock, fh = _connect(addr, timeout)
                continue
            payload = json.dumps(dict(req, id=i))
            t0 = time.perf_counter_ns()
            try:
                fh.write(payload + "\n")
                fh.flush()
                line = fh.readline()
            except OSError:
                if chaos_rng is None:
                    raise
                line = ""
            elapsed_ms = (time.perf_counter_ns() - t0) / 1e6
            if not line:
                if chaos_rng is None:
                    raise OSError("daemon closed the connection mid-run")
                # the daemon's injected disconnect fault: the request
                # was processed and finalized, the answer never written
                result.server_drops += 1
                sock.close()
                sock, fh = _connect(addr, timeout)
                continue
            result.answers_read += 1
            envelope = json.loads(line)
            error = envelope.get("error") or {}
            if error.get("code") == "overloaded":
                # shed by overload protection: counted, never measured
                # (a shed is not a latency sample or an engine error)
                result.sheds += 1
                continue
            result.histogram.record(elapsed_ms)
            op = req["op"]
            result.ops[op] = result.ops.get(op, 0) + 1
            if not envelope.get("ok"):
                result.errors += 1
            elif expected is not None:
                allowed = expected.get(_request_key(req))
                got = json.dumps(envelope.get("result"), sort_keys=True)
                if allowed is not None and got not in allowed:
                    result.mismatches += 1
                    if len(result.mismatch_samples) < CHAOS_MISMATCH_SAMPLES:
                        result.mismatch_samples.append(
                            f"{_request_key(req)} -> {got[:200]}"
                        )
    except BaseException as exc:  # surfaced by run_clients
        result.failure = exc
        try:
            start_barrier.abort()
        except Exception:
            pass
    finally:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


def run_clients(
    addr: tuple[str, int],
    workloads: list[list[dict]],
    program: str = "<store>",
    timeout: float = 60.0,
    final_stats=None,
    chaos_seed: Optional[int] = None,
    expected: Optional[dict] = None,
) -> LoadReport:
    """Replay ``workloads`` (one list per client thread) against the
    daemon at ``addr``; returns the merged :class:`LoadReport`.

    All clients connect first, then release together through a barrier
    so the measured wall clock covers concurrent load, not connection
    staggering.  ``final_stats``, when given, is called after the run to
    fetch the daemon's ``stats`` answer (cache hit counters).

    ``chaos_seed`` switches every client into chaos mode (each gets its
    own deterministic ``random.Random(f"chaos:{seed}:{index}")``
    misbehavior stream); ``expected`` (see :func:`baseline_answers`)
    verifies each ``ok`` answer against the fault-free baseline.
    """
    results = [_ClientResult() for _ in workloads]
    barrier = threading.Barrier(len(workloads) + 1)
    threads = [
        threading.Thread(
            target=_run_client,
            args=(addr, workload, result, barrier, timeout),
            kwargs=dict(
                chaos_rng=(
                    random.Random(f"chaos:{chaos_seed}:{i}")
                    if chaos_seed is not None else None
                ),
                expected=expected,
            ),
            daemon=True,
        )
        for i, (workload, result) in enumerate(zip(workloads, results))
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=timeout)
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout)
    seconds = time.perf_counter() - t0
    for result in results:
        if result.failure is not None:
            raise OSError(f"load client failed: {result.failure}")
    histogram = LogHistogram.merged(r.histogram for r in results)
    ops: dict[str, int] = {}
    for r in results:
        for op, n in r.ops.items():
            ops[op] = ops.get(op, 0) + n
    stats = final_stats() if final_stats is not None else None
    chaos = None
    if chaos_seed is not None:
        samples: list[str] = []
        for r in results:
            samples.extend(r.mismatch_samples)
        chaos = {
            "seed": chaos_seed,
            "answers_read": sum(r.answers_read for r in results),
            "sheds": sum(r.sheds for r in results),
            "garbage": sum(r.garbage for r in results),
            "client_disconnects": sum(
                r.client_disconnects for r in results
            ),
            "server_drops": sum(r.server_drops for r in results),
            "mismatches": sum(r.mismatches for r in results),
            "mismatch_samples": samples[:CHAOS_MISMATCH_SAMPLES],
        }
    return LoadReport(
        program=program,
        clients=len(workloads),
        histogram=histogram,
        errors=sum(r.errors for r in results),
        seconds=seconds,
        ops=ops,
        stats=stats,
        chaos=chaos,
    )


def _query_once(addr: tuple[str, int], request: dict, timeout: float) -> dict:
    with socket.create_connection(addr, timeout=timeout) as sock:
        fh = sock.makefile("rw", encoding="utf-8")
        fh.write(json.dumps(request) + "\n")
        fh.flush()
        return json.loads(fh.readline())


def run_loadtest(
    store_path: str,
    clients: int = 8,
    requests_per_client: int = 50,
    mix: Optional[dict[str, int]] = None,
    repeat_half: bool = True,
    seed: int = 0,
    deadline_seconds: Optional[float] = None,
    cache_size: int = 256,
    addr: Optional[tuple[str, int]] = None,
    timeout: float = 60.0,
    chaos: bool = False,
    serve_faults=None,
    rate_limit: Optional[float] = None,
    burst: Optional[float] = None,
    max_in_flight: Optional[int] = None,
    expect_stores: Optional[list[str]] = None,
) -> LoadReport:
    """The full harness: load the store, build per-client workloads,
    serve (in-process TCP unless ``addr`` targets a live daemon), replay
    concurrently, and aggregate the report.

    Each client gets a differently-seeded shuffle of the mix
    (``seed + index``) so concurrent requests interleave ops rather than
    marching in lockstep.  The in-process daemon runs with telemetry
    enabled — exactly the configuration the serve smoke measures — and
    is shut down in-band (the clean-shutdown path, no orphan socket).

    Chaos mode: clients misbehave deterministically and every ``ok``
    answer is verified against the fault-free baseline over the serving
    store plus any ``expect_stores`` (pass the post-reload store there
    when a hot swap happens mid-run).  ``serve_faults`` (a
    :class:`~repro.diagnostics.faults.FaultPlan`), ``rate_limit`` /
    ``burst`` / ``max_in_flight`` configure the in-process daemon
    (ignored with ``addr`` — an external daemon owns its own config).
    """
    from ..query import QueryEngine, load_store
    from ..query.server import QueryServer

    store = load_store(store_path)
    program = store.get("program", store_path)
    workloads = [
        build_workload(
            store,
            requests_per_client,
            mix=mix,
            repeat_half=repeat_half,
            seed=seed + i,
        )
        for i in range(clients)
    ]
    chaos_seed = seed if chaos else None
    expected = None
    if chaos:
        baseline_stores = [store]
        for extra in expect_stores or []:
            baseline_stores.append(load_store(extra))
        expected = baseline_answers(baseline_stores, workloads)

    if addr is not None:
        return run_clients(
            addr,
            workloads,
            program=program,
            timeout=timeout,
            final_stats=lambda: _query_once(
                addr, {"op": "stats", "id": "loadgen"}, timeout
            ).get("result"),
            chaos_seed=chaos_seed,
            expected=expected,
        )

    from ..diagnostics.telemetry import TelemetryRegistry

    engine = QueryEngine(store, cache_size=cache_size)
    server = QueryServer(
        engine,
        deadline_seconds=deadline_seconds,
        telemetry=TelemetryRegistry(),
        store_path=store_path,
        max_in_flight=max_in_flight,
        rate_limit=rate_limit,
        burst=burst,
        faults=serve_faults,
    )
    bound: dict = {}
    ready = threading.Event()

    def _ready(a) -> None:
        bound["addr"] = a
        ready.set()

    thread = threading.Thread(
        target=server.serve_tcp,
        kwargs=dict(host="127.0.0.1", port=0, ready_cb=_ready,
                    log=_NullWriter()),
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout):
        raise OSError("in-process daemon never announced readiness")
    local = bound["addr"]
    try:
        return run_clients(
            local,
            workloads,
            program=program,
            timeout=timeout,
            final_stats=lambda: _query_once(
                local, {"op": "stats", "id": "loadgen"}, timeout
            ).get("result"),
            chaos_seed=chaos_seed,
            expected=expected,
        )
    finally:
        try:
            _query_once(local, {"op": "shutdown", "id": "loadgen"}, timeout)
        except OSError:  # pragma: no cover - daemon already gone
            pass
        thread.join(timeout)


class _NullWriter:
    """A /dev/null text sink for the in-process daemon's announcements."""

    def write(self, text: str) -> int:
        return len(text)

    def flush(self) -> None:
        return None
