"""repro — context-sensitive pointer analysis for C programs.

A faithful reproduction of Wilson & Lam, "Efficient Context-Sensitive
Pointer Analysis for C Programs" (PLDI 1995): partial transfer functions,
extended parameters, location sets, and a sparse flow-sensitive points-to
analysis, together with the baselines and clients the paper evaluates
against.

Quickstart::

    from repro import analyze_source

    result = analyze_source('''
        int g;
        void set(int **p, int *v) { *p = v; }
        int *q;
        int main(void) { set(&q, &g); return 0; }
    ''')
    assert result.points_to_names("main", "q") == {"g"}
    print(result.stats())
"""

from __future__ import annotations

from typing import Optional

from .analysis.engine import Analyzer, AnalyzerOptions, analyze
from .analysis.results import AnalysisResult, PTFStats, run_analysis
from .frontend.parser import (
    ParseError,
    load_program,
    load_program_from_file,
    load_project,
    load_project_files,
)
from .ir.program import Procedure, Program
from .memory.locset import LocationSet

__version__ = "1.0.0"

__all__ = [
    "analyze",
    "analyze_source",
    "analyze_file",
    "Analyzer",
    "AnalyzerOptions",
    "AnalysisResult",
    "PTFStats",
    "ParseError",
    "load_program",
    "load_program_from_file",
    "load_project",
    "load_project_files",
    "Program",
    "Procedure",
    "LocationSet",
    "run_analysis",
]


def analyze_source(
    source: str,
    filename: str = "<input>",
    options: Optional[AnalyzerOptions] = None,
) -> AnalysisResult:
    """Parse, lower and analyze a C program given as a string."""
    program = load_program(source, filename)
    return run_analysis(program, options)


def analyze_file(
    path: str, options: Optional[AnalyzerOptions] = None
) -> AnalysisResult:
    """Parse, lower and analyze a C file on disk."""
    program = load_program_from_file(path)
    return run_analysis(program, options)
