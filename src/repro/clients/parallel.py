"""Loop parallelizer client (§7, Table 3).

The paper's first use of points-to information: the SUIF parallelizer asks
whether *formal parameters can be aliased* and then applies standard
loop-parallelization analyses (induction variables, data dependence) to
numeric C programs.  This module reproduces that client:

* loop discovery over the pycparser AST (``for`` loops with a recognizable
  induction variable, plus ``while`` loops rewritable to ``for`` form —
  one of the paper's C-specific passes);
* array-access extraction, including pointer-based accesses rewritten as
  array index calculations (the paper's other C-specific pass);
* a dependence test: a loop parallelizes when every written location is
  indexed by the induction variable (distinct elements per iteration),
  scalars are private or reductions, there are no unknown calls, and —
  the pointer-analysis part — no two accessed base pointers may alias;
* a per-loop *work estimate* used by the machine model to compute the
  Table 3 columns (% parallel, average time per loop, speedups).

The alias questions are answered by the Wilson-Lam analysis through
:class:`repro.analysis.results.AnalysisResult`; passing an Andersen result
instead shows how imprecision suppresses parallelization (ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Union

from pycparser import c_ast

from ..frontend.parser import parse_c_source
from ..frontend.typebuild import TypeBuilder

__all__ = ["LoopInfo", "ProcedureLoops", "Parallelizer", "AliasOracle"]

#: functions with no memory side effects: calls to these don't block
#: parallelization
PURE_FUNCTIONS = {
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh",
    "tanh", "exp", "log", "log10", "pow", "sqrt", "ceil", "floor", "fabs",
    "fmod", "abs", "labs", "ldexp",
}


class AliasOracle(Protocol):
    """The question the parallelizer asks a pointer analysis (§7)."""

    def may_alias(self, proc_name: str, var_a: str, var_b: str) -> bool: ...


@dataclass
class ArrayAccess:
    """One subscripted access within a loop body."""

    base: str  # the array or pointer variable
    index_var: Optional[str]  # the induction variable, when subscript == it
    is_affine: bool  # subscript is the induction var (+ constant)
    is_write: bool
    via_pointer: bool = False


@dataclass
class LoopInfo:
    """One analyzed loop."""

    proc: str
    line: int
    induction_var: Optional[str]
    iterations: Optional[int]
    accesses: list[ArrayAccess] = field(default_factory=list)
    reductions: set[str] = field(default_factory=set)
    private_scalars: set[str] = field(default_factory=set)
    #: abstract operation count of one iteration (work estimate)
    ops_per_iteration: int = 1
    has_call: bool = False
    has_io: bool = False
    nested_depth: int = 0
    parallel: bool = False
    reason: str = ""

    @property
    def work(self) -> int:
        """Total abstract work of one invocation of this loop."""
        iters = self.iterations if self.iterations is not None else 100
        return max(1, iters * self.ops_per_iteration)


@dataclass
class ProcedureLoops:
    proc: str
    loops: list[LoopInfo] = field(default_factory=list)


class Parallelizer:
    """Analyze the loops of a C program using a pointer-analysis oracle."""

    def __init__(self, source: str, alias_oracle: Optional[AliasOracle] = None,
                 filename: str = "<input>") -> None:
        self.source = source
        self.alias = alias_oracle
        self.ast = parse_c_source(source, filename)
        self.types = TypeBuilder()
        self.results: list[ProcedureLoops] = []

    # ------------------------------------------------------------------

    def run(self) -> list[ProcedureLoops]:
        self.results = []
        for ext in self.ast.ext:
            if isinstance(ext, c_ast.Typedef):
                self.types.add_typedef(ext.name, ext.type)
            if isinstance(ext, c_ast.FuncDef):
                proc = ProcedureLoops(ext.decl.name)
                self._walk_stmt(ext.body, proc, depth=0)
                self.results.append(proc)
        return self.results

    def all_loops(self) -> list[LoopInfo]:
        return [l for p in self.results for l in p.loops]

    def parallel_loops(self) -> list[LoopInfo]:
        return [l for l in self.all_loops() if l.parallel]

    # ------------------------------------------------------------------
    # loop discovery
    # ------------------------------------------------------------------

    def _walk_stmt(self, node: Optional[c_ast.Node], proc: ProcedureLoops, depth: int) -> None:
        if node is None:
            return
        if isinstance(node, c_ast.For):
            loop = self._analyze_for(node, proc.proc, depth)
            proc.loops.append(loop)
            self._walk_stmt(node.stmt, proc, depth + 1)
            return
        if isinstance(node, c_ast.While):
            rewritten = self._rewrite_while(node, proc.proc, depth)
            if rewritten is not None:
                proc.loops.append(rewritten)
            self._walk_stmt(node.stmt, proc, depth + 1)
            return
        if isinstance(node, c_ast.DoWhile):
            self._walk_stmt(node.stmt, proc, depth + 1)
            return
        for _, child in node.children():
            if isinstance(child, (c_ast.Compound, c_ast.If, c_ast.Switch,
                                  c_ast.Case, c_ast.Default, c_ast.Label)):
                self._walk_stmt(child, proc, depth)
            elif isinstance(child, (c_ast.For, c_ast.While, c_ast.DoWhile)):
                self._walk_stmt(child, proc, depth)
            elif isinstance(child, c_ast.Node) and isinstance(
                node, (c_ast.Compound, c_ast.If, c_ast.Case, c_ast.Default,
                       c_ast.Label, c_ast.Switch)
            ):
                self._walk_stmt(child, proc, depth)

    # ------------------------------------------------------------------
    # for-loop analysis
    # ------------------------------------------------------------------

    def _analyze_for(self, node: c_ast.For, proc: str, depth: int) -> LoopInfo:
        line = node.coord.line if node.coord else 0
        ind = self._induction_variable(node)
        iters = self._iteration_count(node, ind)
        loop = LoopInfo(
            proc=proc, line=line, induction_var=ind, iterations=iters,
            nested_depth=depth,
        )
        self._scan_body(node.stmt, loop)
        self._decide(loop)
        return loop

    def _rewrite_while(self, node: c_ast.While, proc: str, depth: int) -> Optional[LoopInfo]:
        """``while (i < N) { ... i++; }`` rewrites to ``for`` form (§7)."""
        cond = node.cond
        if not (isinstance(cond, c_ast.BinaryOp) and cond.op in ("<", "<=", "!=")):
            return None
        if not isinstance(cond.left, c_ast.ID):
            return None
        var = cond.left.name
        # find a trailing i++/i += 1 in the body
        body = node.stmt
        stmts = body.block_items or [] if isinstance(body, c_ast.Compound) else [body]
        bumps = [
            s
            for s in stmts
            if isinstance(s, c_ast.UnaryOp)
            and s.op in ("p++", "++", "p--", "--")
            and isinstance(s.expr, c_ast.ID)
            and s.expr.name == var
        ]
        if not bumps:
            return None
        line = node.coord.line if node.coord else 0
        bound = self.types.try_const_value(cond.right)
        loop = LoopInfo(
            proc=proc, line=line, induction_var=var, iterations=bound,
            nested_depth=depth,
        )
        self._scan_body(node.stmt, loop, skip=set(map(id, bumps)))
        self._decide(loop)
        return loop

    def _induction_variable(self, node: c_ast.For) -> Optional[str]:
        nxt = node.next
        if isinstance(nxt, c_ast.UnaryOp) and nxt.op in ("p++", "++", "p--", "--"):
            if isinstance(nxt.expr, c_ast.ID):
                return nxt.expr.name
        if isinstance(nxt, c_ast.Assignment) and nxt.op in ("+=", "-="):
            if isinstance(nxt.lvalue, c_ast.ID):
                return nxt.lvalue.name
        return None

    def _iteration_count(self, node: c_ast.For, ind: Optional[str]) -> Optional[int]:
        if ind is None or node.cond is None:
            return None
        cond = node.cond
        if not isinstance(cond, c_ast.BinaryOp) or cond.op not in ("<", "<="):
            return None
        if not (isinstance(cond.left, c_ast.ID) and cond.left.name == ind):
            return None
        upper = self.types.try_const_value(cond.right)
        if upper is None:
            return None
        lower = 0
        init = node.init
        decls = []
        if isinstance(init, c_ast.DeclList):
            decls = init.decls
        if isinstance(init, c_ast.Assignment) and isinstance(init.lvalue, c_ast.ID):
            if init.lvalue.name == ind:
                lower = self.types.try_const_value(init.rvalue) or 0
        for d in decls:
            if d.name == ind and d.init is not None:
                lower = self.types.try_const_value(d.init) or 0
        count = upper - lower + (1 if cond.op == "<=" else 0)
        return max(count, 0)

    # ------------------------------------------------------------------
    # body scanning
    # ------------------------------------------------------------------

    def _scan_body(self, node: Optional[c_ast.Node], loop: LoopInfo,
                   skip: Optional[set] = None) -> None:
        if node is None or (skip and id(node) in skip):
            return
        if isinstance(node, c_ast.For):
            # a nested loop multiplies its body's work by its trip count,
            # and its accesses participate in the parent's dependence test
            inner = LoopInfo(
                proc=loop.proc,
                line=node.coord.line if node.coord else 0,
                induction_var=self._induction_variable(node),
                iterations=None,
            )
            inner.iterations = self._iteration_count(node, inner.induction_var)
            self._scan_body(node.stmt, inner, skip)
            iters = inner.iterations if inner.iterations is not None else 100
            loop.ops_per_iteration += max(1, iters) * max(1, inner.ops_per_iteration)
            loop.has_call = loop.has_call or inner.has_call
            loop.has_io = loop.has_io or inner.has_io
            loop.private_scalars |= inner.private_scalars
            for a in inner.accesses:
                if a.is_write and a.base in loop.private_scalars:
                    # written through a pointer assigned fresh each outer
                    # iteration (e.g. double *w = matrix[h]): the rows are
                    # disjoint per iteration; keep the base visible to the
                    # alias oracle as a read
                    loop.accesses.append(
                        ArrayAccess(a.base, None, False, False, a.via_pointer)
                    )
                elif a.index_var == loop.induction_var:
                    loop.accesses.append(a)
                elif a.is_write:
                    # written range independent of the outer variable: the
                    # same elements are touched every outer iteration
                    loop.accesses.append(
                        ArrayAccess(a.base, None, False, True, a.via_pointer)
                    )
                else:
                    loop.accesses.append(a)
            return
        if isinstance(node, c_ast.While):
            inner = LoopInfo(proc=loop.proc, line=0, induction_var=None, iterations=None)
            self._scan_body(node.stmt, inner, skip)
            loop.ops_per_iteration += 100 * max(1, inner.ops_per_iteration)
            loop.has_call = loop.has_call or inner.has_call
            loop.has_io = loop.has_io or inner.has_io
            loop.accesses.extend(inner.accesses)
            return
        if isinstance(node, c_ast.Assignment):
            loop.ops_per_iteration += 1
            self._record_write(node.lvalue, loop)
            if node.op != "=" and isinstance(node.lvalue, c_ast.ID):
                # x += expr: reduction candidate
                loop.reductions.add(node.lvalue.name)
            self._scan_expr(node.rvalue, loop)
            return
        if isinstance(node, c_ast.Decl):
            if node.name:
                loop.private_scalars.add(node.name)
            if node.init is not None:
                self._scan_expr(node.init, loop)
            return
        if isinstance(node, c_ast.FuncCall):
            name = node.name.name if isinstance(node.name, c_ast.ID) else None
            if name in PURE_FUNCTIONS or self._oracle_pure(name):
                loop.ops_per_iteration += 4  # side-effect-free call cost
            elif name in ("printf", "fprintf", "puts", "putchar", "fputs"):
                loop.has_io = True
            else:
                loop.has_call = True
            if node.args:
                for a in node.args.exprs:
                    self._scan_expr(a, loop)
            return
        if isinstance(node, c_ast.UnaryOp) and node.op in ("p++", "++", "p--", "--"):
            if isinstance(node.expr, c_ast.ID):
                loop.private_scalars.add(node.expr.name)
            loop.ops_per_iteration += 1
            return
        for _, child in node.children():
            self._scan_body(child, loop, skip)

    def _scan_expr(self, node: Optional[c_ast.Node], loop: LoopInfo) -> None:
        if node is None:
            return
        if isinstance(node, c_ast.ArrayRef):
            self._record_access(node, loop, is_write=False)
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            self._record_deref(node, loop, is_write=False)
        if isinstance(node, c_ast.BinaryOp):
            loop.ops_per_iteration += 1
        if isinstance(node, c_ast.FuncCall):
            self._scan_body(node, loop)
            return
        for _, child in node.children():
            self._scan_expr(child, loop)

    def _record_write(self, lval: c_ast.Node, loop: LoopInfo) -> None:
        if isinstance(lval, c_ast.ID):
            loop.private_scalars.add(lval.name)
            return
        if isinstance(lval, c_ast.ArrayRef):
            self._record_access(lval, loop, is_write=True)
            return
        if isinstance(lval, c_ast.UnaryOp) and lval.op == "*":
            self._record_deref(lval, loop, is_write=True)
            return
        if isinstance(lval, c_ast.StructRef):
            # s.f / p->f writes: treat the base as the accessed object
            base = lval.name
            while isinstance(base, c_ast.StructRef):
                base = base.name
            if isinstance(base, c_ast.ID):
                loop.accesses.append(
                    ArrayAccess(base.name, None, False, True, via_pointer=lval.type == "->")
                )

    def _record_access(self, ref: c_ast.ArrayRef, loop: LoopInfo, is_write: bool) -> None:
        base = ref.name
        while isinstance(base, c_ast.ArrayRef):
            base = base.name
        if not isinstance(base, c_ast.ID):
            return
        sub = ref.subscript
        index_var = None
        affine = False
        if isinstance(sub, c_ast.ID):
            index_var = sub.name
            affine = index_var == loop.induction_var
        elif isinstance(sub, c_ast.BinaryOp) and sub.op in ("+", "-"):
            # i + c / c + i
            for side, other in ((sub.left, sub.right), (sub.right, sub.left)):
                if (
                    isinstance(side, c_ast.ID)
                    and side.name == loop.induction_var
                    and self.types.try_const_value(other) is not None
                ):
                    index_var = side.name
                    affine = True
        elif self.types.try_const_value(sub) is not None:
            affine = False  # constant subscript: same cell every iteration
        loop.accesses.append(ArrayAccess(base.name, index_var, affine, is_write))
        # also scan the subscript for nested accesses
        self._scan_expr(sub, loop)

    def _record_deref(self, deref: c_ast.UnaryOp, loop: LoopInfo, is_write: bool) -> None:
        """``*p`` and ``*(p + i)``: pointer accesses rewritten as indexed
        accesses when the offset is the induction variable (§7)."""
        inner = deref.expr
        if isinstance(inner, c_ast.ID):
            loop.accesses.append(
                ArrayAccess(inner.name, None, False, is_write, via_pointer=True)
            )
            return
        if isinstance(inner, c_ast.BinaryOp) and inner.op == "+":
            for side, other in ((inner.left, inner.right), (inner.right, inner.left)):
                if isinstance(side, c_ast.ID) and isinstance(other, c_ast.ID):
                    if other.name == loop.induction_var:
                        loop.accesses.append(
                            ArrayAccess(side.name, other.name, True, is_write, True)
                        )
                        return
        # unknown pointer expression
        loop.accesses.append(ArrayAccess("<unknown>", None, False, is_write, True))

    def _oracle_pure(self, name: Optional[str]) -> bool:
        if name is None or self.alias is None:
            return False
        checker = getattr(self.alias, "is_pure", None)
        if checker is None:
            return False
        try:
            return bool(checker(name))
        except (KeyError, RecursionError):
            return False

    # ------------------------------------------------------------------
    # the decision
    # ------------------------------------------------------------------

    def _decide(self, loop: LoopInfo) -> None:
        if loop.induction_var is None:
            loop.reason = "no induction variable"
            return
        if loop.has_call:
            loop.reason = "calls unknown procedure"
            return
        if loop.has_io:
            loop.reason = "performs I/O"
            return
        writes = [a for a in loop.accesses if a.is_write]
        if not writes:
            # a pure reduction/scan loop: parallel if reductions only
            loop.parallel = True
            loop.reason = "no memory writes"
            return
        for w in writes:
            if w.base == "<unknown>":
                loop.reason = "write through unanalyzable pointer"
                return
            if not w.is_affine:
                loop.reason = f"write to {w.base} not indexed by induction variable"
                return
        # the pointer-analysis question: may two accessed bases alias?
        bases = sorted({a.base for a in loop.accesses if a.base != "<unknown>"})
        if self.alias is not None:
            for i, a in enumerate(bases):
                for b in bases[i + 1 :]:
                    try:
                        aliased = self.alias.may_alias(loop.proc, a, b)
                    except KeyError:
                        aliased = True
                    if aliased:
                        loop.reason = f"{a} may alias {b}"
                        return
        loop.parallel = True
        loop.reason = "independent iterations"
