"""Clients of the pointer analysis (§7): loop parallelization + machine model."""

from .deadstore import DeadStoreAnalysis, StoreInfo, find_dead_stores, find_redundant_loads
from .machine import LoopTiming, MachineModel, ProgramTiming
from .parallel import AliasOracle, ArrayAccess, LoopInfo, Parallelizer, ProcedureLoops

__all__ = [
    "Parallelizer",
    "LoopInfo",
    "ArrayAccess",
    "ProcedureLoops",
    "AliasOracle",
    "MachineModel",
    "DeadStoreAnalysis",
    "StoreInfo",
    "find_dead_stores",
    "find_redundant_loads",
    "ProgramTiming",
    "LoopTiming",
]
