"""Dead-store and redundant-load detection — a second optimizer client.

The paper's §7 notes that "points-to information is useful for many
different compiler passes"; loop parallelization is the one it evaluates.
This module demonstrates the class of scalar optimizations the SUIF system
aimed the analysis at:

* a **dead store** is a store through a pointer that is definitely
  overwritten (strongly updated) before any possible read — detectable
  only when the analysis can prove the two stores hit the *same unique
  location* and no intervening load may alias it;
* a **redundant load** is a second read through a pointer whose target
  cannot have changed since the previous read — requires proving that no
  intervening store may alias the loaded location.

Both queries reduce to may-alias tests over the points-to results; their
hit rate is a direct measure of analysis precision (an always-may-alias
oracle finds nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..frontend.ctypes_model import WORD_SIZE
from ..analysis.intra import ProcEvaluator
from ..analysis.context import Frame
from ..analysis.ptf import ParamMap
from ..analysis.results import AnalysisResult
from ..ir.expr import ContentsTerm, DerefLoc, SymbolLoc
from ..ir.nodes import AssignNode, CallNode, Node
from ..memory.locset import LocationSet

__all__ = ["StoreInfo", "DeadStoreAnalysis", "find_dead_stores", "find_redundant_loads"]


@dataclass
class StoreInfo:
    """One optimization finding."""

    proc: str
    node: Node
    kind: str  # "dead-store" | "redundant-load"
    coord: Optional[str]
    detail: str

    def __str__(self) -> str:
        where = self.coord or f"node#{self.node.uid}"
        return f"{self.kind} in {self.proc} at {where}: {self.detail}"


class DeadStoreAnalysis:
    """Per-procedure scan driven by a finished pointer analysis."""

    def __init__(self, result: AnalysisResult) -> None:
        self.result = result
        self.analyzer = result.analyzer

    # ------------------------------------------------------------------

    def _targets(self, ptf, proc, node, loc_expr) -> list[LocationSet]:
        frame = Frame(
            self.analyzer, proc, ptf, ptf.current_map or ParamMap(),
            None, self.analyzer.root,
        )
        evaluator = ProcEvaluator(self.analyzer, frame)
        try:
            return evaluator.eval_loc(loc_expr, node)
        except Exception:
            return []

    @staticmethod
    def _may_touch(a: list[LocationSet], b: list[LocationSet]) -> bool:
        for la in a:
            for lb in b:
                if la.base is lb.base and la.overlaps(lb, width=WORD_SIZE, other_width=WORD_SIZE):
                    return True
        return False

    def _walk_straight_line(self, proc):
        """Yield runs of consecutive assign/call nodes with single-entry
        single-exit structure (no joins in between)."""
        run: list[Node] = []
        for node in proc.nodes():
            if isinstance(node, (AssignNode, CallNode)) and len(node.preds) == 1:
                run.append(node)
            else:
                if len(run) > 1:
                    yield run
                run = []
        if len(run) > 1:
            yield run

    # ------------------------------------------------------------------

    def dead_stores(self) -> list[StoreInfo]:
        """Stores to a unique location overwritten before any aliasing use."""
        findings: list[StoreInfo] = []
        for name, proc in self.result.program.procedures.items():
            for ptf in self.result.ptfs_of(name):
                for run in self._walk_straight_line(proc):
                    findings.extend(self._dead_in_run(name, proc, ptf, run))
        return findings

    def _dead_in_run(self, name, proc, ptf, run) -> list[StoreInfo]:
        out: list[StoreInfo] = []
        for i, node in enumerate(run):
            if not isinstance(node, AssignNode) or node.dst is None:
                continue
            dsts = self._targets(ptf, proc, node, node.dst)
            if len(dsts) != 1 or not dsts[0].is_unique:
                continue
            # does a later node in the run overwrite it before any read?
            for later in run[i + 1:]:
                if isinstance(later, CallNode):
                    break  # the call may read anything
                if later.dst is None:
                    break
                reads = self._reads_of(ptf, proc, later)
                if self._may_touch(dsts, reads):
                    break
                later_dsts = self._targets(ptf, proc, later, later.dst)
                if (
                    len(later_dsts) == 1
                    and later_dsts[0] == dsts[0]
                    and later.size >= node.size
                ):
                    out.append(
                        StoreInfo(
                            name, node, "dead-store", node.coord,
                            f"value stored to {dsts[0]} is overwritten "
                            f"before any aliasing read",
                        )
                    )
                    break
        return out

    def _reads_of(self, ptf, proc, node: AssignNode) -> list[LocationSet]:
        """Every location the node may read: direct loads plus every
        pointer cell dereferenced along the way (``**pp`` reads both pp's
        cell and the cell it points at)."""
        reads: list[LocationSet] = []

        def from_loc(loc_expr) -> None:
            if isinstance(loc_expr, DerefLoc):
                for term in loc_expr.pointer.terms:
                    if isinstance(term, ContentsTerm):
                        from_loc(term.loc)
                        reads.extend(self._targets(ptf, proc, node, term.loc))

        for term in node.src.terms:
            if isinstance(term, ContentsTerm):
                from_loc(term.loc)
                reads.extend(self._targets(ptf, proc, node, term.loc))
        # pointer cells read while computing a dereferenced destination
        if isinstance(node.dst, DerefLoc):
            from_loc(node.dst)
        return reads

    # ------------------------------------------------------------------

    def redundant_loads(self) -> list[StoreInfo]:
        """Second loads of a location no intervening store may change."""
        findings: list[StoreInfo] = []
        for name, proc in self.result.program.procedures.items():
            for ptf in self.result.ptfs_of(name):
                for run in self._walk_straight_line(proc):
                    findings.extend(self._redundant_in_run(name, proc, ptf, run))
        return findings

    def _redundant_in_run(self, name, proc, ptf, run) -> list[StoreInfo]:
        out: list[StoreInfo] = []
        loads: list[tuple[int, list[LocationSet]]] = []
        for i, node in enumerate(run):
            if isinstance(node, CallNode):
                loads.clear()
                continue
            assert isinstance(node, AssignNode)
            node_reads = self._reads_of(ptf, proc, node)
            # check against previous loads
            for j, prev_reads in loads:
                if prev_reads and node_reads and all(
                    any(r == p for p in prev_reads) for r in node_reads
                ):
                    # all current reads repeat previous ones; any store in
                    # between must not alias them
                    killed = False
                    for mid in run[j + 1 : i]:
                        if not isinstance(mid, AssignNode) or mid.dst is None:
                            killed = True
                            break
                        mid_dsts = self._targets(ptf, proc, mid, mid.dst)
                        if self._may_touch(mid_dsts, node_reads):
                            killed = True
                            break
                    if not killed:
                        out.append(
                            StoreInfo(
                                name, node, "redundant-load", node.coord,
                                f"reloads {', '.join(map(str, node_reads))} "
                                f"unchanged since an earlier load",
                            )
                        )
                        break
            if node_reads:
                loads.append((i, node_reads))
        return out


def find_dead_stores(result: AnalysisResult) -> list[StoreInfo]:
    """All dead stores the pointer analysis can prove."""
    return DeadStoreAnalysis(result).dead_stores()


def find_redundant_loads(result: AnalysisResult) -> list[StoreInfo]:
    """All provably redundant loads."""
    return DeadStoreAnalysis(result).redundant_loads()
