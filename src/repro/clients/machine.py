"""Deterministic multiprocessor cost model (Table 3 substrate).

The paper measured parallelized ``alvinn`` and ``ear`` on an SGI 4D/380.
We cannot run on that machine, so this module provides the substitution
documented in DESIGN.md: a parameterized shared-memory multiprocessor model
that exhibits the same *mechanisms* the paper discusses —

* speedup follows Amdahl's law over the parallel fraction;
* each parallel loop invocation pays a fixed fork/barrier overhead, so
  loops with *small granularity* (tiny sequential time per invocation)
  scale poorly — the paper's explanation for ``ear``'s 1.63 on 4 CPUs;
* fine-grained loops suffer *false sharing*: when per-iteration work is
  small, adjacent elements written by different processors share cache
  lines and the model charges a coherence penalty — the paper names this
  as ``ear``'s other limiter.

All quantities are deterministic functions of the loop structure reported
by :class:`repro.clients.parallel.Parallelizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .parallel import LoopInfo

__all__ = ["MachineModel", "ProgramTiming", "LoopTiming"]


@dataclass
class LoopTiming:
    """Modelled timing of one loop."""

    loop: LoopInfo
    invocations: int
    seq_time_per_invocation_ms: float
    parallel: bool

    @property
    def total_seq_ms(self) -> float:
        return self.seq_time_per_invocation_ms * self.invocations


@dataclass
class ProgramTiming:
    """The Table 3 row for one program."""

    name: str
    percent_parallel: float
    avg_time_per_loop_ms: float
    speedups: dict[int, float] = field(default_factory=dict)

    def row(self) -> tuple:
        return (
            self.name,
            round(self.percent_parallel, 1),
            round(self.avg_time_per_loop_ms, 1),
            round(self.speedups.get(2, 1.0), 2),
            round(self.speedups.get(4, 1.0), 2),
        )


@dataclass
class MachineModel:
    """A bus-based shared-memory multiprocessor, early-90s parameters."""

    #: time per abstract loop operation (ms) — scalar FP pipeline
    op_time_ms: float = 0.0004
    #: fork + barrier cost per parallel loop invocation per processor (ms)
    fork_barrier_ms: float = 0.035
    #: coherence penalty factor charged to fine-grained loops (false sharing)
    false_sharing_ms: float = 0.04
    #: per-invocation work (ms) below which false sharing bites hard
    fine_grain_threshold_ms: float = 1.0
    #: fraction of program time outside any analyzed loop
    serial_overhead_fraction: float = 0.02

    # ------------------------------------------------------------------

    def loop_timing(self, loop: LoopInfo, invocations: int = 1) -> LoopTiming:
        seq = loop.work * self.op_time_ms
        return LoopTiming(loop, invocations, seq, loop.parallel)

    def time_program(
        self,
        name: str,
        loops: Iterable[LoopInfo],
        invocations: Optional[dict[int, int]] = None,
        processors: Iterable[int] = (2, 4),
    ) -> ProgramTiming:
        """Model the Table 3 columns for one program.

        ``invocations`` maps a loop's source line to how many times the
        loop runs (workload-dependent; benchmarks supply it).
        """
        invocations = invocations or {}
        timings = [
            self.loop_timing(l, invocations.get(l.line, 1)) for l in loops
        ]
        total_loop_ms = sum(t.total_seq_ms for t in timings)
        serial_ms = total_loop_ms * self.serial_overhead_fraction / (
            1.0 - self.serial_overhead_fraction
        ) if total_loop_ms else 1.0
        total_ms = total_loop_ms + serial_ms

        parallel_ms = sum(t.total_seq_ms for t in timings if t.parallel)
        percent_parallel = 100.0 * parallel_ms / total_ms if total_ms else 0.0

        par = [t for t in timings if t.parallel]
        if par:
            invs = sum(t.invocations for t in par)
            avg_ms = sum(t.total_seq_ms for t in par) / max(invs, 1)
        else:
            avg_ms = 0.0

        speedups = {
            p: self._speedup(timings, serial_ms, p) for p in processors
        }
        return ProgramTiming(name, percent_parallel, avg_ms, speedups)

    # ------------------------------------------------------------------

    def _speedup(self, timings: list[LoopTiming], serial_ms: float, procs: int) -> float:
        seq_total = serial_ms + sum(t.total_seq_ms for t in timings)
        par_total = serial_ms
        for t in timings:
            if not t.parallel:
                par_total += t.total_seq_ms
                continue
            per_inv = t.seq_time_per_invocation_ms
            body = per_inv / procs
            overhead = self.fork_barrier_ms * (1.0 + 0.25 * (procs - 2))
            if per_inv < self.fine_grain_threshold_ms:
                # adjacent iterations on different processors share cache
                # lines; the penalty grows with processor count
                overhead += self.false_sharing_ms * procs
            par_total += (body + overhead) * t.invocations
        return seq_total / par_total if par_total else 1.0
