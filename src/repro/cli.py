"""Command-line interface.

::

    python -m repro analyze prog.c [more.c ...] [--points-to VAR] [--ptfs PROC]
    python -m repro analyze prog.c --trace-json trace.json   # Perfetto-loadable
    python -m repro explain prog.c --query VAR[@PROC]        # why does p -> x?
    python -m repro callgraph prog.c
    python -m repro compare prog.c --var VAR        # WL vs Andersen vs Steensgaard
    python -m repro table2 [--names a,b,c] [--json]
    python -m repro table3
    python -m repro parallelize prog.c
    python -m repro snapshot prog.c -o run.json      # canonical run snapshot
    python -m repro diff old.json new.json --fail-on precision-loss,perf:5%
    python -m repro analyze --jobs 4 a.c b.c c.c --snapshot-dir snaps/
    python -m repro index prog.c -o prog.store.json  # analyze once...
    python -m repro index --jobs 4 a.c b.c -o stores/  # one store per file
    python -m repro query prog.store.json "points-to p@main" "alias a b"
    python -m repro serve prog.store.json --tcp 127.0.0.1:0   # ...ask many
    python -m repro serve prog.store.json --access-log access.jsonl
    python -m repro loadtest prog.store.json --clients 64 --record
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .analysis.engine import AnalyzerOptions
from .analysis.guards import GuardTripped
from .analysis.results import run_analysis
from .frontend.parser import ParseError, load_project_files
from .frontend.typebuild import FrontendError
from .ioutil import out_stream, write_text

__all__ = ["main"]

#: exit-code convention: 0 clean, 2 hard error (nothing analyzable /
#: strict-mode abort), 4 partial results (analysis finished but the
#: degradation report is non-empty — some summaries are conservative)
EXIT_OK = 0
EXIT_ERROR = 2
EXIT_PARTIAL = 4


def _options_from(args: argparse.Namespace) -> AnalyzerOptions:
    opts = AnalyzerOptions(
        state_kind=args.state,
        external_policy=args.external,
        strong_updates=not args.no_strong_updates,
        heap_context_depth=args.heap_context,
        lookup_cache=not args.no_lookup_cache,
    )
    if getattr(args, "trace_json", None) or getattr(args, "trace_jsonl", None):
        from .diagnostics import Tracer

        opts.trace = Tracer()
    if getattr(args, "provenance", False):
        opts.provenance = True
    # resource budget / degradation knobs (docs/ROBUSTNESS.md)
    if getattr(args, "deadline", None) is not None:
        opts.deadline_seconds = args.deadline
    if getattr(args, "max_passes", None) is not None:
        opts.max_passes = args.max_passes
    if getattr(args, "max_call_depth", None) is not None:
        opts.max_call_depth = args.max_call_depth
    if getattr(args, "max_ptfs", None) is not None:
        opts.max_ptfs_total = args.max_ptfs
    if getattr(args, "max_state_entries", None) is not None:
        opts.max_state_entries = args.max_state_entries
    if getattr(args, "strict", False):
        opts.strict = True
    if getattr(args, "inject_faults", None):
        from .diagnostics.faults import FaultPlan

        opts.faults = FaultPlan.from_spec(args.inject_faults)
    return opts


def _add_analysis_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--state", choices=["sparse", "dense"], default="sparse",
                   help="points-to state representation (default: sparse)")
    p.add_argument("--external", choices=["havoc", "ignore"], default="havoc",
                   help="policy for unknown external functions")
    p.add_argument("--no-strong-updates", action="store_true",
                   help="disable strong updates (ablation)")
    p.add_argument("--heap-context", type=int, default=0, metavar="K",
                   help="heap naming call-chain depth (default 0: site only)")
    p.add_argument("--no-lookup-cache", action="store_true",
                   help="disable the sparse lookup memoization (debugging / "
                        "benchmark baseline; results are bit-identical)")
    g = p.add_argument_group(
        "robustness", "resource budgets and graceful degradation "
                      "(see docs/ROBUSTNESS.md; exit code 4 = partial result)")
    g.add_argument("--deadline", type=float, metavar="SECONDS",
                   help="wall-clock budget; on expiry remaining work is "
                        "summarized conservatively instead of aborting")
    g.add_argument("--max-passes", type=int, metavar="N",
                   help="per-procedure fixpoint pass budget (default 200)")
    g.add_argument("--max-call-depth", type=int, metavar="N",
                   help="analysis call-stack depth budget (default 200)")
    g.add_argument("--max-ptfs", type=int, metavar="N",
                   help="global PTF-count cap; above it new contexts merge "
                        "into existing PTFs (§8 generalization)")
    g.add_argument("--max-state-entries", type=int, metavar="N",
                   help="per-procedure points-to state size cap")
    g.add_argument("--strict", action="store_true",
                   help="disable graceful degradation: guard trips and "
                        "frontend faults abort with an error (exit 2)")
    g.add_argument("--inject-faults", metavar="SPEC",
                   help="deterministic fault injection for testing, e.g. "
                        "'seed=7,parse=0.2,exhaust=qsort;lookup,"
                        "nonconverge=0.05' (sites: parse, exhaust, "
                        "nonconverge; values are rates or ;-joined names)")


def _report_degradation(report) -> None:
    """One line per quarantine/degradation on stderr (grep-friendly)."""
    for line in report.summary_lines():
        print(f"repro: {line}", file=sys.stderr)


# the one '-'-means-stdout convention, shared by every JSON-emitting
# flag (--stats-json, --trace-json[l], explain --json, query -o, serve
# --access-log, loadtest -o); canonical home is repro.ioutil so non-CLI
# layers (the serve daemon, the load generator) compose with it too
_out_stream = out_stream
_write_text = write_text


def _emit_stats_json(args: argparse.Namespace, analyzer) -> None:
    """Write the metrics snapshot when ``--stats-json`` was given.

    ``--stats-json`` (bare) writes to stdout; ``--stats-json PATH`` writes
    to the file at PATH.
    """
    dest = getattr(args, "stats_json", None)
    if dest is None:
        return
    _write_text(dest, json.dumps(analyzer.stats_dict(), indent=2, sort_keys=True))


def _emit_trace_json(args: argparse.Namespace, analyzer) -> None:
    """Write the collected trace when ``--trace-json``/``--trace-jsonl``
    was given.  Follows the ``--stats-json`` convention: ``-`` (or a bare
    flag) writes to stdout, anything else is a file path."""
    _emit_trace(args, analyzer.trace)


def _emit_trace(args: argparse.Namespace, tracer) -> None:
    if tracer is None:
        return
    dest = getattr(args, "trace_json", None)
    if dest is not None:
        with _out_stream(dest) as fh:
            tracer.write_chrome(fh)
    dest = getattr(args, "trace_jsonl", None)
    if dest is not None:
        with _out_stream(dest) as fh:
            tracer.write_jsonl(fh)


def _batch_tasks(args: argparse.Namespace, opts, build_store: bool = False):
    """One :class:`AnalysisTask` per FILE argument (``--jobs`` batch
    semantics: every file is its own whole program).  Duplicate basename
    stems are disambiguated positionally so per-program output files
    never collide."""
    import os

    from .analysis.parallel import AnalysisTask, options_payload

    payload = options_payload(opts)
    seen: dict[str, int] = {}
    tasks = []
    for path in args.files:
        stem = os.path.splitext(os.path.basename(path))[0]
        n = seen.get(stem, 0)
        seen[stem] = n + 1
        name = stem if n == 0 else f"{stem}.{n}"
        tasks.append(
            AnalysisTask(
                name=name,
                files=(path,),
                options=payload,
                build_store=build_store,
            )
        )
    return tasks


def _batch_status(batch) -> int:
    if batch.errors:
        return EXIT_ERROR
    if batch.partial:
        return EXIT_PARTIAL
    return EXIT_OK


def _print_batch_summary(batch) -> None:
    stats = batch.stats()
    print(
        f"batch: {stats['programs']} program(s), jobs {stats['jobs']}, "
        f"{stats['elapsed_seconds']:.3f}s wall "
        f"({stats['worker_seconds']:.3f}s in workers), "
        f"{stats['shards']} shard(s), {stats['recursive_shards']} recursive"
    )


def _analyze_batch(args: argparse.Namespace) -> int:
    """``repro analyze --jobs N``: every FILE is analyzed as its own
    program, fanned out over N worker processes, results merged in
    argument order (docs/PARALLEL.md)."""
    import os

    from .analysis.parallel import run_batch

    opts = _options_from(args)
    tasks = _batch_tasks(args, opts)
    profile_dest = getattr(args, "profile_parallel", None)
    if profile_dest is not None and opts.trace is None:
        # the observatory always merges worker lanes; --trace-json[l]
        # decides whether the merged trace is also written out
        from .diagnostics.trace import Tracer

        opts.trace = Tracer()
    batch = run_batch(
        tasks,
        jobs=args.jobs,
        tracer=opts.trace,
        profile=profile_dest is not None,
        worker_trace_dir=getattr(args, "worker_trace_dir", None),
    )
    for bundle in batch.results:
        name = bundle["name"]
        if bundle.get("error"):
            print(f"{name:<12} ERROR: {bundle['error']}")
            for fault in bundle.get("frontend_faults", []):
                print(f"repro: {name}: frontend fault: {fault}",
                      file=sys.stderr)
            continue
        plan = bundle["shard_plan"]
        print(
            f"{name:<12} digest {bundle['digest'][:16]}…  "
            f"procs {bundle['procedures']:>3}  "
            f"ptfs {bundle['total_ptfs']:>4}  "
            f"{bundle['analysis_seconds'] * 1000:>8.1f} ms  "
            f"shards {plan['shards']:>3} "
            f"(waves {plan['critical_path']}, width {plan['width']}, "
            f"recursive {plan['recursive_shards']})"
        )
        for line in bundle.get("degradation_lines", []):
            print(f"repro: {name}: {line}", file=sys.stderr)
    _print_batch_summary(batch)
    if getattr(args, "snapshot_dir", None):
        from .diagnostics.snapshot import write_snapshot

        os.makedirs(args.snapshot_dir, exist_ok=True)
        for bundle in batch.results:
            if bundle.get("error"):
                continue
            dest = os.path.join(
                args.snapshot_dir, f"{bundle['name']}.snapshot.json"
            )
            write_snapshot(bundle["snapshot"], dest)
            print(
                f"repro: snapshot {dest} digest {bundle['digest'][:16]}…",
                file=sys.stderr,
            )
    if profile_dest is not None:
        from .diagnostics.parprof import build_parallel_profile, write_profile

        doc = build_parallel_profile(batch)
        write_profile(doc, profile_dest)
        print(
            f"repro: parallel profile {profile_dest} "
            f"(measured {doc['measured_speedup']}x, theoretical "
            f"{doc['theoretical_speedup']}x, {len(batch.lanes)} worker "
            f"lane(s)); render with: repro parallel-report {profile_dest}",
            file=sys.stderr,
        )
    dest = getattr(args, "stats_json", None)
    if dest is not None:
        per_program = {}
        for bundle in batch.results:
            per_program[bundle["name"]] = {
                k: bundle[k]
                for k in (
                    "digest", "procedures", "total_ptfs", "avg_ptfs",
                    "analysis_seconds", "seconds", "shard_plan", "error",
                    "partial", "pid",
                )
                if k in bundle
            }
        payload = {"batch": batch.stats(), "programs": per_program}
        if batch.telemetry is not None:
            payload["telemetry"] = batch.telemetry.as_dict()
        _write_text(
            dest,
            json.dumps(payload, indent=2, sort_keys=True),
        )
    _emit_trace(args, opts.trace)
    return _batch_status(batch)


def _analyze_demand(args: argparse.Namespace) -> int:
    """``repro analyze --demand-root VAR@PROC``: print the demand slice
    for each root and answer its points-to query from a query-rooted
    analysis (the unreachable fast path never runs the fixpoint)."""
    from .analysis.demand import (
        DemandAnalysis,
        DemandEngine,
        fresh_analysis_state,
    )
    from .query import QueryError

    opts = _options_from(args)
    fresh_analysis_state()
    program = load_project_files(
        args.files, tolerant=not opts.strict, faults=opts.faults
    )
    analysis = DemandAnalysis(program, options=opts, tracer=opts.trace)
    engine = DemandEngine(analysis, sources=args.files)
    status = EXIT_OK
    for spec in args.demand_root:
        var, _, proc = spec.partition("@")
        proc = proc or "main"
        sl = analysis.slice_for(proc)
        if sl.reachable:
            print(
                f"demand slice {var}@{proc}: {len(sl.procs)}/"
                f"{len(program.procedures)} procedure(s), "
                f"{sl.shards} shard(s), "
                f"{len(sl.context_procs)} context proc(s)"
            )
        else:
            print(
                f"demand slice {var}@{proc}: unreachable from main — "
                "empty facts, no analysis"
            )
        try:
            answer = engine.query({"op": "points_to", "var": var, "proc": proc})
        except QueryError as exc:
            print(f"error: {spec!r}: {exc}", file=sys.stderr)
            status = EXIT_ERROR
            continue
        for line in _render_query_answer(answer):
            print(line)
    _emit_trace(args, opts.trace)
    if status == EXIT_OK and analysis.degraded():
        _report_degradation(analysis.run_result().degradation)
        return EXIT_PARTIAL
    return status


def cmd_analyze(args: argparse.Namespace) -> int:
    if getattr(args, "jobs", None) is not None:
        return _analyze_batch(args)
    if getattr(args, "demand_root", None):
        return _analyze_demand(args)
    opts = _options_from(args)
    program = load_project_files(
        args.files, tolerant=not opts.strict, faults=opts.faults
    )
    if "main" not in program.procedures:
        # nothing analyzable survived the frontend: hard error, with one
        # structured diagnostic line per dropped unit/procedure
        for fault in program.frontend_failures:
            print(f"repro: frontend fault: {fault.render()}", file=sys.stderr)
        print("error: no analyzable main procedure", file=sys.stderr)
        return EXIT_ERROR
    result = run_analysis(program, opts)
    stats = result.stats()
    print(f"program       : {program.name}")
    print(f"source lines  : {stats.source_lines}")
    print(f"procedures    : {stats.procedures}")
    print(f"analysis time : {stats.analysis_seconds * 1000:.1f} ms")
    print(f"total PTFs    : {stats.total_ptfs}")
    print(f"avg PTFs/proc : {stats.avg_ptfs:.2f}")
    for var in args.points_to or []:
        proc, _, name = var.rpartition(":")
        proc = proc or "main"
        targets = sorted(result.points_to_names(proc, name))
        print(f"points-to {proc}:{name} -> {targets}")
    for proc in args.ptfs or []:
        for ptf in result.ptfs_of(proc):
            print(ptf.describe())
    _emit_stats_json(args, result.analyzer)
    _emit_trace_json(args, result.analyzer)
    report = result.degradation
    if not report.ok:
        _report_degradation(report)
        return EXIT_PARTIAL
    return EXIT_OK


def _parse_query(query: str) -> tuple[str, str]:
    """``VAR[@PROC]`` -> ``(proc, var)``; PROC defaults to ``main``."""
    var, _, proc = query.partition("@")
    return (proc or "main", var)


def cmd_explain(args: argparse.Namespace) -> int:
    args.provenance = True
    program = load_project_files(args.files)
    result = run_analysis(program, _options_from(args))
    payloads = []
    status = 0
    for query in args.query:
        proc, var = _parse_query(query)
        try:
            explanations = result.explain(proc, var, max_depth=args.depth)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            status = 2
            continue
        payloads.append(
            {"query": query, "proc": proc, "var": var, "explanations": explanations}
        )
    if args.json:
        _write_text(
            getattr(args, "output", "-") or "-",
            json.dumps(payloads, indent=2, sort_keys=True),
        )
        _emit_trace_json(args, result.analyzer)
        return status
    prov = result.analyzer.provenance
    for payload in payloads:
        proc, var = payload["proc"], payload["var"]
        explanations = payload["explanations"]
        if not explanations:
            print(f"{proc}:{var} -> (no pointer values at exit)")
            continue
        seen: set[tuple] = set()
        for exp in explanations:
            # values differing only in offset/stride resolve to the same
            # display name and chain; print each distinct chain once
            key = (exp["display"], tuple(s["eid"] for s in exp["chain"]))
            if key in seen:
                continue
            seen.add(key)
            print(f"{proc}:{var} -> {exp['display']}   (PTF#{exp['ptf']})")
            if not exp["chain"]:
                print("    (no derivation on record: value predates the "
                      "analysis, e.g. a static initializer or synthetic input)")
                continue
            for step in exp["chain"]:
                rec = prov.records[step["eid"] - 1]
                print("    " + "  " * step["depth"] + rec.render())
    _emit_trace_json(args, result.analyzer)
    return status


def cmd_callgraph(args: argparse.Namespace) -> int:
    program = load_project_files(args.files)
    result = run_analysis(program, _options_from(args))
    graph = result.call_graph()
    for caller in sorted(graph):
        for callee in sorted(graph[caller]):
            print(f"{caller} -> {callee}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .baselines import andersen_analyze, steensgaard_analyze

    program = load_project_files(args.files)
    wl = run_analysis(program, _options_from(args))
    program2 = load_project_files(args.files)
    ai = andersen_analyze(program2)
    program3 = load_project_files(args.files)
    st = steensgaard_analyze(program3)
    proc, _, name = (args.var or "").rpartition(":")
    proc = proc or "main"
    print(f"{'analysis':<14} points-to {proc}:{name}")
    print(f"{'wilson-lam':<14} {sorted(wl.points_to_names(proc, name))}")
    print(f"{'andersen':<14} {sorted(ai.points_to_names(proc, name))}")
    print(f"{'steensgaard':<14} {sorted(st.points_to_names(proc, name))}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from .bench import table2_rows, table2_text

    names = args.names.split(",") if args.names else None
    rows = table2_rows(names=names)
    if args.json:
        print(json.dumps([r.as_dict() for r in rows], indent=2, sort_keys=True))
    else:
        print(table2_text(rows))
    if getattr(args, "record", None):
        from .bench import record_trajectory

        entry, drift = record_trajectory(rows, path=args.record)
        print(f"repro: recorded entry rev={entry['revision']} -> {args.record}",
              file=sys.stderr)
        for line in drift:
            print(f"repro: drift: {line}", file=sys.stderr)
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from .bench import table3_text

    print(table3_text())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the full paper-vs-measured comparison (EXPERIMENTS.md)."""
    from .bench import invocation_rows, table2_text, table3_text

    print("=" * 72)
    print("Wilson & Lam, PLDI 1995 — reproduction report")
    print("=" * 72)
    print()
    print(table2_text())
    print()
    print(table3_text())
    print()
    print("Invocation-graph comparison (the §7 Emami anecdote):")
    for row in invocation_rows(names=["compiler"]):
        ratio = row["invocation_nodes"] / max(row["total_ptfs"], 1)
        print(
            f"  {row['name']}: {row['procedures']} procedures, "
            f"{row['invocation_nodes']:,} invocation-graph nodes, "
            f"{row['total_ptfs']} PTFs ({ratio:,.0f}x)"
        )
    print()
    print("PTF reuse vs reanalysis-per-context (binary call DAG, depth 9):")
    from . import AnalyzerOptions, analyze_source

    parts = ["int g;", "void leaf(int *p) { g = *p; }",
             "void f0(int *p) { leaf(p); leaf(p); }"]
    for i in range(1, 9):
        parts.append(f"void f{i}(int *p) {{ f{i-1}(p); f{i-1}(p); }}")
    parts.append("int main(void) { int x; f8(&x); return 0; }")
    dag = "\n".join(parts)
    reuse = analyze_source(dag)
    emami = analyze_source(
        dag, options=AnalyzerOptions(reuse_ptfs=False, ptf_limit=1_000_000)
    )
    print(f"  with reuse : {reuse.stats().total_ptfs} PTFs")
    print(f"  per-context: {emami.stats().total_ptfs} PTFs")
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Analyze sources and emit the canonical run snapshot (JSON)."""
    from .diagnostics.snapshot import build_snapshot, write_snapshot

    opts = _options_from(args)
    if args.memory:
        opts.track_memory = True
    program = load_project_files(
        args.files, tolerant=not opts.strict, faults=opts.faults
    )
    if "main" not in program.procedures:
        for fault in program.frontend_failures:
            print(f"repro: frontend fault: {fault.render()}", file=sys.stderr)
        print("error: no analyzable main procedure", file=sys.stderr)
        return EXIT_ERROR
    result = run_analysis(program, opts)
    snap = build_snapshot(
        result,
        options=opts,
        program_name=args.name,
        include_solution=not args.no_solution,
    )
    write_snapshot(snap, args.output)
    if args.output != "-":
        digest = snap["digest"]["program"]
        print(f"repro: snapshot {args.output} digest {digest[:16]}…",
              file=sys.stderr)
    report = result.degradation
    if not report.ok:
        _report_degradation(report)
        return EXIT_PARTIAL
    return EXIT_OK


def cmd_diff(args: argparse.Namespace) -> int:
    """Compare two snapshots; classify + report drift, honoring --fail-on."""
    from .diagnostics.diff import diff_snapshots, parse_fail_on
    from .diagnostics.snapshot import load_snapshot

    try:
        fail_on = parse_fail_on(args.fail_on)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        old = load_snapshot(args.old)
        new = load_snapshot(args.new)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        report = diff_snapshots(
            old,
            new,
            perf_threshold=(
                fail_on.perf_threshold
                if fail_on.perf_threshold is not None
                else args.perf_threshold / 100.0
            ),
            mem_threshold=(
                fail_on.mem_threshold
                if fail_on.mem_threshold is not None
                else args.mem_threshold / 100.0
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"diff {report.old_program} -> {report.new_program}")
        for line in report.summary_lines():
            print(f"  {line}")
    failing = report.failed(fail_on)
    if failing:
        print(
            f"repro: drift gate failed on: {', '.join(sorted(failing))}",
            file=sys.stderr,
        )
        return 1
    return EXIT_OK


def cmd_parallelize(args: argparse.Namespace) -> int:
    from .clients import MachineModel, Parallelizer

    program = load_project_files(args.files)
    result = run_analysis(program, _options_from(args))
    with open(args.files[0]) as f:
        source = f.read()
    par = Parallelizer(source, alias_oracle=result, filename=args.files[0])
    par.run()
    for loop in par.all_loops():
        tag = "PARALLEL" if loop.parallel else "serial"
        print(f"{loop.proc}:{loop.line:<5} {tag:<9} {loop.reason}")
    timing = MachineModel().time_program("program", par.all_loops())
    _, pct, avg, s2, s4 = timing.row()
    print(f"-- {pct:.1f}% parallel, {avg:.2f} ms/loop, "
          f"speedups {s2:.2f} (2 CPU) / {s4:.2f} (4 CPU)")
    return 0


def _index_batch(args: argparse.Namespace) -> int:
    """``repro index --jobs N``: one store per FILE, built in worker
    processes; ``-o`` names the output *directory*."""
    import os

    from .analysis.parallel import run_batch
    from .query import write_store

    if args.output == "-":
        print("error: index --jobs requires -o DIR (a directory, "
              "one store per input file)", file=sys.stderr)
        return EXIT_ERROR
    opts = _options_from(args)
    tasks = _batch_tasks(args, opts, build_store=True)
    batch = run_batch(tasks, jobs=args.jobs, tracer=opts.trace)
    os.makedirs(args.output, exist_ok=True)
    for bundle in batch.results:
        name = bundle["name"]
        if bundle.get("error"):
            print(f"{name:<12} ERROR: {bundle['error']}")
            continue
        dest = os.path.join(args.output, f"{name}.store.json")
        write_store(bundle["store"], dest)
        n = len(bundle["store"]["index"]["procedures"])
        print(
            f"repro: indexed {name} ({n} procedure(s)) -> {dest}",
            file=sys.stderr,
        )
        for line in bundle.get("degradation_lines", []):
            print(f"repro: {name}: {line}", file=sys.stderr)
    _print_batch_summary(batch)
    _emit_trace(args, opts.trace)
    return _batch_status(batch)


def cmd_index(args: argparse.Namespace) -> int:
    """Analyze sources and write the persistent query store
    (``docs/QUERY.md``).  Repeated runs first check staleness by digest
    (:mod:`repro.query.invalidate`) and skip the analysis entirely when
    the store is still the solution of these sources."""
    from .query import build_store, compute_stale, load_store, write_store

    if getattr(args, "jobs", None) is not None:
        return _index_batch(args)
    opts = _options_from(args)
    program = load_project_files(
        args.files, tolerant=not opts.strict, faults=opts.faults
    )
    if "main" not in program.procedures:
        for fault in program.frontend_failures:
            print(f"repro: frontend fault: {fault.render()}", file=sys.stderr)
        print("error: no analyzable main procedure", file=sys.stderr)
        return EXIT_ERROR
    if not args.force and args.output != "-":
        try:
            old = load_store(args.output)
        except (OSError, ValueError, json.JSONDecodeError):
            old = None
        if old is not None:
            report = compute_stale(old, program)
            for line in report.summary_lines():
                print(f"repro: {line}", file=sys.stderr)
            if report.up_to_date:
                print(
                    f"repro: store {args.output} is up to date; "
                    "skipping re-analysis (--force to rebuild)",
                    file=sys.stderr,
                )
                return EXIT_OK
    result = run_analysis(program, opts)
    store = build_store(
        result, options=opts, program_name=args.name, sources=args.files
    )
    write_store(store, args.output)
    if args.output != "-":
        n = len(store["index"]["procedures"])
        print(
            f"repro: indexed {store['program']} "
            f"({n} procedure(s)) -> {args.output}",
            file=sys.stderr,
        )
    report = result.degradation
    if not report.ok:
        _report_degradation(report)
        return EXIT_PARTIAL
    return EXIT_OK


def _render_query_answer(answer: dict) -> list[str]:
    """Human-readable lines for one query answer (the --json form emits
    the answer dicts verbatim instead)."""
    op = answer["op"]
    if op == "points_to":
        head = (f"points-to {answer['var']}@{answer['proc']} -> "
                f"{answer['targets'] or '(nothing)'}")
        return [head, f"  explain: {answer['explain']}"]
    if op == "alias":
        lines = [f"alias {answer['a']} {answer['b']} @{answer['proc']} -> "
                 f"{answer['verdict']}"]
        if answer.get("witness"):
            w = answer["witness"]
            lines.append(f"  witness: both reach {w['block']} "
                         f"(PTF#{w['ptf']}, a={w['a']}, b={w['b']})")
        return lines
    if op == "pointed_by":
        pairs = ", ".join(f"{p}:{v}" for p, v in answer["pointers"])
        return [f"pointed-by {answer['name']} -> {pairs or '(nobody)'}"]
    if op == "modref":
        where = answer["proc"]
        if "line" in answer:
            where += f":{answer['line']}"
        lines = [f"modref {where}"
                 + (" (pure)" if answer.get("pure") else "")]
        for bucket in ("mod", "ref"):
            names = ", ".join(sorted(answer[bucket])) or "(empty)"
            lines.append(f"  {bucket}: {names}")
        if answer.get("unresolved"):
            lines.append("  unresolved: " + ", ".join(answer["unresolved"]))
        return lines
    if op == "reaches":
        if answer["reachable"]:
            return [f"reaches {answer['src']} -> {answer['dst']}: yes "
                    f"({' -> '.join(answer['path'])})"]
        return [f"reaches {answer['src']} -> {answer['dst']}: no"]
    if op in ("callees", "callers"):
        names = ", ".join(answer[op]) or "(none)"
        return [f"{op} {answer['proc']}: {names}"]
    if op == "stats":
        return [
            f"stats: {answer['queries']} queries, "
            f"{answer['cache_hits']} hits / {answer['cache_misses']} misses "
            f"(hit rate {answer['cache_hit_rate']}), "
            f"{answer['cache_entries']} cached",
        ]
    return [json.dumps(answer, sort_keys=True)]


def _answer_query_specs(
    args: argparse.Namespace, engine, forced_mode: Optional[str] = None
) -> int:
    """Run the query specs against ``engine`` and render the answers —
    the shared tail of ``repro query``'s store-backed and
    ``--analyze-on-miss`` paths.  Per-answer ``mode``/``stale``
    annotations come from the engine's ``info`` dict (the answers
    themselves are shared cache entries and stay byte-identical);
    ``forced_mode`` marks every answer when the engine *is* a demand
    engine (no store to be stale against)."""
    from .analysis.guards import AnalysisBudget
    from .query import QueryError, parse_query_spec

    budget = None
    if args.deadline is not None:
        budget = AnalysisBudget(deadline_seconds=args.deadline)
        budget.start()
    answers = []
    status = EXIT_OK
    for spec in args.queries:
        info: dict = {}
        try:
            request = parse_query_spec(spec)
            answer = engine.query(request, budget=budget, info=info)
        except QueryError as exc:
            print(f"error: {spec!r}: {exc}", file=sys.stderr)
            status = EXIT_ERROR
            continue
        except GuardTripped as exc:
            print(f"error: {spec!r}: {exc}", file=sys.stderr)
            status = EXIT_ERROR
            continue
        if forced_mode and "mode" not in info:
            info["mode"] = forced_mode
        answers.append((answer, info))
    demand_used = any(i.get("mode") == "demand" for _, i in answers)
    stale_seen = any(i.get("stale") for _, i in answers)
    if args.json:
        payload = []
        for answer, info in answers:
            if info.get("mode") == "demand" or info.get("stale"):
                # annotate a copy: cached answers are shared and must
                # stay byte-identical across calls and modes
                annotated = dict(answer)
                if info.get("mode") == "demand":
                    annotated["mode"] = "demand"
                if info.get("stale"):
                    annotated["stale"] = True
                payload.append(annotated)
            else:
                payload.append(answer)
        _write_text(args.output, json.dumps(payload, indent=2, sort_keys=True))
    else:
        with _out_stream(args.output) as fh:
            for answer, info in answers:
                for line in _render_query_answer(answer):
                    fh.write(line + "\n")
                if info.get("mode") == "demand" and forced_mode is None:
                    fh.write("  mode: demand (recomputed from the "
                             "edited sources)\n")
                elif info.get("stale"):
                    fh.write("  stale: answer predates the source "
                             "edits (--demand recomputes)\n")
    if demand_used and forced_mode is None:
        print(
            "repro: sources changed since 'repro index'; stale answers "
            "were recomputed on their demand slices (mode: demand)",
            file=sys.stderr,
        )
    elif stale_seen:
        print(
            "repro: warning: the store is stale for some queried facts "
            "and demand mode is off; those answers may be outdated "
            "(re-run 'repro index', or drop --no-demand)",
            file=sys.stderr,
        )
    degraded = engine.degraded or any(
        i.get("demand_degraded") for _, i in answers
    )
    if status == EXIT_OK and degraded:
        print(
            "repro: answers come from a degraded (partial) analysis; "
            "they are conservative",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return status


def _query_without_store(args: argparse.Namespace) -> int:
    """The ``--analyze-on-miss`` path: no store — lower the given
    sources and answer straight from a one-shot demand analysis."""
    from .analysis.demand import (
        DemandAnalysis,
        DemandEngine,
        fresh_analysis_state,
    )

    fresh_analysis_state()
    program = load_project_files(args.analyze_on_miss)
    engine = DemandEngine(
        DemandAnalysis(program),
        sources=args.analyze_on_miss,
        cache_size=args.cache_size,
    )
    return _answer_query_specs(args, engine, forced_mode="demand")


def cmd_query(args: argparse.Namespace) -> int:
    """Answer demand queries from a persisted store; when the indexed
    sources have been edited since, stale answers are recomputed on
    their demand slices instead of silently served (docs/QUERY.md §6)."""
    from .query import QueryEngine, load_store

    try:
        store = load_store(args.store)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        # StoreError (unknown format, truncated JSON, integrity
        # mismatch) lands here too — one repro: line, never a traceback
        if args.analyze_on_miss:
            print(
                f"repro: {exc}; answering from a one-shot demand "
                f"analysis of {len(args.analyze_on_miss)} file(s)",
                file=sys.stderr,
            )
            return _query_without_store(args)
        print(f"repro: {exc}", file=sys.stderr)
        print(
            "repro: hint: build the store first with 'repro index "
            f"FILES -o {args.store}', or pass --analyze-on-miss FILES "
            "to answer from a one-shot demand analysis",
            file=sys.stderr,
        )
        return EXIT_ERROR
    demand = None
    if store.get("sources"):
        from .analysis.demand import DemandTier

        demand = DemandTier(
            store, enabled=args.demand, cache_size=args.cache_size
        )
    engine = QueryEngine(store, cache_size=args.cache_size, demand=demand)
    return _answer_query_specs(args, engine)


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve demand queries from a persisted store (JSON lines over
    stdio, or TCP with --tcp HOST:PORT), with per-request telemetry and
    an optional structured access log (docs/OBSERVABILITY.md §5)."""
    from contextlib import ExitStack

    from .diagnostics.telemetry import TelemetryRegistry
    from .query import QueryEngine, load_store
    from .query.server import QueryServer

    try:
        store = load_store(args.store)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        # a corrupted/truncated/unknown-format store must refuse to
        # serve with one repro: line and exit 2, never a traceback
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: --tcp takes HOST:PORT, got {args.tcp!r}",
                  file=sys.stderr)
            return EXIT_ERROR
    faults = None
    if args.inject_serve_faults:
        from .diagnostics.faults import FaultPlan

        try:
            faults = FaultPlan.from_spec(args.inject_serve_faults)
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return EXIT_ERROR
    demand = None
    if store.get("sources"):
        from .analysis.demand import DemandTier

        # the tier is attached even under --no-demand: a disabled tier
        # still probes the sources, which is what powers the honest
        # `stale: true` envelope annotation
        demand = DemandTier(
            store, enabled=not args.no_demand, cache_size=args.cache_size
        )
    engine = QueryEngine(store, cache_size=args.cache_size, demand=demand)
    telemetry = None if args.no_telemetry else TelemetryRegistry()
    with ExitStack() as stack:
        access_log = None
        if args.access_log is not None:
            max_bytes = getattr(args, "access_log_max_bytes", None)
            if max_bytes is not None and args.access_log != "-":
                from .ioutil import RotatingLineWriter

                try:
                    access_log = stack.enter_context(
                        RotatingLineWriter(args.access_log, max_bytes)
                    )
                except (OSError, ValueError) as exc:
                    print(f"repro: {exc}", file=sys.stderr)
                    return EXIT_ERROR
            else:
                # same '-'-means-stdout writer as --stats-json/--trace-json
                access_log = stack.enter_context(
                    _out_stream(args.access_log)
                )
        server = QueryServer(
            engine,
            deadline_seconds=args.deadline,
            telemetry=telemetry,
            access_log=access_log,
            slow_ms=args.slow_ms,
            store_path=args.store,
            max_in_flight=args.max_in_flight,
            rate_limit=args.rate_limit,
            burst=args.burst,
            idle_timeout=args.idle_timeout,
            faults=faults,
        )
        server.install_signal_handlers()
        if args.watch is not None:
            try:
                server.start_watch(args.watch, log=sys.stderr)
            except ValueError as exc:
                print(f"repro: {exc}", file=sys.stderr)
                return EXIT_ERROR
        if args.tcp:
            return server.serve_tcp(host=host, port=int(port))
        return server.serve_stdio()


def _render_loadtest_report(report: dict) -> list[str]:
    lines = [
        f"loadtest {report['program']}: {report['requests']} requests, "
        f"{report['clients']} client(s), {report['errors']} error(s), "
        f"{report['seconds']:.3f}s wall",
        f"  throughput : {report['qps']:.1f} qps",
        "  latency    : p50 {p50_ms} ms, p90 {p90_ms} ms, p95 {p95_ms} ms, "
        "p99 {p99_ms} ms, max {max_ms} ms".format(**report["latency"]),
    ]
    hits, misses = report["cache_hits"], report["cache_misses"]
    lines.append(
        f"  cache      : {hits} hits / {misses} misses "
        f"(hit rate {report['cache_hit_rate']})"
    )
    mix = ", ".join(f"{op}={n}" for op, n in sorted(report["ops"].items()))
    lines.append(f"  op mix     : {mix}")
    chaos = report.get("chaos")
    if chaos is not None:
        lines.append(
            f"  chaos      : {chaos['answers_read']} answers read, "
            f"{chaos['sheds']} shed(s), {chaos['garbage']} garbage "
            f"line(s), {chaos['client_disconnects']} client "
            f"disconnect(s), {chaos['server_drops']} server drop(s), "
            f"{chaos['mismatches']} mismatch(es)"
        )
        for sample in chaos.get("mismatch_samples", []):
            lines.append(f"    mismatch : {sample}")
    return lines


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Replay a mixed concurrent query workload against a store (or a
    live daemon) and report/record throughput + latency quantiles."""
    from .bench.loadgen import parse_mix, run_loadtest
    from .bench.trajectory import (
        parse_serve_fail_on,
        record_serve_trajectory,
    )

    try:
        fail_on = parse_serve_fail_on(args.fail_on)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        mix = parse_mix(args.mix)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    addr = None
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: --tcp takes HOST:PORT, got {args.tcp!r}",
                  file=sys.stderr)
            return EXIT_ERROR
        addr = (host, int(port))
    serve_faults = None
    if args.serve_faults:
        from .diagnostics.faults import FaultPlan

        try:
            serve_faults = FaultPlan.from_spec(args.serve_faults)
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return EXIT_ERROR
    try:
        report = run_loadtest(
            args.store,
            clients=args.clients,
            requests_per_client=args.requests,
            mix=mix,
            repeat_half=not args.no_repeat_half,
            seed=args.seed,
            deadline_seconds=args.deadline,
            cache_size=args.cache_size,
            addr=addr,
            chaos=args.chaos,
            serve_faults=serve_faults,
            rate_limit=args.rate_limit,
            burst=args.burst,
            max_in_flight=args.max_in_flight,
            expect_stores=args.expect_store,
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_ERROR
    payload = report.as_dict()
    if args.json:
        _write_text(args.output,
                    json.dumps(payload, indent=2, sort_keys=True))
    else:
        with _out_stream(args.output) as fh:
            for line in _render_loadtest_report(payload):
                fh.write(line + "\n")
    status = EXIT_OK
    chaos_block = payload.get("chaos")
    if chaos_block is not None and chaos_block["mismatches"]:
        print(
            f"repro: chaos gate failed: {chaos_block['mismatches']} "
            "answer(s) did not match the fault-free baseline",
            file=sys.stderr,
        )
        status = 1
    if args.max_p99_ms is not None:
        p99 = payload["latency"]["p99_ms"]
        if p99 is None or p99 > args.max_p99_ms:
            print(
                f"repro: loadtest gate failed: p99 {p99} ms exceeds "
                f"--max-p99-ms {args.max_p99_ms}",
                file=sys.stderr,
            )
            status = 1
    if getattr(args, "record", None):
        entry, drift, failures = record_serve_trajectory(
            payload, path=args.record, fail_on=fail_on
        )
        print(
            f"repro: recorded serve entry rev={entry['revision']} -> "
            f"{args.record}",
            file=sys.stderr,
        )
        for line in drift:
            print(f"repro: drift: {line}", file=sys.stderr)
        if failures:
            for line in failures:
                print(f"repro: serve gate failed: {line}", file=sys.stderr)
            status = 1
    elif fail_on is not None:
        print("error: --fail-on requires --record (the gate compares "
              "against the previous trajectory entry)", file=sys.stderr)
        return EXIT_ERROR
    return status


def cmd_parallel_report(args: argparse.Namespace) -> int:
    """``repro parallel-report``: render a ``--profile-parallel``
    document (critical path, Brent bound, wave utilization, ranked
    pre-summarization candidates)."""
    from .diagnostics.parprof import load_profile, render_report

    try:
        profile = load_profile(args.profile)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        _write_text(
            args.output, json.dumps(profile, indent=2, sort_keys=True)
        )
    else:
        with _out_stream(args.output) as fh:
            fh.write(render_report(profile))
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-sensitive pointer analysis for C "
                    "(Wilson & Lam, PLDI 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="analyze C files, print stats")
    p.add_argument("files", nargs="+")
    p.add_argument("--jobs", type=int, metavar="N",
                   help="batch mode: analyze each FILE as its own program "
                        "over N worker processes (1 = same batch "
                        "sequentially; results and digests are "
                        "bit-identical across N — see docs/PARALLEL.md)")
    p.add_argument("--snapshot-dir", metavar="DIR",
                   help="with --jobs: write each program's canonical "
                        "snapshot to DIR/<name>.snapshot.json")
    p.add_argument("--points-to", action="append", metavar="[PROC:]VAR",
                   help="print the points-to set of a variable")
    p.add_argument("--demand-root", action="append", metavar="VAR[@PROC]",
                   help="demand mode: print the query's demand slice "
                        "over the static call graph and answer its "
                        "points-to query from a query-rooted analysis "
                        "(an unreachable PROC answers empty with no "
                        "analysis at all); repeatable — the slice "
                        "analysis runs once and is shared")
    p.add_argument("--stats-json", nargs="?", const="-", metavar="PATH",
                   help="dump analysis metrics as JSON (to PATH, or stdout "
                        "when no PATH is given)")
    p.add_argument("--ptfs", action="append", metavar="PROC",
                   help="print the PTFs of a procedure")
    p.add_argument("--trace-json", nargs="?", const="-", metavar="PATH",
                   help="record a hierarchical analysis trace and write it "
                        "as Chrome trace-event JSON (Perfetto-loadable) to "
                        "PATH, or stdout when no PATH is given")
    p.add_argument("--trace-jsonl", metavar="PATH",
                   help="also/instead write the trace as one JSON event per "
                        "line ('-' for stdout)")
    p.add_argument("--profile-parallel", nargs="?",
                   const="parallel-profile.json", metavar="PATH",
                   help="with --jobs: run the parallel observatory — "
                        "per-worker traces merged onto one timeline (one "
                        "lane per worker; write it with --trace-json), "
                        "worker telemetry folded into the batch stats, and "
                        "the shard-plan critical-path profile written to "
                        "PATH (default parallel-profile.json; render with "
                        "'repro parallel-report')")
    p.add_argument("--worker-trace-dir", metavar="DIR",
                   help="with --profile-parallel: each worker also writes "
                        "its own JSONL trace to DIR/<name>.worker.jsonl")
    _add_analysis_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "explain",
        help="explain why a pointer points where it does (provenance)",
    )
    p.add_argument("files", nargs="+")
    p.add_argument("--query", action="append", required=True,
                   metavar="VAR[@PROC]",
                   help="pointer variable to explain (PROC defaults to "
                        "main); repeatable")
    p.add_argument("--depth", type=int, default=8,
                   help="maximum derivation-chain depth (default 8)")
    p.add_argument("--json", action="store_true",
                   help="emit the derivation chains as JSON")
    p.add_argument("-o", "--output", default="-", metavar="PATH",
                   help="destination for --json ('-' = stdout, the default)")
    p.add_argument("--trace-json", nargs="?", const="-", metavar="PATH",
                   help="also record and write the Chrome trace")
    p.add_argument("--trace-jsonl", metavar="PATH", help=argparse.SUPPRESS)
    _add_analysis_flags(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("callgraph", help="print the resolved call graph")
    p.add_argument("files", nargs="+")
    _add_analysis_flags(p)
    p.set_defaults(func=cmd_callgraph)

    p = sub.add_parser("compare", help="compare against the baselines")
    p.add_argument("files", nargs="+")
    p.add_argument("--var", required=True, metavar="[PROC:]VAR")
    _add_analysis_flags(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("table2", help="regenerate the paper's Table 2")
    p.add_argument("--names", help="comma-separated subset of benchmarks")
    p.add_argument("--json", action="store_true",
                   help="emit the rows as JSON instead of the text table")
    p.add_argument("--record", nargs="?", const="BENCH_table2.json",
                   metavar="PATH",
                   help="append this run to the benchmark trajectory file "
                        "(default BENCH_table2.json) and report drift "
                        "against the previous entry")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("table3", help="regenerate the paper's Table 3")
    p.set_defaults(func=cmd_table3)

    p = sub.add_parser("report", help="full paper-vs-measured report")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("parallelize", help="run the §7 parallelizer client")
    p.add_argument("files", nargs="+")
    _add_analysis_flags(p)
    p.set_defaults(func=cmd_parallelize)

    p = sub.add_parser(
        "parallel-report",
        help="render a parallel profile (analyze --profile-parallel): "
             "critical path, Brent speedup bound, wave utilization, and "
             "the ranked pre-summarization candidates",
    )
    p.add_argument("profile", metavar="PROFILE",
                   help="path to a parallel-profile.json document")
    p.add_argument("--json", action="store_true",
                   help="emit the raw profile document instead of text")
    p.add_argument("-o", "--output", default="-", metavar="PATH",
                   help="destination ('-' = stdout, the default)")
    p.set_defaults(func=cmd_parallel_report)

    p = sub.add_parser(
        "snapshot",
        help="analyze C files and write the canonical run snapshot "
             "(deterministic digest + precision/perf/memory profiles)",
    )
    p.add_argument("files", nargs="+")
    p.add_argument("-o", "--output", default="-", metavar="PATH",
                   help="snapshot destination ('-' = stdout, the default)")
    p.add_argument("--name", metavar="NAME",
                   help="program name recorded in the snapshot (defaults "
                        "to the program's own name)")
    p.add_argument("--no-solution", action="store_true",
                   help="omit the full canonical solution (the digest is "
                        "still computed from it; diffs fall back to "
                        "profile-level attribution)")
    p.add_argument("--memory", action="store_true",
                   help="sample the tracemalloc heap peak (adds overhead; "
                        "the live gauges are always recorded)")
    _add_analysis_flags(p)
    p.set_defaults(func=cmd_snapshot)

    p = sub.add_parser(
        "diff",
        help="semantically compare two run snapshots and classify drift",
    )
    p.add_argument("old", help="baseline snapshot path ('-' = stdin)")
    p.add_argument("new", help="candidate snapshot path ('-' = stdin)")
    p.add_argument("--fail-on", metavar="SPEC",
                   help="comma-separated drift classes that make the exit "
                        "code 1, e.g. 'precision-loss,perf:5%%,mem:20%%' "
                        "(perf:N%%/mem:N%% also tighten the thresholds)")
    p.add_argument("--perf-threshold", type=float, default=10.0,
                   metavar="PCT",
                   help="relative elapsed-time change classified as perf "
                        "drift (default 10%%; 5 ms absolute noise floor)")
    p.add_argument("--mem-threshold", type=float, default=10.0,
                   metavar="PCT",
                   help="relative memory-gauge change classified as mem "
                        "drift (default 10%%)")
    p.add_argument("--json", action="store_true",
                   help="emit the classified drift report as JSON")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "index",
        help="analyze C files once and write the persistent query store "
             "(then ask with 'repro query' / 'repro serve')",
    )
    p.add_argument("files", nargs="+")
    p.add_argument("-o", "--output", default="-", metavar="PATH",
                   help="store destination ('-' = stdout, the default)")
    p.add_argument("--name", metavar="NAME",
                   help="program name recorded in the store")
    p.add_argument("--force", action="store_true",
                   help="rebuild even when the digest check says the "
                        "store is still the solution of these sources")
    p.add_argument("--jobs", type=int, metavar="N",
                   help="batch mode: index each FILE as its own program "
                        "over N worker processes; -o names the output "
                        "directory (always rebuilds)")
    _add_analysis_flags(p)
    p.set_defaults(func=cmd_index)

    p = sub.add_parser(
        "query",
        help="answer demand queries from a store, without re-analyzing",
    )
    p.add_argument("store", help="store path written by 'repro index'")
    p.add_argument("queries", nargs="+", metavar="QUERY",
                   help="e.g. 'points-to p@main', 'alias a b@f', "
                        "'pointed-by x', 'modref f', 'modref f:12', "
                        "'reaches main f', 'callees f', 'callers f', "
                        "'stats'")
    p.add_argument("--json", action="store_true",
                   help="emit the answers as a JSON array")
    p.add_argument("-o", "--output", default="-", metavar="PATH",
                   help="answer destination ('-' = stdout, the default)")
    p.add_argument("--deadline", type=float, metavar="SECONDS",
                   help="wall-clock budget over the whole query batch")
    p.add_argument("--cache-size", type=int, default=256, metavar="N",
                   help="LRU query-cache capacity (default 256)")
    p.add_argument("--demand", dest="demand", action="store_true",
                   default=True,
                   help="when the indexed sources changed on disk, "
                        "recompute stale answers on their demand slices "
                        "instead of serving outdated facts (the "
                        "default)")
    p.add_argument("--no-demand", dest="demand", action="store_false",
                   help="never re-analyze: stale answers are served "
                        "from the store, annotated stale (JSON: "
                        "\"stale\": true)")
    p.add_argument("--analyze-on-miss", nargs="+", metavar="FILE",
                   help="when the store is missing or unloadable, "
                        "answer from a one-shot demand analysis of "
                        "these source files instead of exiting 2")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "serve",
        help="long-lived query daemon over a store (JSON lines on "
             "stdio, or TCP with --tcp HOST:PORT)",
    )
    p.add_argument("store", help="store path written by 'repro index'")
    p.add_argument("--tcp", metavar="HOST:PORT",
                   help="listen on TCP instead of stdio (port 0 picks "
                        "an ephemeral port, announced on stderr)")
    p.add_argument("--deadline", type=float, metavar="SECONDS",
                   help="per-request wall-clock budget")
    p.add_argument("--cache-size", type=int, default=256, metavar="N",
                   help="LRU query-cache capacity (default 256)")
    p.add_argument("--access-log", metavar="PATH",
                   help="structured JSONL access log, one line per "
                        "request ('-' = stdout, the shared convention)")
    p.add_argument("--access-log-max-bytes", type=int, metavar="BYTES",
                   help="rotate the access log when it would exceed BYTES: "
                        "atomic rename to PATH.1 (previous backup replaced), "
                        "fresh PATH opened in place — long-running daemons "
                        "stop growing the log unboundedly (ignored for '-')")
    p.add_argument("--slow-ms", type=float, default=100.0, metavar="MS",
                   help="slow-request threshold for the 'slow' counter "
                        "and server.slow trace instant (default 100)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable the per-request telemetry registry "
                        "(answers are byte-identical either way)")
    p.add_argument("--max-in-flight", type=int, metavar="N",
                   help="overload gate: shed request lines (stable "
                        "'overloaded' error code + retry hint) when N "
                        "lines are already in flight")
    p.add_argument("--rate-limit", type=float, metavar="QPS",
                   help="token-bucket rate limit in requests/second; "
                        "excess requests are shed with the 'overloaded' "
                        "code (control ops are always exempt)")
    p.add_argument("--burst", type=float, metavar="N",
                   help="token-bucket burst capacity (default: "
                        "max(1, QPS))")
    p.add_argument("--idle-timeout", type=float, default=300.0,
                   metavar="SECONDS",
                   help="per-connection read/idle timeout; a silent "
                        "peer releases its handler thread (default "
                        "300; <= 0 disables)")
    p.add_argument("--watch", type=float, metavar="SECONDS",
                   help="poll the store path and hot-swap it into the "
                        "live daemon when it changes (the reload admin "
                        "op, on a timer)")
    p.add_argument("--inject-serve-faults", metavar="SPEC",
                   help="deterministic serve-path fault injection for "
                        "chaos testing, e.g. 'seed=3,slow=0.05,"
                        "disconnect=0.02,corrupt_reload=1.0,slow_ms=10' "
                        "(docs/ROBUSTNESS.md §8)")
    p.add_argument("--no-demand", action="store_true",
                   help="disable the demand fallback: queries touching "
                        "procedures whose sources changed since 'repro "
                        "index' are answered from the (stale) store "
                        "with an explicit \"stale\": true envelope "
                        "field instead of being recomputed on their "
                        "demand slice")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadtest",
        help="replay a concurrent mixed query workload against a store "
             "and report qps + latency quantiles (p50/p90/p95/p99)",
    )
    p.add_argument("store", help="store path written by 'repro index'")
    p.add_argument("--clients", type=int, default=8, metavar="N",
                   help="concurrent TCP client threads (default 8)")
    p.add_argument("--requests", type=int, default=50, metavar="N",
                   help="requests per client (default 50)")
    p.add_argument("--mix", metavar="SPEC",
                   help="weighted op mix, e.g. "
                        "'points_to=6,alias=3,modref=1' (default: the "
                        "built-in serve-smoke mix)")
    p.add_argument("--no-repeat-half", action="store_true",
                   help="do not repeat each client's first half (the "
                        "repeat models cache-hit realism)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload shuffle seed (default 0)")
    p.add_argument("--deadline", type=float, metavar="SECONDS",
                   help="per-request deadline armed in the daemon")
    p.add_argument("--cache-size", type=int, default=256, metavar="N",
                   help="daemon LRU capacity (default 256)")
    p.add_argument("--tcp", metavar="HOST:PORT",
                   help="target an already-running daemon instead of "
                        "spawning an in-process one")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.add_argument("-o", "--output", default="-", metavar="PATH",
                   help="report destination ('-' = stdout, the default)")
    p.add_argument("--record", nargs="?", const="BENCH_serve.json",
                   metavar="PATH",
                   help="append this run to the serve trajectory file "
                        "(default BENCH_serve.json) and report drift "
                        "against the previous entry")
    p.add_argument("--fail-on", metavar="SPEC",
                   help="with --record: exit 1 on regression vs the "
                        "previous entry, e.g. 'p99:100%%,qps:30%%' "
                        "(p99 latency grew >100%% / throughput fell "
                        ">30%%)")
    p.add_argument("--max-p99-ms", type=float, metavar="MS",
                   help="absolute gate: exit 1 when p99 latency exceeds "
                        "MS milliseconds")
    p.add_argument("--chaos", action="store_true",
                   help="chaos mode: clients deterministically send "
                        "garbage and disconnect mid-request, tolerate "
                        "sheds/drops, and verify every ok answer "
                        "against a fault-free baseline (exit 1 on any "
                        "mismatch)")
    p.add_argument("--serve-faults", metavar="SPEC",
                   help="FaultPlan spec for the in-process daemon "
                        "(same syntax as serve --inject-serve-faults; "
                        "ignored with --tcp)")
    p.add_argument("--rate-limit", type=float, metavar="QPS",
                   help="rate-limit the in-process daemon (ignored "
                        "with --tcp)")
    p.add_argument("--burst", type=float, metavar="N",
                   help="burst capacity for --rate-limit")
    p.add_argument("--max-in-flight", type=int, metavar="N",
                   help="in-flight admission gate for the in-process "
                        "daemon (ignored with --tcp)")
    p.add_argument("--expect-store", action="append", metavar="PATH",
                   help="with --chaos: additional store(s) whose "
                        "answers are also acceptable (pass the "
                        "post-reload store when a hot swap happens "
                        "mid-run); repeatable")
    p.set_defaults(func=cmd_loadtest)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except FrontendError as exc:
        print(f"frontend error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except GuardTripped as exc:
        # only reachable under --strict: the budget aborts instead of
        # degrading; report which guard fired and where
        print(f"analysis aborted (strict): {exc}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
