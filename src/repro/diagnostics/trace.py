"""Hierarchical span/event tracer for the analysis engine.

One :class:`Tracer` is (optionally) owned by the
:class:`~repro.analysis.engine.Analyzer` and threaded past every layer
that already receives the :class:`~repro.diagnostics.metrics.Metrics`
sink.  Where the metrics layer answers *how much* the engine works, the
tracer answers *where* and *why*: which call chain forced a second PTF
for a procedure, which fixpoint pass invalidated a summary, which
summary application wrote a points-to edge.

Hot-path contract
-----------------

Tracing follows the same discipline as ``Metrics``: instrument sites in
the engine hold the tracer in a local (``tr = self.trace``) and guard
every emission with ``if tr is not None`` — when tracing is disabled the
whole subsystem costs one attribute load and one identity compare per
site, no dict probes, no method calls.  The engine never constructs a
tracer unless ``AnalyzerOptions.trace`` is set.

Event model
-----------

Events map 1:1 onto the Chrome trace-event format (the JSON Perfetto and
``chrome://tracing`` load):

* **spans** — hierarchical begin/end pairs (``ph: "B"`` / ``"E"``) that
  nest by emission order on one thread.  Used for the driver phases and
  per-procedure evaluations (``ProcEvaluator.run``).
* **complete events** — a single record with a duration (``ph: "X"``).
  Used for individual fixpoint passes, which are too numerous for B/E
  pairs to stay readable.
* **instants** — zero-duration marks (``ph: "i"``).  Used for the
  interprocedural events (PTF create/reuse/miss, summary application,
  recursive-dep invalidation, external calls) and initial-value fetches.

Every event carries a process id, a thread id, a microsecond timestamp
measured from a monotonic clock (``time.perf_counter_ns``), and a unique
monotonically increasing event id (``args.eid``).  The provenance layer
(:mod:`repro.diagnostics.provenance`) tags each points-to derivation
with the most recent event id, linking derivations back into the trace.

Event vocabulary
----------------

See :data:`EVENT_VOCABULARY` below; the counter vocabulary lives in
:mod:`repro.diagnostics.metrics`.

Exporters
---------

* :meth:`Tracer.write_chrome` — Chrome trace-event JSON
  (``{"traceEvents": [...]}``), sorted by timestamp so the file is
  monotone; loadable in Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.
* :meth:`Tracer.write_jsonl` — one JSON object per line, in emission
  order, for ``grep``/``jq`` pipelines and the bench harness artifacts.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import IO, Iterator, Optional

__all__ = ["Tracer", "EVENT_VOCABULARY", "merge_worker_events"]

#: every event name the engine emits, with its phase type and meaning;
#: this is the span/event vocabulary, the companion of the counter
#: vocabulary documented in :mod:`repro.diagnostics.metrics`.
EVENT_VOCABULARY: dict[str, str] = {
    # -- spans (ph B/E) --------------------------------------------------
    "analyze": "B/E driver: one whole Analyzer.run, args: program",
    "finalize": "B/E driver phase: CFG/dominator finalization",
    "analysis": "B/E driver phase: the interprocedural fixpoint from main",
    "summary": "B/E driver phase: extracting main's final summary",
    "eval": "B/E one ProcEvaluator.run of a procedure under one PTF; "
            "args: proc, ptf; closing args: passes",
    "analyze_ptf": "B/E (re)analysis of a callee PTF from a call site; "
                   "args: proc, ptf, site",
    # -- complete events (ph X) ------------------------------------------
    "pass": "X one full reverse-postorder fixpoint pass; "
            "args: proc, index, changed",
    # -- instants (ph i) -------------------------------------------------
    "ptf.create": "i GetPTF made a new PTF (no candidate matched); "
                  "args: proc, ptf, pattern (of the requesting context)",
    "ptf.reuse": "i GetPTF matched an existing PTF; args: proc, ptf, "
                 "pattern (the matched alias pattern), revisit",
    "ptf.miss": "i GetPTF found no matching candidate among >=1 existing "
                "PTFs; args: proc, candidates, pattern",
    "ptf.home_update": "i same call site re-bound mid-iteration: PTF "
                       "reset in place; args: proc, ptf",
    "ptf.generalize": "i ptf_limit hit: context merged into the first "
                      "PTF (§8); args: proc, ptf",
    "ptf.invalidate": "i a consumed recursive summary grew: PTF must be "
                      "revisited; args: proc, ptf",
    "apply_summary": "i a callee summary translated into the caller; "
                     "args: proc, ptf, entries, site",
    "recursive_call": "i call to a procedure already on the stack (§5.4); "
                      "args: proc",
    "external_call": "i call to an unknown external function; args: name, "
                     "policy",
    "initial_fetch": "i lazy initial-value fetch added an input entry to "
                     "a PTF (§3.2); args: proc, loc",
    "degrade.call": "i a call site was summarized by the conservative "
                    "havoc stub instead of a real PTF (degradation "
                    "ladder); args: proc, reason, call_site, pool",
    "degrade.proc": "i a procedure was quarantined — its partial PTF "
                    "discarded — after a resource guard tripped; args: "
                    "proc, reason, detail",
    "degrade.frontend": "i a translation unit or single procedure was "
                        "dropped by the tolerant frontend; args: file, "
                        "proc, reason",
    # -- parallel driver (repro.analysis.parallel; docs/PARALLEL.md) -----
    "parallel": "B/E driver: one whole parallel batch "
                "(repro analyze --jobs N); args: jobs, tasks; closing "
                "args: tasks (merged)",
    "shard.dispatch": "i a batch task was handed to the worker pool; "
                      "args: task, index",
    "shard.done": "i a batch task's result bundle was merged (task "
                  "order, not completion order); args: task, index, "
                  "seconds, error",
    # -- parallel observatory (docs/OBSERVABILITY.md §6) -----------------
    "worker.task": "B/E one whole batch task inside a worker process "
                   "(load + analyze + snapshot); the engine's analyze "
                   "span nests inside; args: task, index, pid",
    "worker.start": "i a worker process picked a task off the pool "
                    "queue; args: task, index, pid, queue_wait_ms",
    "clock.calibrate": "i the worker tracer's monotonic-clock offset "
                       "calibration record — pairs the tracer's t0 with "
                       "the wall clock so the parent can shift worker "
                       "timestamps onto its own timeline; args: pid, "
                       "wall_anchor_ns",
    "merge": "X the parent merged one worker result bundle (trace "
             "events re-timed onto the parent lane map, telemetry "
             "folded in); args: task, index",
    # Chrome metadata events (ph M) the cross-process merge emits so
    # Perfetto names the per-worker lanes
    "process_name": "M Chrome metadata: names the merged trace's "
                    "process; args: name",
    "thread_name": "M Chrome metadata: names one lane (tid) — 'driver' "
                   "for the parent, 'worker pid=N' per worker; args: "
                   "name",
    # -- query subsystem (repro.query; docs/QUERY.md) --------------------
    "query.hit": "i a demand query was answered from the engine's LRU "
                 "cache; args: op, key",
    "query.miss": "i a demand query was computed against the store (and "
                  "cached); args: op, key",
    "query.deadline": "i a query's per-request deadline expired before "
                      "an answer was produced; args: op, key",
    # -- demand mode (repro.analysis.demand; docs/QUERY.md §6) -----------
    "demand.slice": "i a demand slice was computed for a query target "
                    "on the SCC condensation; args: target, entry, "
                    "reachable, procs, contexts, shards",
    "demand.analyze": "i the demand tier ran the slice analysis (one "
                      "fixpoint per source generation, memoized across "
                      "queries); args: entry, procs, seconds",
    "demand.stale": "i the staleness probe re-lowered edited sources "
                    "and diffed IR digests against the store; args: "
                    "stale, changed, added, removed, globals_changed",
    "demand.fallback": "i a query was routed to the demand engine "
                       "because the store is stale for the fact it "
                       "states; args: op, proc",
    # -- serve daemon (repro.query.server; docs/OBSERVABILITY.md §5) -----
    "server.request": "i the daemon finalized one request: envelope "
                      "written, latency measured line-read to "
                      "envelope-write; args: op, status, ms, rid",
    "server.slow": "i a finalized request exceeded the slow-request "
                   "threshold (QueryServer.slow_ms); args: op, ms, rid",
    "server.shed": "i a request was shed by overload protection with "
                   "the stable `overloaded` error code; args: reason "
                   "(rate | in_flight), rid",
    "server.reload": "i a hot store swap attempt resolved (ok=True: new "
                     "generation promoted; ok=False: target rejected, "
                     "old store keeps serving); args: ok, generation, "
                     "stale, carried",
    "server.idle_timeout": "i an accepted connection sat idle past the "
                           "read timeout and released its handler "
                           "thread; args: peer",
}


class Tracer:
    """Collects trace events in memory; export at end of run.

    The tracer is deliberately dumb and fast: every emitter appends one
    small dict to a list.  Timestamps are microseconds from the tracer's
    creation (monotonic).  ``pid``/``tid`` are constant — the analysis is
    single-threaded — but recorded per event because the Chrome format
    requires them.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter_ns()
        #: wall clock captured adjacent to ``_t0`` — the cross-process
        #: calibration anchor: two tracers (parent and worker) cannot
        #: compare ``perf_counter`` origins portably, but each one's
        #: ``(t0, wall_anchor_ns)`` pair lets a merger shift the other's
        #: event timestamps onto its own timeline (docs/OBSERVABILITY.md
        #: §6)
        self.wall_anchor_ns = time.time_ns()
        self.events: list[dict] = []
        self.pid = os.getpid()
        self.tid = 1
        #: monotonically increasing id of the last emitted event; the
        #: provenance layer reads this to link derivations to the trace
        self.last_eid = 0

    # -- clock ------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since tracer creation (monotonic)."""
        return (time.perf_counter_ns() - self._t0) / 1000.0

    def calibration(self) -> dict:
        """The clock-offset calibration record a worker ships to the
        parent (also emitted as the ``clock.calibrate`` instant): enough
        to place this tracer's relative microsecond timestamps on any
        other tracer's timeline."""
        return {"pid": self.pid, "wall_anchor_ns": self.wall_anchor_ns}

    # -- emitters ---------------------------------------------------------

    def _emit(self, ph: str, name: str, cat: str, ts: float, args: dict) -> int:
        self.last_eid += 1
        args["eid"] = self.last_eid
        event = {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": ts,
            "pid": self.pid,
            "tid": self.tid,
            "args": args,
        }
        self.events.append(event)
        return self.last_eid

    def begin(self, name: str, cat: str = "", **args) -> int:
        """Open a span (``ph: "B"``); close with :meth:`end`."""
        return self._emit("B", name, cat, self.now_us(), args)

    def end(self, name: str, cat: str = "", **args) -> int:
        """Close the innermost span opened with ``name`` (``ph: "E"``)."""
        return self._emit("E", name, cat, self.now_us(), args)

    @contextmanager
    def span(self, name: str, cat: str = "", **args) -> Iterator[int]:
        """``with``-style B/E span; yields the begin event's id."""
        eid = self.begin(name, cat, **args)
        try:
            yield eid
        finally:
            self.end(name, cat)

    def complete(
        self, name: str, cat: str, start_us: float, dur_us: float, **args
    ) -> int:
        """A complete event (``ph: "X"``) with explicit start + duration."""
        self.last_eid += 1
        args["eid"] = self.last_eid
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start_us,
                "dur": max(dur_us, 0.0),
                "pid": self.pid,
                "tid": self.tid,
                "args": args,
            }
        )
        return self.last_eid

    def instant(self, name: str, cat: str = "", **args) -> int:
        """A zero-duration mark (``ph: "i"``, thread scope)."""
        self.last_eid += 1
        args["eid"] = self.last_eid
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": self.now_us(),
                "pid": self.pid,
                "tid": self.tid,
                "args": args,
            }
        )
        return self.last_eid

    # -- export -----------------------------------------------------------

    def chrome_dict(self, **metadata) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable).

        Events are sorted by timestamp (stable, so nested B/E pairs with
        equal timestamps keep their emission order) — the exported file
        is monotone even though ``X`` events are recorded at completion
        time with their *start* timestamp.
        """
        events = sorted(self.events, key=lambda e: e["ts"])
        out = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }
        if metadata:
            out["otherData"] = {k: str(v) for k, v in metadata.items()}
        return out

    def write_chrome(self, fh: IO[str], **metadata) -> None:
        json.dump(self.chrome_dict(**metadata), fh, indent=None)
        fh.write("\n")

    def write_jsonl(self, fh: IO[str]) -> None:
        """One event per line, in emission order (grep/jq friendly)."""
        for event in self.events:
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")

    def save_chrome(self, path: str, **metadata) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            self.write_chrome(fh, **metadata)

    def save_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            self.write_jsonl(fh)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tracer {len(self.events)} events, last_eid={self.last_eid}>"


# ---------------------------------------------------------------------------
# cross-process trace merge (the parallel observatory; OBSERVABILITY.md §6)
# ---------------------------------------------------------------------------


def merge_worker_events(parent: Tracer, payloads: list[dict]) -> dict[int, int]:
    """Fold per-task worker trace payloads into ``parent``, one lane per
    worker process.

    Each payload is the pickle-clean block a profiled worker ships back:
    ``{"index": task index, "calibration": Tracer.calibration(),
    "events": [...]}``.  Merging is deterministic in the payloads alone
    (input order is irrelevant):

    * payloads are processed in task-index order;
    * every distinct worker pid gets one lane — ``tid`` 2, 3, … in
      first-appearance (task-index) order, the parent keeping lane 1;
    * worker timestamps (microseconds since the *worker* tracer's t0)
      are shifted by the wall-clock offset between the worker's and the
      parent's calibration anchors, placing every event on the parent
      timeline;
    * event ids are re-stamped from the parent's counter so the merged
      stream keeps the unique-monotone ``eid`` contract;
    * one ``thread_name`` metadata event names each lane (plus the
      parent's) so Perfetto renders one labelled track per worker.

    Returns the lane map ``{worker pid: tid}``.
    """
    ordered = sorted(payloads, key=lambda p: (p.get("index", 0),
                                              p["calibration"]["pid"]))
    lanes: dict[int, int] = {}
    for payload in ordered:
        pid = payload["calibration"]["pid"]
        if pid not in lanes:
            lanes[pid] = 2 + len(lanes)
    _emit_metadata(parent, "process_name", parent.tid, "repro")
    _emit_metadata(parent, "thread_name", parent.tid, "driver")
    for pid, tid in lanes.items():
        _emit_metadata(parent, "thread_name", tid, f"worker pid={pid}")
    for payload in ordered:
        cal = payload["calibration"]
        tid = lanes[cal["pid"]]
        offset_us = (cal["wall_anchor_ns"] - parent.wall_anchor_ns) / 1000.0
        for event in payload["events"]:
            merged = dict(event)
            merged["ts"] = event["ts"] + offset_us
            merged["pid"] = parent.pid
            merged["tid"] = tid
            parent.last_eid += 1
            merged["args"] = dict(event.get("args", {}), eid=parent.last_eid)
            parent.events.append(merged)
    return lanes


def _emit_metadata(parent: Tracer, event: str, tid: int, label: str) -> None:
    """One Chrome metadata event (``ph: "M"``); ``ts`` 0 so lane labels
    sort ahead of every timed event in the exported file."""
    parent.last_eid += 1
    parent.events.append(
        {
            "name": event,
            "cat": "__metadata",
            "ph": "M",
            "ts": 0.0,
            "pid": parent.pid,
            "tid": tid,
            "args": {"name": label, "eid": parent.last_eid},
        }
    )
