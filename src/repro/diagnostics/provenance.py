"""Points-to provenance: why does ``p`` point to ``x``?

When enabled (``AnalyzerOptions.provenance=True``) every points-to entry
recorded by a state (:mod:`repro.memory.pointsto`) is tagged with a
**derivation record** describing the event that introduced it:

* ``assign`` — an assignment node wrote the value (strong or weak);
* ``initial`` — a lazy initial-value fetch materialized a procedure
  input (§3.2 of the paper);
* ``summary`` — a callee summary was translated into the caller (§5.3);
* ``phi`` — a φ-function merged values at a control-flow join (§4.2);
* ``call`` — a library model or external-call havoc wrote through a
  call node;
* ``external`` — the conservative havoc for unknown externals.

Each record remembers the flow-graph node (with its source coordinate),
the procedure, the written location, the values, and — where the
recording site knows them — the *source locations* whose contents flowed
into the write.  :meth:`ProvenanceLog.explain` then walks the chain:
"``p -> x`` because node N assigned ``*q``; ``*q`` held ``x`` because
the initial fetch at the entry of ``f`` bound it from the caller…",
terminating at address-of constants, static initializers, or the depth
bound.

Name spaces: the chain may cross a PTF boundary (caller space to callee
space).  Location/value keys are canonical strings of normalized
location sets; when an exact ``(loc, value)`` pair is not on record —
typically because a summary translation renamed the value between name
spaces — the walk falls back to the recorded derivations of the location
itself.  The output is therefore a faithful *may*-derivation: every step
shown is an event that really happened, in order, but a step across a
name-space boundary may cover siblings of the queried value too.

The recording sites push a short-lived *context* (kind, source
locations, human detail) before calling into the state layer; the state
hooks in :mod:`repro.memory.pointsto` consume it.  Like the tracer, the
whole layer is pay-for-what-you-use: states hold ``provenance=None``
unless the option is set, and every hook site is guarded by one ``is
not None`` check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .trace import Tracer

__all__ = ["Derivation", "ProvenanceLog"]

#: safety valve: stop recording beyond this many derivations (provenance
#: is an interactive debugging aid, not a production data sink)
MAX_RECORDS = 500_000


class Derivation:
    """One points-to derivation event (immutable once recorded)."""

    __slots__ = (
        "eid",
        "kind",
        "loc",
        "values",
        "node_uid",
        "coord",
        "node_desc",
        "proc",
        "sources",
        "detail",
        "trace_eid",
    )

    def __init__(
        self,
        eid: int,
        kind: str,
        loc: str,
        values: tuple[str, ...],
        node_uid: int,
        coord: Optional[str],
        node_desc: str,
        proc: str,
        sources: tuple[str, ...],
        detail: str,
        trace_eid: Optional[int],
    ) -> None:
        self.eid = eid
        self.kind = kind
        self.loc = loc
        self.values = values
        self.node_uid = node_uid
        self.coord = coord
        self.node_desc = node_desc
        self.proc = proc
        self.sources = sources
        self.detail = detail
        self.trace_eid = trace_eid

    def as_dict(self) -> dict:
        return {
            "eid": self.eid,
            "kind": self.kind,
            "loc": self.loc,
            "values": list(self.values),
            "node": self.node_uid,
            "coord": self.coord,
            "node_desc": self.node_desc,
            "proc": self.proc,
            "sources": list(self.sources),
            "detail": self.detail,
            "trace_eid": self.trace_eid,
        }

    def render(self) -> str:
        """One human-readable line for the ``explain`` CLI."""
        where = self.coord or f"node#{self.node_uid}"
        vals = ", ".join(self.values) if self.values else "-"
        extra = f"  [{self.detail}]" if self.detail else ""
        return (
            f"[d{self.eid}] {self.kind:<8} {self.loc} <- {{{vals}}} "
            f"at {where} in {self.proc}{extra}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Derivation d{self.eid} {self.kind} {self.loc}>"


class ProvenanceLog:
    """Shared derivation log, one per :class:`~repro.analysis.engine.Analyzer`.

    The engine layers set a context before performing state writes; the
    state hooks call :meth:`tag` / :meth:`tag_phi` / :meth:`tag_initial`
    which consume it.  Queries go through :meth:`explain`.
    """

    def __init__(self, tracer: Optional["Tracer"] = None) -> None:
        self.records: list[Derivation] = []
        #: (loc str, value str) -> index of the *first* deriving record
        self._first: dict[tuple[str, str], int] = {}
        #: loc str -> indices of records writing that location (bounded)
        self._by_loc: dict[str, list[int]] = {}
        self.tracer = tracer
        # pending context from the engine layer (overwritten per site)
        self._ctx: Optional[tuple[str, tuple[str, ...], str]] = None
        self._initial_ctx: Optional[tuple[tuple[str, ...], str]] = None

    # -- context (set by engine layers, consumed by the state hooks) ------

    def set_context(self, kind: str, sources: tuple = (), detail: str = "") -> None:
        self._ctx = (kind, tuple(sources), detail)

    def clear_context(self) -> None:
        self._ctx = None

    def set_initial_context(self, sources: tuple = (), detail: str = "") -> None:
        self._initial_ctx = (tuple(sources), detail)

    # -- recording hooks (called from repro.memory.pointsto) --------------

    def tag(self, loc, values, node, strong: bool) -> None:
        """An ``assign`` happened; kind may be refined by the context."""
        kind, sources, detail = "assign", (), ""
        if self._ctx is not None:
            kind, sources, detail = self._ctx
        elif node is not None and node.kind == "call":
            kind = "call"
        if strong and kind == "assign":
            kind = "assign!"  # strong update
        self._record(kind, loc, values, node, sources, detail)

    def tag_phi(self, loc, values, node) -> None:
        self._record("phi", loc, values, node, (), "")

    def tag_initial(self, loc, values, node) -> None:
        sources: tuple[str, ...] = ()
        detail = ""
        if self._initial_ctx is not None:
            sources, detail = self._initial_ctx
            self._initial_ctx = None
        self._record("initial", loc, values, node, sources, detail)

    def _record(self, kind, loc, values, node, sources, detail) -> None:
        if len(self.records) >= MAX_RECORDS:
            return
        eid = len(self.records) + 1
        tracer = self.tracer
        rec = Derivation(
            eid,
            kind,
            str(loc),
            tuple(sorted(str(v) for v in values)),
            node.uid if node is not None else -1,
            getattr(node, "coord", None),
            node.describe() if node is not None else "",
            node.proc.name if node is not None else "<root>",
            tuple(str(s) for s in sources),
            detail,
            tracer.last_eid if tracer is not None else None,
        )
        idx = len(self.records)
        self.records.append(rec)
        first = self._first
        for v in rec.values:
            first.setdefault((rec.loc, v), idx)
        bucket = self._by_loc.setdefault(rec.loc, [])
        if len(bucket) < 16:  # keep early (defining) records per location
            bucket.append(idx)

    # -- queries ----------------------------------------------------------

    def derivation_of(self, loc: str, value: str) -> Optional[Derivation]:
        """The first record that wrote ``value`` into ``loc`` (exact), or
        the first record writing ``loc`` at all (name-space fallback)."""
        idx = self._first.get((loc, value))
        if idx is None:
            bucket = self._by_loc.get(loc)
            if not bucket:
                return None
            # name-space fallback: prefer the earliest record that carries
            # values at all — an empty record (an initial fetch of a
            # then-empty input) only answers when nothing better exists
            idx = next(
                (i for i in bucket if self.records[i].values), bucket[0]
            )
        return self.records[idx]

    def explain(
        self, loc: str, value: str, max_depth: int = 8
    ) -> list[tuple[int, Derivation]]:
        """The derivation chain of ``loc -> value`` as ``(depth, record)``
        pairs, root (the final write) first, cycle-guarded."""
        out: list[tuple[int, Derivation]] = []
        seen: set[int] = set()

        def walk(l: str, v: str, depth: int) -> None:
            if depth > max_depth:
                return
            rec = self.derivation_of(l, v)
            if rec is None or rec.eid in seen:
                return
            seen.add(rec.eid)
            out.append((depth, rec))
            for src in rec.sources:
                if src != l:
                    walk(src, v, depth + 1)

        walk(loc, value, 0)
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProvenanceLog {len(self.records)} derivations>"
