"""The shard-plan critical-path profiler (``--profile-parallel``).

Joins *measured* per-procedure self-times (``Metrics.proc_self_seconds``,
the exclusive times the engine already collects) onto the SCC wave DAG
(:class:`repro.analysis.scc.ShardPlan`) that each profiled worker ships
back in its bundle.  The join answers the question ROADMAP item 1 needs
data for: if the bottom-up shard schedule *were* dispatched in parallel,
where would the time go?

Per program the profiler computes:

* ``total_seconds`` (T1) — the work: the sum of shard costs, where a
  shard's cost is the sum of its members' measured self-times;
* ``critical_path_seconds`` (T∞) — the span: the longest cost-weighted
  dependency chain through the shard DAG, computed bottom-up over the
  reverse-topological shard order (``finish[i] = cost[i] +
  max(finish[dep])``).  No worker count compresses the schedule below
  this;
* ``parallelism`` — T1/T∞, the speedup ceiling of the shard schedule;
* ``brent_bound`` — Brent's lemma: ``p`` workers under any greedy
  schedule finish within ``T1/p + T∞``, so a speedup of at least
  ``T1 / (T1/p + T∞)`` is *achievable*;
* per-wave utilization — each wave runs its shards concurrently and
  lasts as long as its most expensive shard, so the wave's useful
  fraction is ``sum(costs) / (len(wave) * max(cost))``;
* the ranked pre-summarization candidate list — the procedures on the
  critical path, most expensive self-time first.  These are the
  procedures a unification-tier summary pre-pass should target first:
  shortening them shortens the span itself, not just the work.

Batch-level, the theoretical speedup bound is ``min(jobs, T1/T∞)`` with
T1 the total in-worker seconds and T∞ the slowest task — Brent's lower
bound on any ``jobs``-worker makespan (``max(T1/jobs, T∞)``), so the
bound is mathematically ≥ the measured speedup (the CI gate).

The profile document is plain JSON, format ``repro-parprof/1``; the
``repro parallel-report`` subcommand renders it (text or ``--json``).
See docs/OBSERVABILITY.md §6.
"""

from __future__ import annotations

import json
from typing import Optional

from ..ioutil import atomic_write_text

__all__ = [
    "PARPROF_FORMAT",
    "build_parallel_profile",
    "profile_program",
    "render_report",
    "load_profile",
    "write_profile",
]

PARPROF_FORMAT = "repro-parprof/1"

#: ranked candidate list length (per program and batch-wide)
TOP_CANDIDATES = 10


def profile_program(
    name: str,
    plan_payload: dict,
    proc_self_seconds: dict,
    jobs: int,
    seconds: Optional[float] = None,
) -> dict:
    """Join one program's measured self-times onto its shard plan."""
    shards: list[list[str]] = [list(s) for s in plan_payload["shards"]]
    deps = {int(i): tuple(d) for i, d in plan_payload["deps"].items()}
    waves = [tuple(w) for w in plan_payload["waves"]]
    recursive = list(plan_payload.get("recursive", [False] * len(shards)))

    costs = [
        sum(float(proc_self_seconds.get(p, 0.0)) for p in shard)
        for shard in shards
    ]
    total = sum(costs)

    # longest cost-weighted chain; shards arrive reverse-topological
    # (callees first), so every dep index is already finished
    finish = [0.0] * len(shards)
    for i in range(len(shards)):
        finish[i] = costs[i] + max(
            (finish[d] for d in deps.get(i, ())), default=0.0
        )
    span = max(finish, default=0.0)

    # reconstruct one critical path (tie-break: lowest shard index, which
    # is deterministic because the plan itself is)
    path: list[int] = []
    if shards:
        cur = min(
            range(len(shards)), key=lambda i: (-finish[i], i)
        )
        while True:
            path.append(cur)
            dep_list = deps.get(cur, ())
            if not dep_list:
                break
            cur = min(dep_list, key=lambda d: (-finish[d], d))
        path.reverse()  # callees first — execution order
    on_path = set(path)

    wave_rows = []
    for w, members in enumerate(waves):
        wave_costs = [costs[i] for i in members]
        peak = max(wave_costs, default=0.0)
        used = sum(wave_costs)
        wave_rows.append(
            {
                "wave": w,
                "shards": len(members),
                "cost_seconds": round(used, 6),
                "peak_seconds": round(peak, 6),
                "utilization": (
                    round(used / (len(members) * peak), 4)
                    if peak > 0 and members
                    else None
                ),
            }
        )

    def shard_name(i: int) -> str:
        procs = shards[i]
        if len(procs) == 1:
            return procs[0]
        return f"{procs[0]}(+{len(procs) - 1})"

    candidates = sorted(
        (
            {
                "procedure": proc,
                "self_seconds": round(
                    float(proc_self_seconds.get(proc, 0.0)), 6
                ),
                "shard": shard_name(i),
                "recursive": bool(recursive[i]),
            }
            for i in path
            for proc in shards[i]
        ),
        key=lambda c: (-c["self_seconds"], c["procedure"]),
    )[:TOP_CANDIDATES]

    parallelism = (total / span) if span > 0 else None
    brent = (
        total / (total / jobs + span) if span > 0 and jobs > 0 else None
    )
    return {
        "name": name,
        "seconds": round(seconds, 6) if seconds is not None else None,
        "shards": len(shards),
        "waves": len(waves),
        "total_seconds": round(total, 6),
        "critical_path_seconds": round(span, 6),
        "parallelism": round(parallelism, 4) if parallelism else None,
        "brent_bound": round(brent, 4) if brent else None,
        "critical_path": [shard_name(i) for i in path],
        "wave_utilization": wave_rows,
        "candidates": candidates,
    }


def build_parallel_profile(batch) -> dict:
    """The full ``repro-parprof/1`` document for one profiled batch.

    ``batch`` is a :class:`~repro.analysis.parallel.BatchResult` whose
    tasks ran with ``profile=True`` (bundles carry ``profile`` blocks
    with the shard-plan payload and the measured self-times).
    """
    stats = batch.stats()
    jobs = stats["jobs"]
    elapsed = stats["elapsed_seconds"]
    worker_seconds = stats["worker_seconds"]
    span = stats["critical_path_seconds"]
    measured = (worker_seconds / elapsed) if elapsed > 0 else None
    # Brent's lower bound on the makespan of any jobs-worker schedule is
    # max(T1/jobs, T∞), so no schedule beats min(jobs, T1/T∞) — and the
    # measured speedup can never exceed it (elapsed >= every task)
    theoretical = (
        min(float(jobs), worker_seconds / span) if span > 0 else None
    )
    programs = []
    for r in batch.results:
        prof = r.get("profile")
        if not prof or "plan" not in prof:
            continue
        programs.append(
            profile_program(
                r["name"],
                prof["plan"],
                prof.get("proc_self_seconds", {}),
                jobs,
                seconds=r.get("seconds"),
            )
        )
    merged: dict[str, dict] = {}
    for prog in programs:
        for c in prog["candidates"]:
            key = f"{prog['name']}:{c['procedure']}"
            merged[key] = dict(c, program=prog["name"])
    top = sorted(
        merged.values(),
        key=lambda c: (-c["self_seconds"], c["program"], c["procedure"]),
    )[:TOP_CANDIDATES]
    return {
        "format": PARPROF_FORMAT,
        "jobs": jobs,
        "programs_analyzed": stats["programs"],
        "errors": stats["errors"],
        "elapsed_seconds": elapsed,
        "worker_seconds": worker_seconds,
        "critical_path_seconds": span,
        "utilization": stats["utilization"],
        "measured_speedup": round(measured, 4) if measured else None,
        "theoretical_speedup": (
            round(theoretical, 4) if theoretical else None
        ),
        "programs": programs,
        "candidates": top,
    }


def write_profile(profile: dict, path: str) -> None:
    atomic_write_text(
        path, json.dumps(profile, indent=2, sort_keys=True) + "\n"
    )


def load_profile(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        profile = json.load(fh)
    fmt = profile.get("format")
    if fmt != PARPROF_FORMAT:
        raise ValueError(
            f"{path}: not a parallel profile (format={fmt!r}, "
            f"expected {PARPROF_FORMAT!r})"
        )
    return profile


def _fmt(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    return f"{value:g}{suffix}"


def render_report(profile: dict) -> str:
    """The human-readable ``repro parallel-report`` text."""
    lines = [
        "parallel profile "
        f"(jobs={profile['jobs']}, programs={profile['programs_analyzed']}, "
        f"errors={profile['errors']})",
        f"  elapsed               {profile['elapsed_seconds']:.3f}s",
        f"  worker seconds        {profile['worker_seconds']:.3f}s",
        "  critical path         "
        f"{profile['critical_path_seconds']:.3f}s (slowest task)",
        f"  pool utilization      {_fmt(profile['utilization'])}",
        f"  measured speedup      {_fmt(profile['measured_speedup'])}x",
        f"  theoretical speedup   {_fmt(profile['theoretical_speedup'])}x",
        "",
    ]
    for prog in profile["programs"]:
        lines.append(
            f"program {prog['name']}  "
            f"(shards={prog['shards']}, waves={prog['waves']})"
        )
        lines.append(
            f"  work T1={prog['total_seconds']:.4f}s  "
            f"span T∞={prog['critical_path_seconds']:.4f}s  "
            f"parallelism={_fmt(prog['parallelism'])}  "
            f"brent(p={profile['jobs']})={_fmt(prog['brent_bound'])}x"
        )
        path = prog["critical_path"]
        if path:
            shown = " -> ".join(path[:6])
            if len(path) > 6:
                shown += f" -> ... ({len(path)} shards)"
            lines.append(f"  critical path: {shown}")
        busiest = [
            w for w in prog["wave_utilization"] if w["utilization"] is not None
        ]
        busiest.sort(key=lambda w: (w["utilization"], w["wave"]))
        for w in busiest[:3]:
            lines.append(
                f"  wave {w['wave']}: {w['shards']} shards, "
                f"cost {w['cost_seconds']:.4f}s, peak "
                f"{w['peak_seconds']:.4f}s, "
                f"utilization {_fmt(w['utilization'])}"
            )
        lines.append("")
    if profile["candidates"]:
        lines.append("summarize these procedures first (critical path, "
                     "by measured self-time):")
        for rank, c in enumerate(profile["candidates"], 1):
            tag = " [recursive]" if c.get("recursive") else ""
            lines.append(
                f"  {rank:2}. {c['program']}:{c['procedure']}  "
                f"{c['self_seconds']:.6f}s  (shard {c['shard']}){tag}"
            )
    return "\n".join(lines).rstrip() + "\n"
