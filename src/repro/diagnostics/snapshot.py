"""Canonical, deterministic snapshots of an analysis run.

The paper's claims are quantitative — Table 2's "≈ 1 PTF per procedure",
Table 3's alias precision — and the repo's earlier diagnostics layers
(metrics, traces, provenance) all describe a *single* run.  A snapshot is
the missing comparison unit: a JSON document that pins down *what the
analysis computed* in a form two runs, two revisions, or two option sets
can be diffed against (:mod:`repro.diagnostics.diff`).

A snapshot has two strictly separated halves:

**Canonical (hashed, deterministic).**  Same program + same
semantics-affecting options ⇒ byte-identical canonical half, regardless
of host speed, wall time, or pure-memoization knobs:

* ``solution`` — the name-space-normalized points-to solution: per
  procedure, the list of PTF payloads (normalized initial entries, the
  final points-to function at exit, the function-pointer domain), each
  entry rendered through the stable ``str`` form of location sets and
  **sorted** at every level (entries by key, values lexicographically,
  PTFs by their canonical serialization — so the digest does not depend
  on dict iteration or PTF creation order);
* ``digest`` — one SHA-256 per procedure over its canonical PTF payload
  list, plus a whole-program hash folding the per-procedure digests and
  the resolved call graph;
* ``precision`` — the profile the differ classifies drift with: per
  procedure the PTF count, the number of points-to facts, the average
  pointees per pointer (Table 2/3's precision proxy) and the §8
  generalization count; totals including the degradation record count;
* ``call_graph`` and the sanitized ``degradation`` account (records,
  quarantines, reasons — *not* the budget's elapsed seconds);
* ``options`` — the non-default scalar :class:`AnalyzerOptions` fields,
  recorded for provenance but **not hashed** (so the pure-memoization
  knobs — ``lookup_cache`` — provably do not move the digest, which the
  determinism tests assert both ways).

**Volatile (unhashed).**  Everything host- and run-dependent: the perf
profile (phase/procedure timers, elapsed seconds, the raw counters —
cache hits depend on the memoization knobs) and the memory profile
(:meth:`repro.analysis.engine.Analyzer.memory_profile`: interning-table
and sparse-state gauges, PTF-store sizes, and the optional
tracemalloc-sampled peak).

Determinism caveat: block uids seed set-iteration order inside the
engine, so two analyses in the *same process* only produce identical
solutions if :func:`repro.memory.pointsto.reset_interning` ran before
each (exactly as the cached-vs-uncached equivalence tests do).  Separate
processes — the CLI's ``repro snapshot`` — are always comparable.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import fields as _dataclass_fields
from typing import IO, TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular
    # import: analysis.engine itself imports the diagnostics package)
    from ..analysis.engine import AnalyzerOptions
    from ..analysis.results import AnalysisResult

__all__ = [
    "SNAPSHOT_FORMAT",
    "build_snapshot",
    "solution_of",
    "canonical_bytes",
    "dump_snapshot",
    "write_snapshot",
    "load_snapshot",
]

#: bumped whenever the canonical layout changes incompatibly; the differ
#: refuses to compare snapshots of different formats
SNAPSHOT_FORMAT = "repro-snapshot/1"


# ---------------------------------------------------------------------------
# canonical solution extraction
# ---------------------------------------------------------------------------


def _ptf_payload(ptf) -> dict:
    """One PTF rendered canonically: normalized initial entries, the final
    points-to function, and the function-pointer domain, all sorted."""
    initial = []
    for raw in ptf.initial_entries:
        entry = raw.normalized()
        initial.append(
            {
                "source": str(entry.source),
                "targets": sorted(str(t) for t in entry.targets),
            }
        )
    initial.sort(key=lambda e: (e["source"], e["targets"]))
    final = {
        str(loc): sorted(str(v) for v in vals)
        for loc, vals in ptf.summary().items()
    }
    payload = {"initial": initial, "final": final}
    fnptr: dict[str, set] = {}
    for param, names in ptf.fnptr_domain.items():
        if not names:
            continue  # None = unresolvable; nothing stable to record
        fnptr.setdefault(param.representative().name, set()).update(names)
    if fnptr:
        payload["fnptr"] = {k: sorted(fnptr[k]) for k in sorted(fnptr)}
    return payload


def solution_of(result: "AnalysisResult") -> dict:
    """The canonical per-procedure solution: procedure name → sorted list
    of PTF payloads.  Every level is sorted, so the output is independent
    of dict iteration order and of the order contexts were discovered."""
    out: dict[str, list] = {}
    for name in sorted(result.program.procedures):
        payloads = [_ptf_payload(ptf) for ptf in result.ptfs_of(name)]
        payloads.sort(key=lambda p: json.dumps(p, sort_keys=True))
        out[name] = payloads
    return out


def _sha(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _digest(solution: dict, call_graph: dict) -> dict:
    per_proc = {name: _sha(ptfs) for name, ptfs in solution.items()}
    program = _sha({"procedures": per_proc, "call_graph": call_graph})
    return {"program": program, "procedures": per_proc}


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------


def _precision_profile(result: "AnalysisResult", solution: dict) -> dict:
    metrics = result.analyzer.metrics
    report = result.degradation
    degraded_procs = set(report.quarantined) | {r.proc for r in report.records}
    procedures: dict[str, dict] = {}
    total_facts = 0
    total_entries = 0
    total_ptfs = 0
    for name, payloads in solution.items():
        facts = 0
        entries = 0
        for payload in payloads:
            for values in payload["final"].values():
                entries += 1
                facts += len(values)
        total_facts += facts
        total_entries += entries
        total_ptfs += len(payloads)
        rec = {
            "ptfs": len(payloads),
            "facts": facts,
            "avg_pointees": round(facts / entries, 4) if entries else None,
        }
        gen = metrics.proc_generalizations.get(name, 0)
        if gen:
            rec["generalizations"] = gen
        if name in degraded_procs:
            rec["degraded"] = True
        procedures[name] = rec
    counts = [len(p) for p in solution.values() if p]
    return {
        "procedures": procedures,
        "totals": {
            "procedures": len(solution),
            "analyzed": len(counts),
            "total_ptfs": total_ptfs,
            "avg_ptfs": round(sum(counts) / len(counts), 4) if counts else None,
            "max_ptfs": max(counts) if counts else 0,
            "facts": total_facts,
            "avg_pointees": (
                round(total_facts / total_entries, 4) if total_entries else None
            ),
            "generalizations": metrics.ptf_generalizations,
            "degraded_records": len(report.records) + len(report.frontend),
            "quarantined": sorted(report.quarantined),
        },
    }


def _sanitized_degradation(report) -> dict:
    """The degradation account without the budget's wall-clock fields —
    everything here must be deterministic so it can live in the hashed
    half of the snapshot."""
    return {
        "ok": report.ok,
        "partial": report.partial,
        "quarantined": sorted(report.quarantined),
        "records": [r.as_dict() for r in report.records],
        "frontend": [f.as_dict() for f in report.frontend],
        "reasons": report.reasons(),
    }


def _canonical_options(options: Optional["AnalyzerOptions"]) -> dict:
    """Non-default scalar option fields (same convention as the bench
    harness's subprocess forwarding)."""
    if options is None:
        return {}
    from ..analysis.engine import AnalyzerOptions

    defaults = AnalyzerOptions()
    out = {}
    for f in _dataclass_fields(AnalyzerOptions):
        value = getattr(options, f.name)
        if value == getattr(defaults, f.name):
            continue
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[f.name] = value
    return out


def _perf_profile(result: "AnalysisResult") -> dict:
    analyzer = result.analyzer
    metrics = analyzer.metrics.as_dict()
    return {
        "elapsed_seconds": round(analyzer.elapsed_seconds, 6),
        "phases": metrics["timers"]["phases"],
        "procedures": metrics["timers"]["procedures"],
        "procedures_self": metrics["timers"]["procedures_self"],
        "procedure_passes": metrics["timers"]["procedure_passes"],
        "counters": metrics["counters"],
        "derived": metrics["derived"],
    }


# ---------------------------------------------------------------------------
# snapshot assembly + I/O
# ---------------------------------------------------------------------------


def build_snapshot(
    result: "AnalysisResult",
    options: Optional["AnalyzerOptions"] = None,
    program_name: Optional[str] = None,
    include_solution: bool = True,
) -> dict:
    """Assemble the snapshot document for a finished analysis.

    ``options`` defaults to the analyzer's own options.  With
    ``include_solution=False`` the (potentially large) solution section is
    dropped — the digest is always computed from it first, so a slim
    snapshot still supports digest-level and profile-level diffing.
    """
    if options is None:
        options = result.analyzer.options
    solution = solution_of(result)
    call_graph = {
        caller: sorted(callees)
        for caller, callees in sorted(result.call_graph().items())
    }
    snap = {
        "format": SNAPSHOT_FORMAT,
        "program": program_name or result.program.name,
        "options": _canonical_options(options),
        "digest": _digest(solution, call_graph),
        "precision": _precision_profile(result, solution),
        "call_graph": call_graph,
        "degradation": _sanitized_degradation(result.degradation),
        "volatile": {
            "perf": _perf_profile(result),
            "memory": result.analyzer.memory_profile(),
        },
    }
    if include_solution:
        snap["solution"] = solution
    return snap


def canonical_bytes(snap: dict) -> bytes:
    """The deterministic half of a snapshot, serialized canonically.

    Drops the ``volatile`` section *and* the unhashed ``options`` record,
    then emits sorted-key compact JSON — two runs of the same program
    under semantics-equivalent options produce byte-identical output
    (this is what the determinism tests compare, and the property the
    acceptance criteria pin)."""
    stable = {
        k: v for k, v in snap.items() if k not in ("volatile", "options")
    }
    return json.dumps(stable, sort_keys=True, separators=(",", ":")).encode("utf-8")


def dump_snapshot(snap: dict) -> str:
    """Pretty, sorted serialization for files (trailing newline)."""
    return json.dumps(snap, indent=2, sort_keys=True) + "\n"


def write_snapshot(snap: dict, dest: Union[str, IO] = "-") -> None:
    """Write ``snap`` to a path, ``-`` (stdout), or an open file object."""
    payload = dump_snapshot(snap)
    if dest == "-":
        sys.stdout.write(payload)
    elif hasattr(dest, "write"):
        dest.write(payload)
    else:
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(payload)


def load_snapshot(source: Union[str, IO]) -> dict:
    """Read a snapshot from a path, ``-`` (stdin), or an open file object;
    validates the format tag."""
    if source == "-":
        snap = json.load(sys.stdin)
    elif hasattr(source, "read"):
        snap = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as fh:
            snap = json.load(fh)
    fmt = snap.get("format")
    if fmt != SNAPSHOT_FORMAT:
        raise ValueError(
            f"unsupported snapshot format {fmt!r} (expected {SNAPSHOT_FORMAT!r})"
        )
    return snap
