"""Serve-path telemetry: counters, gauges, and streaming histograms.

Where :class:`~repro.diagnostics.metrics.Metrics` instruments the
*analysis* (single-threaded, hot inner loops, plain ``+=`` attributes),
this module instruments the *serving* path (``repro serve`` /
``repro loadtest``): many threads, per-request latencies spanning six
orders of magnitude, and a live process that must answer "how am I
doing?" without pausing.  Three primitives, one registry:

* :class:`Counter` — a monotone event count (requests, errors,
  deadline expiries, cache hits);
* :class:`Gauge` — a current level (in-flight requests);
* :class:`LogHistogram` — a **log-bucketed streaming histogram** of a
  positive quantity (request latency in milliseconds).

The histogram is the load-bearing piece.  It follows the HDR/DDSketch
recipe: values land in geometric buckets whose boundaries grow by a
fixed factor ``gamma = (1 + eps) / (1 - eps)``, so

* ``record`` is **O(1)** — one ``log``, one dict increment — and the
  memory is O(number of distinct buckets touched), not O(samples);
* every reported quantile is within **bounded relative error** ``eps``
  (default 1%) of the exact sorted-sample quantile: the bucket midpoint
  ``2·gamma^i / (gamma + 1)`` is at most ``eps`` away (relatively) from
  any value in bucket ``i`` — the property
  ``tests/diagnostics/test_telemetry.py`` pins with hypothesis;
* two histograms **merge** by adding bucket counts — exact, lossless,
  associative and commutative (``merge(a, b).digest() ==
  merge(b, a).digest()``), which is what lets the load generator give
  every client thread its own histogram and fold them afterwards with
  no cross-thread contention.

Snapshots (:meth:`LogHistogram.snapshot`) export exact ``count`` /
``min`` / ``max`` and estimated ``p50`` / ``p90`` / ``p99`` (any
quantile via :meth:`LogHistogram.quantile`); the mean is derived through
the one shared :func:`~repro.diagnostics.metrics.safe_ratio` guard so an
empty histogram reports ``null``, never a fabricated ``0.0``.

:class:`TelemetryRegistry` is the thread-safe namespace the daemon owns:
``registry.counter("requests").inc()``, ``registry.gauge("in_flight")``,
``registry.histogram("latency.points_to").record(ms)``.  Instruments are
created on first use and live forever (a live admin ``stats`` op must
never see a counter vanish).  ``as_dict()`` follows the same
JSON-snapshot convention as ``Metrics.as_dict`` — plain data, sorted
keys, ``null`` for undefined ratios — and ``merge()`` folds another
registry in (the load generator's per-thread registries).
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from typing import Iterable, Optional

from .metrics import safe_ratio

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "TelemetryRegistry",
    "TokenBucket",
    "DEFAULT_RELATIVE_ERROR",
    "prometheus_text",
]

#: default bounded relative error of histogram quantiles (1%)
DEFAULT_RELATIVE_ERROR = 0.01

#: quantiles every snapshot exports, in reporting order
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """A monotone event counter (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A current-level gauge (thread-safe; ``add`` for +/- deltas)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class TokenBucket:
    """A thread-safe token-bucket rate limiter (the serve daemon's
    overload-shedding primitive — docs/ROBUSTNESS.md §8).

    ``rate`` tokens refill per second up to a ``burst`` ceiling
    (default ``max(1, rate)``); :meth:`take` admits a request batch of
    ``n`` tokens or refuses it without blocking, and
    :meth:`retry_after_seconds` reports how long until ``n`` tokens
    would be available — the daemon turns that into the
    ``retry_after_ms`` hint on ``overloaded`` error envelopes.

    The refill clock is injectable (default ``time.monotonic``) so the
    admission decisions are exactly reproducible under a fake clock in
    tests; under the real clock the *decision rule* is still
    deterministic — admit iff the bucket holds ``n`` tokens — which is
    what "deterministic load shedding" means here: no randomness, no
    dependence on thread arrival order beyond the serialized takes.
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"token bucket rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst <= 0:
            raise ValueError(
                f"token bucket burst must be positive, got {self.burst}"
            )
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        if now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now

    def take(self, n: float = 1.0) -> bool:
        """Admit ``n`` tokens' worth of work, or refuse (never blocks)."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after_seconds(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens would be available (0 if already)."""
        with self._lock:
            self._refill_locked()
            deficit = n - self._tokens
            return 0.0 if deficit <= 0 else deficit / self.rate

    @property
    def tokens(self) -> float:
        """The current (refilled) token level."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class LogHistogram:
    """Log-bucketed streaming histogram with bounded relative error.

    Buckets are geometric: value ``v > 0`` lands in bucket
    ``ceil(log(v) / log(gamma))`` with ``gamma = (1 + eps) / (1 - eps)``.
    Non-positive values (a clock that went backwards, a zero-length
    request) are counted in a dedicated zero bucket so ``count`` stays
    exact.  All statistics except the quantile *positions* are exact:
    ``count``, ``min``, ``max``, per-bucket counts, and the merge of two
    histograms.  ``sum`` is kept for the derived mean but deliberately
    excluded from :meth:`digest` — float addition is commutative but not
    associative, and the digest exists to prove the *mergeable state*
    (bucket table + exact extremes) is order-independent.
    """

    __slots__ = (
        "relative_error",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error!r}"
            )
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> count (sparse; touched buckets only)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def _bucket_value(self, index: int) -> float:
        """The representative (midpoint) value of bucket ``index``:
        ``2·gamma^i / (gamma + 1)``, within ``relative_error`` of every
        value the bucket can contain."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def record(self, value: float) -> None:
        """Record one sample.  O(1); thread-safe."""
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if value <= 0.0:
                self._zero_count += 1
                return
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def record_n(self, value: float, n: int) -> None:
        """Record ``n`` samples of the same ``value`` in O(1) — the
        daemon's batched lines share one wire latency, so a batch is one
        bucket increment, not ``n`` lock round-trips."""
        if n <= 0:
            return
        with self._lock:
            self._count += n
            self._sum += value * n
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if value <= 0.0:
                self._zero_count += n
                return
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + n

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # -- statistics --------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile (``0 <= q <= 1``), or ``None``
        on an empty histogram.

        Uses the nearest-rank definition (rank ``ceil(q * count)``,
        minimum 1) over the bucket table; the returned value is the
        containing bucket's midpoint, except for the exact extremes:
        rank 1 returns the exact ``min`` and rank ``count`` the exact
        ``max`` (both tracked precisely, so ``p0``/``p100`` never drift).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            if self._count == 0:
                return None
            rank = max(1, math.ceil(q * self._count))
            if rank >= self._count:
                return self._max
            if rank <= 1:
                return self._min
            seen = self._zero_count
            if rank <= seen:
                return 0.0
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                if rank <= seen:
                    return self._bucket_value(index)
            return self._max  # pragma: no cover - guarded by rank checks

    def snapshot(self, ndigits: int = 4) -> dict:
        """JSON-ready summary: exact count/min/max/sum, estimated
        p50/p90/p99, derived mean (``null`` when empty)."""
        quantiles = {
            f"p{int(q * 100)}": self.quantile(q) for q in SNAPSHOT_QUANTILES
        }
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        out = {
            "count": count,
            "sum": round(total, 6),
            "min": None if lo is None else round(lo, 6),
            "max": None if hi is None else round(hi, 6),
            "mean": safe_ratio(total, count, 6),
            "relative_error": self.relative_error,
        }
        for name, value in quantiles.items():
            out[name] = None if value is None else round(value, ndigits)
        return out

    # -- merging -----------------------------------------------------------

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (returns ``self``).

        Exact: bucket counts add; min/max take the extremes.  Requires
        the same ``relative_error`` (the bucket grids must line up)."""
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge histograms with different relative errors: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        # lock ordering by id() so two concurrent a.merge(b) / b.merge(a)
        # calls cannot deadlock
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            for index, n in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._zero_count += other._zero_count
            self._count += other._count
            self._sum += other._sum
            if other._min is not None and (
                self._min is None or other._min < self._min
            ):
                self._min = other._min
            if other._max is not None and (
                self._max is None or other._max > self._max
            ):
                self._max = other._max
        return self

    @classmethod
    def merged(cls, histograms: Iterable["LogHistogram"]) -> "LogHistogram":
        """A fresh histogram holding the fold of ``histograms``."""
        out: Optional[LogHistogram] = None
        for h in histograms:
            if out is None:
                out = cls(relative_error=h.relative_error)
            out.merge(h)
        return out if out is not None else cls()

    def digest(self) -> str:
        """SHA-256 over the exact mergeable state (sorted bucket table,
        zero bucket, count, min, max).  Equal digests == equal
        distributions as far as any quantile can tell; the associativity
        and commutativity tests compare digests, not floats."""
        with self._lock:
            payload = (
                f"eps={self.relative_error!r};zero={self._zero_count};"
                f"count={self._count};min={self._min!r};max={self._max!r};"
                + ",".join(
                    f"{i}:{self._buckets[i]}" for i in sorted(self._buckets)
                )
            )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- cross-process transport -------------------------------------------

    def to_payload(self) -> dict:
        """The exact mergeable state as plain picklable/JSON data.

        Histograms carry a :class:`threading.Lock` and deliberately do
        not pickle; this is the transport form a worker process ships to
        the parent (``repro analyze --jobs N --profile-parallel``).
        ``from_payload(h.to_payload())`` reproduces ``h`` bucket-exactly
        (equal :meth:`digest`)."""
        with self._lock:
            return {
                "relative_error": self.relative_error,
                "buckets": sorted(self._buckets.items()),
                "zero_count": self._zero_count,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    @classmethod
    def from_payload(cls, payload: dict) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_payload` output."""
        out = cls(relative_error=payload["relative_error"])
        out._buckets = {int(i): int(n) for i, n in payload["buckets"]}
        out._zero_count = int(payload["zero_count"])
        out._count = int(payload["count"])
        out._sum = float(payload["sum"])
        out._min = payload["min"]
        out._max = payload["max"]
        return out


class TelemetryRegistry:
    """Thread-safe namespace of counters, gauges, and histograms.

    Instruments are created on first access and never removed; ``name``
    is the flat dotted key the snapshot exports (``requests``,
    ``latency.points_to``).  The registry lock only guards the *name
    tables* — each instrument carries its own lock, so two threads
    recording into different histograms never contend here.
    """

    def __init__(
        self, relative_error: float = DEFAULT_RELATIVE_ERROR
    ) -> None:
        self.relative_error = relative_error
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LogHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> LogHistogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = LogHistogram(
                    relative_error=self.relative_error
                )
            return inst

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every instrument — the same
        convention as :meth:`repro.diagnostics.metrics.Metrics.as_dict`
        (plain data, sorted keys downstream, ``null`` ratios)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: counters[k].value for k in sorted(counters)},
            "gauges": {k: gauges[k].value for k in sorted(gauges)},
            "histograms": {
                k: histograms[k].snapshot() for k in sorted(histograms)
            },
        }

    def merge(self, other: "TelemetryRegistry") -> "TelemetryRegistry":
        """Fold another registry in (per-thread load-generator
        registries); counters/gauges add, histograms merge exactly."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            histograms = dict(other._histograms)
        for name, c in counters.items():
            self.counter(name).inc(c.value)
        for name, g in gauges.items():
            self.gauge(name).add(g.value)
        for name, h in histograms.items():
            self.histogram(name).merge(h)
        return self

    # -- cross-process transport -------------------------------------------

    def to_payload(self) -> dict:
        """Plain picklable/JSON transport form of the whole registry —
        what a profiled worker process ships back so the parent can fold
        its instruments in with the exact bucket merge."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "relative_error": self.relative_error,
            "counters": {k: c.value for k, c in counters.items()},
            "gauges": {k: g.value for k, g in gauges.items()},
            "histograms": {
                k: h.to_payload() for k, h in histograms.items()
            },
        }

    def merge_payload(self, payload: dict) -> "TelemetryRegistry":
        """Fold a :meth:`to_payload` transport block in: counters and
        gauges add, histograms merge bucket-exactly (the associative/
        commutative :meth:`LogHistogram.merge`)."""
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).add(value)
        for name, hist in payload.get("histograms", {}).items():
            self.histogram(name).merge(LogHistogram.from_payload(hist))
        return self


# ---------------------------------------------------------------------------
# Prometheus text exposition (docs/OBSERVABILITY.md §5)
# ---------------------------------------------------------------------------

#: characters legal in a Prometheus metric name after the first
_PROM_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _prom_name(*parts: str) -> str:
    """A legal Prometheus metric name from dotted instrument names:
    ``latency.points_to`` -> ``repro_latency_points_to``."""
    flat = "_".join(p.replace(".", "_") for p in parts if p)
    flat = "".join(c if c in _PROM_OK else "_" for c in flat)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(
    registry: Optional["TelemetryRegistry"],
    prefix: str = "repro",
    extra_gauges: Optional[dict] = None,
) -> str:
    """Render a registry in the Prometheus text exposition format
    (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, counters suffixed
    ``_total``, gauges plain, histograms as summaries (``{quantile=…}``
    series plus ``_sum`` / ``_count``).

    ``extra_gauges`` lets a caller fold in scalar levels that live
    outside the registry (the daemon's uptime, generation, in-flight
    count) so one scrape answers everything.  Deterministic: metrics are
    emitted in sorted-name order.  ``registry`` may be ``None``
    (telemetry disabled) — the extra gauges still render.
    """
    lines: list[str] = []
    snap = registry.as_dict() if registry is not None else {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    for name in sorted(snap["counters"]):
        metric = _prom_name(prefix, name) + "_total"
        lines.append(f"# HELP {metric} Monotone event counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(snap['counters'][name])}")
    gauges = dict(snap["gauges"])
    for key, value in (extra_gauges or {}).items():
        gauges[key] = value
    for name in sorted(gauges):
        metric = _prom_name(prefix, name)
        lines.append(f"# HELP {metric} Current level {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauges[name])}")
    for name in sorted(snap["histograms"]):
        hist = snap["histograms"][name]
        metric = _prom_name(prefix, name)
        lines.append(
            f"# HELP {metric} Log-bucketed histogram {name!r} "
            f"(relative error {hist['relative_error']})."
        )
        lines.append(f"# TYPE {metric} summary")
        for q in SNAPSHOT_QUANTILES:
            value = hist.get(f"p{int(q * 100)}")
            lines.append(
                f'{metric}{{quantile="{q}"}} {_prom_value(value)}'
            )
        lines.append(f"{metric}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"
