"""Semantic diffing of analysis snapshots: the drift taxonomy.

Given two snapshots (:mod:`repro.diagnostics.snapshot`) of the *same*
program — two revisions, two option sets, two hosts — classify what
moved between them into a small, stable vocabulary:

==================  =====================================================
``bit-identical``    the whole-program digests match (the canonical
                     solutions are byte-identical)
``precision-loss``   a pointer gained possible targets, a procedure's
                     average pointees grew, or new degradation records
                     appeared — the new run knows *less*
``precision-gain``   the reverse: targets vanished, pointees shrank,
                     degradations cleared
``shape-change``     procedures/PTFs appeared or disappeared, or the call
                     graph changed — the two runs are not comparing the
                     same program shape (classified, never failed on by
                     default)
``perf-regression``  elapsed seconds grew beyond the threshold (default
                     10%, floor 5 ms), with per-procedure attribution
                     from the exclusive self-time profile
``perf-improvement`` the reverse
``mem-regression``   the tracemalloc peak or the live state/interning
                     gauges grew beyond the threshold
==================  =====================================================

Every precision record carries **per-procedure attribution** and, for
fact-level drift, the exact ``(location, target)`` fact that appeared or
vanished plus a ready-made ``repro explain VAR@PROC`` query — the bridge
into the provenance layer, which can then answer *why* the surviving run
derives that fact.

``--fail-on`` specs (CLI) look like ``precision-loss,perf:5%,mem:20%``:
bare kind names select classes that make ``repro diff`` exit non-zero;
``perf:N%`` / ``mem:N%`` additionally tighten the respective thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "DRIFT_KINDS",
    "DriftRecord",
    "DiffReport",
    "diff_snapshots",
    "FailOn",
    "parse_fail_on",
]

#: the closed drift vocabulary, in reporting order
DRIFT_KINDS = (
    "precision-loss",
    "precision-gain",
    "perf-regression",
    "perf-improvement",
    "mem-regression",
    "shape-change",
    "bit-identical",
)

#: perf deltas below this many seconds are noise, never drift
_PERF_FLOOR_SECONDS = 0.005
#: per-procedure self-time attribution floor
_PROC_PERF_FLOOR_SECONDS = 0.002
#: at most this many fact-level records per procedure per direction
_MAX_FACTS_PER_PROC = 8


@dataclass
class DriftRecord:
    """One classified difference between two snapshots."""

    kind: str
    proc: str = ""
    detail: str = ""
    old: object = None
    new: object = None
    #: a ``repro explain`` query (``VAR@PROC``) that locates the drifted
    #: fact in the provenance layer, when one could be derived
    explain: str = ""

    def as_dict(self) -> dict:
        out = {"kind": self.kind, "proc": self.proc, "detail": self.detail}
        if self.old is not None:
            out["old"] = self.old
        if self.new is not None:
            out["new"] = self.new
        if self.explain:
            out["explain"] = self.explain
        return out

    def render(self) -> str:
        out = self.kind
        if self.proc:
            out += f" proc={self.proc}"
        if self.detail:
            out += f": {self.detail}"
        if self.explain:
            out += f"   [repro explain FILE --query {self.explain}]"
        return out


class DiffReport:
    """The classified outcome of one snapshot comparison."""

    def __init__(self, old_program: str, new_program: str) -> None:
        self.old_program = old_program
        self.new_program = new_program
        self.records: list[DriftRecord] = []

    def add(self, kind: str, **kwargs) -> DriftRecord:
        assert kind in DRIFT_KINDS, kind
        rec = DriftRecord(kind, **kwargs)
        self.records.append(rec)
        return rec

    def classes(self) -> set[str]:
        return {r.kind for r in self.records}

    @property
    def identical(self) -> bool:
        return self.classes() <= {"bit-identical"}

    def failed(self, fail_on: "FailOn") -> set[str]:
        """The failing drift classes actually present in this report."""
        return self.classes() & fail_on.kinds

    def as_dict(self) -> dict:
        ordered = sorted(
            self.records, key=lambda r: (DRIFT_KINDS.index(r.kind), r.proc)
        )
        return {
            "old_program": self.old_program,
            "new_program": self.new_program,
            "classes": sorted(self.classes()),
            "identical": self.identical,
            "records": [r.as_dict() for r in ordered],
        }

    def summary_lines(self) -> list[str]:
        if not self.records:
            return ["no drift detected"]
        ordered = sorted(
            self.records, key=lambda r: (DRIFT_KINDS.index(r.kind), r.proc)
        )
        return [r.render() for r in ordered]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiffReport classes={sorted(self.classes())} n={len(self.records)}>"


# ---------------------------------------------------------------------------
# --fail-on parsing
# ---------------------------------------------------------------------------


@dataclass
class FailOn:
    """Parsed ``--fail-on`` spec: failing classes + tightened thresholds."""

    kinds: set = field(default_factory=set)
    perf_threshold: Optional[float] = None
    mem_threshold: Optional[float] = None


def parse_fail_on(spec: Optional[str]) -> FailOn:
    """``precision-loss,perf:5%,mem:20%`` → :class:`FailOn`.

    ``perf:N%`` selects ``perf-regression`` *and* sets its threshold;
    ``mem:N%`` likewise for ``mem-regression``.  Unknown kinds raise
    ``ValueError`` (catching typos like ``precison-loss`` beats silently
    never failing)."""
    out = FailOn()
    if not spec:
        return out
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, _, pct = part.partition(":")
            name = name.strip()
            pct = pct.strip().rstrip("%")
            try:
                value = float(pct) / 100.0
            except ValueError:
                raise ValueError(f"bad --fail-on threshold: {part!r}")
            if name == "perf":
                out.kinds.add("perf-regression")
                out.perf_threshold = value
            elif name == "mem":
                out.kinds.add("mem-regression")
                out.mem_threshold = value
            else:
                raise ValueError(f"unknown --fail-on threshold kind: {name!r}")
            continue
        if part == "perf":
            out.kinds.add("perf-regression")
        elif part == "mem":
            out.kinds.add("mem-regression")
        elif part in DRIFT_KINDS:
            out.kinds.add(part)
        else:
            raise ValueError(
                f"unknown --fail-on class: {part!r} "
                f"(expected one of {', '.join(DRIFT_KINDS)})"
            )
    return out


# ---------------------------------------------------------------------------
# fact extraction + attribution helpers
# ---------------------------------------------------------------------------


def _facts_of(payloads: list) -> set[tuple[str, str]]:
    """All ``(location, target)`` facts across a procedure's PTFs, merged.

    Comparing the merged relation (rather than PTF-by-PTF) keeps the diff
    stable under pure PTF-boundary reshuffles: splitting one summary into
    two with the same union of facts is not precision drift."""
    facts: set[tuple[str, str]] = set()
    for payload in payloads:
        for loc, targets in payload.get("final", {}).items():
            for t in targets:
                facts.add((loc, t))
    return facts


def _explain_query(loc: str, proc: str) -> str:
    """Derive a ``VAR@PROC`` provenance query from a canonical location
    string like ``(main::p, 0)`` — empty when the location is not a named
    source variable (heap blocks, extended parameters, strides)."""
    if not loc.startswith("(") or "," not in loc:
        return ""
    name = loc[1:].split(",", 1)[0].strip()
    if "::" in name:
        owner, _, var = name.rpartition("::")
        owner = owner.split("::")[-1]
        if var.isidentifier():
            return f"{var}@{owner}" if owner != proc else f"{var}@{proc}"
        return ""
    if name.isidentifier():  # a global, queried from the procedure
        return f"{name}@{proc}"
    return ""


def _fact_records(
    report: DiffReport,
    kind: str,
    proc: str,
    facts: set[tuple[str, str]],
    verb: str,
) -> None:
    ordered = sorted(facts)
    for loc, target in ordered[:_MAX_FACTS_PER_PROC]:
        report.add(
            kind,
            proc=proc,
            detail=f"{loc} -> {target} {verb}",
            explain=_explain_query(loc, proc),
        )
    if len(ordered) > _MAX_FACTS_PER_PROC:
        report.add(
            kind,
            proc=proc,
            detail=(
                f"... and {len(ordered) - _MAX_FACTS_PER_PROC} more facts {verb}"
            ),
        )


# ---------------------------------------------------------------------------
# the differ
# ---------------------------------------------------------------------------


def diff_snapshots(
    old: dict,
    new: dict,
    perf_threshold: float = 0.10,
    mem_threshold: float = 0.10,
) -> DiffReport:
    """Classify the drift between two snapshots of the same program."""
    report = DiffReport(old.get("program", "?"), new.get("program", "?"))
    for snap, which in ((old, "old"), (new, "new")):
        if snap.get("format") != old.get("format") or "digest" not in snap:
            raise ValueError(f"{which} snapshot is not a valid repro snapshot")

    identical = old["digest"]["program"] == new["digest"]["program"]
    if identical:
        report.add(
            "bit-identical",
            detail=f"program digest {new['digest']['program'][:12]}… unchanged",
        )
    else:
        _diff_precision(report, old, new)
    _diff_degradation(report, old, new)
    _diff_perf(report, old, new, perf_threshold)
    _diff_memory(report, old, new, mem_threshold)
    return report


def _diff_precision(report: DiffReport, old: dict, new: dict) -> None:
    old_digests = old["digest"]["procedures"]
    new_digests = new["digest"]["procedures"]
    old_sol = old.get("solution")
    new_sol = new.get("solution")
    old_prec = old.get("precision", {}).get("procedures", {})
    new_prec = new.get("precision", {}).get("procedures", {})

    for proc in sorted(set(old_digests) | set(new_digests)):
        in_old = proc in old_digests
        in_new = proc in new_digests
        if in_old != in_new:
            report.add(
                "shape-change",
                proc=proc,
                detail="procedure only in " + ("old" if in_old else "new") + " snapshot",
            )
            continue
        if old_digests[proc] == new_digests[proc]:
            continue
        o = old_prec.get(proc, {})
        n = new_prec.get(proc, {})
        if o.get("ptfs") != n.get("ptfs"):
            report.add(
                "shape-change",
                proc=proc,
                detail=f"PTF count {o.get('ptfs')} -> {n.get('ptfs')}",
                old=o.get("ptfs"),
                new=n.get("ptfs"),
            )
        # fact-level attribution when both snapshots carry the solution
        if old_sol is not None and new_sol is not None:
            old_facts = _facts_of(old_sol.get(proc, []))
            new_facts = _facts_of(new_sol.get(proc, []))
            gained = new_facts - old_facts
            lost = old_facts - new_facts
            if gained:
                _fact_records(report, "precision-loss", proc, gained, "appeared")
            if lost:
                _fact_records(report, "precision-gain", proc, lost, "vanished")
            if not gained and not lost:
                # digest moved but the merged fact relation did not:
                # initial domains / fnptr domains / PTF packaging shifted
                report.add(
                    "shape-change",
                    proc=proc,
                    detail="PTF domains changed (merged facts identical)",
                )
        else:
            # digest-only comparison: classify by the precision profile
            o_avg, n_avg = o.get("avg_pointees"), n.get("avg_pointees")
            if o_avg is not None and n_avg is not None and o_avg != n_avg:
                kind = "precision-loss" if n_avg > o_avg else "precision-gain"
                report.add(
                    kind,
                    proc=proc,
                    detail=f"avg pointees {o_avg} -> {n_avg} (no solution on record)",
                    old=o_avg,
                    new=n_avg,
                )
            else:
                report.add(
                    "shape-change",
                    proc=proc,
                    detail="digest changed (no solution on record to attribute)",
                )
    if old.get("call_graph") != new.get("call_graph"):
        changed = [
            caller
            for caller in sorted(
                set(old.get("call_graph", {})) | set(new.get("call_graph", {}))
            )
            if old.get("call_graph", {}).get(caller)
            != new.get("call_graph", {}).get(caller)
        ]
        report.add(
            "shape-change",
            detail=f"call graph changed for: {', '.join(changed)}",
        )


def _diff_degradation(report: DiffReport, old: dict, new: dict) -> None:
    o = old.get("degradation", {})
    n = new.get("degradation", {})
    o_quar = set(o.get("quarantined", ()))
    n_quar = set(n.get("quarantined", ()))
    for proc in sorted(n_quar - o_quar):
        report.add(
            "precision-loss",
            proc=proc,
            detail="procedure newly quarantined (conservative havoc summary)",
        )
    for proc in sorted(o_quar - n_quar):
        report.add(
            "precision-gain",
            proc=proc,
            detail="procedure no longer quarantined",
        )
    o_count = len(o.get("records", ())) + len(o.get("frontend", ()))
    n_count = len(n.get("records", ())) + len(n.get("frontend", ()))
    if n_count > o_count:
        report.add(
            "precision-loss",
            detail=f"degradation records {o_count} -> {n_count}",
            old=o_count,
            new=n_count,
        )
    elif o_count > n_count:
        report.add(
            "precision-gain",
            detail=f"degradation records {o_count} -> {n_count}",
            old=o_count,
            new=n_count,
        )


def _perf_of(snap: dict) -> dict:
    return snap.get("volatile", {}).get("perf", {})


def _diff_perf(
    report: DiffReport, old: dict, new: dict, threshold: float
) -> None:
    o_sec = _perf_of(old).get("elapsed_seconds")
    n_sec = _perf_of(new).get("elapsed_seconds")
    if o_sec is None or n_sec is None:
        return
    delta = n_sec - o_sec
    if abs(delta) < _PERF_FLOOR_SECONDS or o_sec <= 0:
        return
    ratio = delta / o_sec
    if abs(ratio) < threshold:
        return
    kind = "perf-regression" if delta > 0 else "perf-improvement"
    rec = report.add(
        kind,
        detail=f"elapsed {o_sec:.3f}s -> {n_sec:.3f}s ({ratio:+.1%})",
        old=o_sec,
        new=n_sec,
    )
    # per-procedure attribution from the exclusive self-time profile
    o_self = _perf_of(old).get("procedures_self", {})
    n_self = _perf_of(new).get("procedures_self", {})
    offenders = []
    for proc in set(o_self) | set(n_self):
        d = n_self.get(proc, 0.0) - o_self.get(proc, 0.0)
        if (d > 0) == (delta > 0) and abs(d) >= _PROC_PERF_FLOOR_SECONDS:
            offenders.append((abs(d), proc, d))
    offenders.sort(reverse=True)
    for _mag, proc, d in offenders[:5]:
        report.add(
            kind,
            proc=proc,
            detail=(
                f"self time {o_self.get(proc, 0.0):.3f}s -> "
                f"{n_self.get(proc, 0.0):.3f}s ({d:+.3f}s)"
            ),
            old=o_self.get(proc, 0.0),
            new=n_self.get(proc, 0.0),
        )
    del rec


def _mem_of(snap: dict) -> dict:
    return snap.get("volatile", {}).get("memory", {})


def _diff_memory(
    report: DiffReport, old: dict, new: dict, threshold: float
) -> None:
    o_mem = _mem_of(old)
    n_mem = _mem_of(new)
    checks = [
        ("tracemalloc_peak_kb", "tracemalloc peak", "KiB", 64.0),
        ("blocks_created", "memory blocks created", "", 256),
        ("locsets_interned", "location sets interned", "", 256),
    ]
    for key, label, unit, floor in checks:
        o_v = o_mem.get(key)
        n_v = n_mem.get(key)
        if o_v is None or n_v is None or o_v <= 0:
            continue
        delta = n_v - o_v
        if delta < floor or delta / o_v < threshold:
            continue
        suffix = f" {unit}" if unit else ""
        report.add(
            "mem-regression",
            detail=f"{label} {o_v}{suffix} -> {n_v}{suffix} (+{delta / o_v:.1%})",
            old=o_v,
            new=n_v,
        )
    o_entries = (o_mem.get("state") or {}).get("entries")
    n_entries = (n_mem.get("state") or {}).get("entries")
    if (
        o_entries
        and n_entries
        and n_entries - o_entries >= 64
        and (n_entries - o_entries) / o_entries >= threshold
    ):
        report.add(
            "mem-regression",
            detail=(
                f"live points-to state entries {o_entries} -> {n_entries} "
                f"(+{(n_entries - o_entries) / o_entries:.1%})"
            ),
            old=o_entries,
            new=n_entries,
        )
