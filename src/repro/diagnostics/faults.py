"""Deterministic fault injection for the degradation ladder.

The graceful-degradation paths (quarantine + conservative havoc stubs,
see :mod:`repro.analysis.guards`) only run when something goes wrong —
which, on the healthy benchmark suite, is never.  :class:`FaultPlan`
makes "something goes wrong" reproducible: a seeded plan injects

* **parse failures** — a translation unit refuses to parse
  (``site="parse"``, keyed by filename),
* **budget exhaustion** — a procedure's dispatch trips as if a resource
  guard had fired (``site="exhaust"``, keyed by procedure name),
* **forced non-convergence** — a procedure's fixpoint never converges,
  so the ``max_passes`` valve trips (``site="nonconverge"``, keyed by
  procedure name),

either at *named* sites (exact filenames / procedure names) or at a
*rate* (each candidate site flips an independent, deterministic coin).

Determinism contract: the verdict for a given ``(seed, site, name)``
triple is a pure function — same plan, same program, same faults, on
every run and in any order of evaluation.  That is what makes the
degradation tests assertable (``random.Random(f"{seed}:{site}:{name}")``
per query; no shared stream, so query order cannot matter).

``FaultPlan.from_spec`` parses the CLI's ``--inject-faults`` argument::

    seed=7,parse=0.2,exhaust=qsort;lookup,nonconverge=0.05

Comma-separated ``key=value`` entries; values that parse as floats are
rates in [0, 1], anything else is a ``;``-separated list of names.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FaultPlan"]

#: valid injection sites, also the spec keys accepting rates/names
SITES = ("parse", "exhaust", "nonconverge")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded plan of injected analysis faults."""

    seed: int = 0
    #: per-site probability that an *unnamed* candidate faults
    parse_rate: float = 0.0
    exhaust_rate: float = 0.0
    nonconverge_rate: float = 0.0
    #: exact names that always fault (filenames for parse, procedure
    #: names otherwise)
    parse_names: frozenset = field(default_factory=frozenset)
    exhaust_names: frozenset = field(default_factory=frozenset)
    nonconverge_names: frozenset = field(default_factory=frozenset)

    # -- the three injection hooks ----------------------------------------

    def fail_parse(self, filename: str) -> bool:
        """Should this translation unit pretend to be unparseable?"""
        return self._hit("parse", filename, self.parse_rate, self.parse_names)

    def exhaust(self, proc: str) -> bool:
        """Should dispatching to ``proc`` trip as if a budget ran out?"""
        return self._hit("exhaust", proc, self.exhaust_rate, self.exhaust_names)

    def nonconverge(self, proc: str) -> bool:
        """Should ``proc``'s fixpoint pretend it never converges?"""
        return self._hit(
            "nonconverge", proc, self.nonconverge_rate, self.nonconverge_names
        )

    def _hit(self, site: str, name: str, rate: float, names: frozenset) -> bool:
        if name in names:
            return True
        if rate <= 0.0:
            return False
        # one private generator per (seed, site, name): the verdict is a
        # pure function of the triple, independent of query order
        return random.Random(f"{self.seed}:{site}:{name}").random() < rate

    # -- CLI spec ----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``--inject-faults`` syntax (see module docstring)."""
        seed = 0
        rates = {site: 0.0 for site in SITES}
        names = {site: set() for site in SITES}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            if key == "seed":
                seed = int(value)
                continue
            if key not in SITES:
                raise ValueError(
                    f"unknown fault site {key!r} (expected one of "
                    f"{', '.join(SITES)}, or seed)"
                )
            try:
                rate = float(value)
            except ValueError:
                names[key].update(n for n in value.split(";") if n)
                continue
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {key}={rate} outside [0, 1]")
            rates[key] = rate
        return cls(
            seed=seed,
            parse_rate=rates["parse"],
            exhaust_rate=rates["exhaust"],
            nonconverge_rate=rates["nonconverge"],
            parse_names=frozenset(names["parse"]),
            exhaust_names=frozenset(names["exhaust"]),
            nonconverge_names=frozenset(names["nonconverge"]),
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for site, rate, named in (
            ("parse", self.parse_rate, self.parse_names),
            ("exhaust", self.exhaust_rate, self.exhaust_names),
            ("nonconverge", self.nonconverge_rate, self.nonconverge_names),
        ):
            if rate:
                parts.append(f"{site}={rate}")
            if named:
                parts.append(f"{site}={';'.join(sorted(named))}")
        return ",".join(parts)
