"""Deterministic fault injection for the degradation ladder.

The graceful-degradation paths (quarantine + conservative havoc stubs,
see :mod:`repro.analysis.guards`) only run when something goes wrong —
which, on the healthy benchmark suite, is never.  :class:`FaultPlan`
makes "something goes wrong" reproducible: a seeded plan injects

* **parse failures** — a translation unit refuses to parse
  (``site="parse"``, keyed by filename),
* **budget exhaustion** — a procedure's dispatch trips as if a resource
  guard had fired (``site="exhaust"``, keyed by procedure name),
* **forced non-convergence** — a procedure's fixpoint never converges,
  so the ``max_passes`` valve trips (``site="nonconverge"``, keyed by
  procedure name),

and, for the serving layer (``repro serve`` — docs/ROBUSTNESS.md §8),

* **slow handlers** — a request line is answered only after an injected
  ``slow_ms`` stall (``site="slow"``, keyed by the request line text),
* **mid-request disconnects** — the daemon reads a request line, then
  drops the connection without writing the answer (``site="disconnect"``,
  keyed by the line text),
* **corrupt reloads** — a hot-swap target store pretends to fail its
  integrity check, exercising the keep-serving-the-old-store fallback
  (``site="corrupt_reload"``, keyed by ``path#attempt``),

either at *named* sites (exact filenames / procedure names / line
texts) or at a *rate* (each candidate site flips an independent,
deterministic coin).

Determinism contract: the verdict for a given ``(seed, site, name)``
triple is a pure function — same plan, same program, same faults, on
every run and in any order of evaluation.  That is what makes the
degradation tests assertable (``random.Random(f"{seed}:{site}:{name}")``
per query; no shared stream, so query order cannot matter).

``FaultPlan.from_spec`` parses the CLI's ``--inject-faults`` /
``--inject-serve-faults`` argument::

    seed=7,parse=0.2,exhaust=qsort;lookup,nonconverge=0.05
    seed=3,slow=0.05,disconnect=0.02,slow_ms=10

Comma-separated ``key=value`` entries; values that parse as floats are
rates in [0, 1], anything else is a ``;``-separated list of names.
``slow_ms`` is not a site: it sets the injected stall duration for the
``slow`` site (default 25 ms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FaultPlan"]

#: valid injection sites, also the spec keys accepting rates/names
SITES = ("parse", "exhaust", "nonconverge", "slow", "disconnect",
         "corrupt_reload")

#: default injected stall for the ``slow`` serve site (milliseconds)
DEFAULT_SLOW_FAULT_MS = 25.0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded plan of injected analysis/serve faults."""

    seed: int = 0
    #: per-site probability that an *unnamed* candidate faults
    parse_rate: float = 0.0
    exhaust_rate: float = 0.0
    nonconverge_rate: float = 0.0
    slow_rate: float = 0.0
    disconnect_rate: float = 0.0
    corrupt_reload_rate: float = 0.0
    #: exact names that always fault (filenames for parse, procedure
    #: names for the analysis sites, request-line texts for the serve
    #: sites)
    parse_names: frozenset = field(default_factory=frozenset)
    exhaust_names: frozenset = field(default_factory=frozenset)
    nonconverge_names: frozenset = field(default_factory=frozenset)
    slow_names: frozenset = field(default_factory=frozenset)
    disconnect_names: frozenset = field(default_factory=frozenset)
    corrupt_reload_names: frozenset = field(default_factory=frozenset)
    #: injected stall for the ``slow`` site (milliseconds)
    slow_ms: float = DEFAULT_SLOW_FAULT_MS

    # -- the analysis injection hooks --------------------------------------

    def fail_parse(self, filename: str) -> bool:
        """Should this translation unit pretend to be unparseable?"""
        return self._hit("parse", filename, self.parse_rate, self.parse_names)

    def exhaust(self, proc: str) -> bool:
        """Should dispatching to ``proc`` trip as if a budget ran out?"""
        return self._hit("exhaust", proc, self.exhaust_rate, self.exhaust_names)

    def nonconverge(self, proc: str) -> bool:
        """Should ``proc``'s fixpoint pretend it never converges?"""
        return self._hit(
            "nonconverge", proc, self.nonconverge_rate, self.nonconverge_names
        )

    # -- the serve injection hooks -----------------------------------------

    def slow_serve(self, name: str) -> bool:
        """Should answering this request line stall for ``slow_ms``?"""
        return self._hit("slow", name, self.slow_rate, self.slow_names)

    def drop_connection(self, name: str) -> bool:
        """Should the daemon drop the connection after reading this
        request line, without writing the answer?"""
        return self._hit(
            "disconnect", name, self.disconnect_rate, self.disconnect_names
        )

    def corrupt_reload(self, name: str) -> bool:
        """Should this hot-swap target (``path#attempt``) pretend to
        fail its integrity check?"""
        return self._hit(
            "corrupt_reload", name, self.corrupt_reload_rate,
            self.corrupt_reload_names,
        )

    def _hit(self, site: str, name: str, rate: float, names: frozenset) -> bool:
        if name in names:
            return True
        if rate <= 0.0:
            return False
        # one private generator per (seed, site, name): the verdict is a
        # pure function of the triple, independent of query order
        return random.Random(f"{self.seed}:{site}:{name}").random() < rate

    @property
    def serves_faults(self) -> bool:
        """Whether any serve-path site is configured (the daemon skips
        the per-line fault probes entirely otherwise)."""
        return bool(
            self.slow_rate or self.slow_names
            or self.disconnect_rate or self.disconnect_names
            or self.corrupt_reload_rate or self.corrupt_reload_names
        )

    # -- CLI spec ----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``--inject-faults`` syntax (see module docstring)."""
        seed = 0
        slow_ms = DEFAULT_SLOW_FAULT_MS
        rates = {site: 0.0 for site in SITES}
        names = {site: set() for site in SITES}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            if key == "seed":
                seed = int(value)
                continue
            if key == "slow_ms":
                slow_ms = float(value)
                if slow_ms < 0:
                    raise ValueError(f"slow_ms={slow_ms} must be >= 0")
                continue
            if key not in SITES:
                raise ValueError(
                    f"unknown fault site {key!r} (expected one of "
                    f"{', '.join(SITES)}, seed, or slow_ms)"
                )
            try:
                rate = float(value)
            except ValueError:
                names[key].update(n for n in value.split(";") if n)
                continue
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {key}={rate} outside [0, 1]")
            rates[key] = rate
        kwargs = {f"{site}_rate": rates[site] for site in SITES}
        kwargs.update(
            {f"{site}_names": frozenset(names[site]) for site in SITES}
        )
        return cls(seed=seed, slow_ms=slow_ms, **kwargs)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for site in SITES:
            rate = getattr(self, f"{site}_rate")
            named = getattr(self, f"{site}_names")
            if rate:
                parts.append(f"{site}={rate}")
            if named:
                parts.append(f"{site}={';'.join(sorted(named))}")
        if self.slow_ms != DEFAULT_SLOW_FAULT_MS:
            parts.append(f"slow_ms={self.slow_ms}")
        return ",".join(parts)
