"""Analysis diagnostics: counters, timers, traces, and provenance.

Three cooperating layers, all pay-for-what-you-use:

* :class:`Metrics` — hot-path counters and phase/procedure timers,
  threaded through the engine unconditionally (plain attribute ``+=``,
  no dict probes).  Surfaces as ``Analyzer.stats``, ``--stats-json``
  and the bench harness columns.
* :class:`Tracer` — hierarchical span/event tracing of the driver
  phases, per-procedure evaluations, fixpoint passes and the
  interprocedural events, exported as Chrome trace-event JSON
  (Perfetto-loadable) or JSONL.  Off (``None``) by default; instrument
  sites cost one ``is not None`` check when disabled.
* :class:`ProvenanceLog` — derivation records for points-to entries
  ("why does ``p`` point to ``x``?"), walked by the ``repro explain``
  CLI.  Also off by default.

The *serving* path has its own layer, :class:`TelemetryRegistry`
(:mod:`~repro.diagnostics.telemetry`): thread-safe counters, gauges and
mergeable log-bucketed latency histograms for the ``repro serve`` daemon
and the ``repro loadtest`` harness (``docs/OBSERVABILITY.md`` §5).

Plus :class:`FaultPlan`, the deterministic seeded fault-injection hook
that exercises the degradation ladder (``--inject-faults``; see
``docs/ROBUSTNESS.md``).

On top of the per-run layers sits the **regression observatory**
(:mod:`~repro.diagnostics.snapshot` / :mod:`~repro.diagnostics.diff`):
canonical, deterministic snapshots of what a run computed — points-to
digest, precision profile, perf profile, memory profile — and a semantic
differ that classifies drift between two snapshots into the closed
:data:`DRIFT_KINDS` vocabulary (``repro snapshot`` / ``repro diff``).

See ``docs/OBSERVABILITY.md`` for the walkthrough.
"""

from .diff import DRIFT_KINDS, DiffReport, DriftRecord, FailOn, diff_snapshots, parse_fail_on
from .faults import FaultPlan
from .metrics import Metrics
from .provenance import Derivation, ProvenanceLog
from .snapshot import (
    SNAPSHOT_FORMAT,
    build_snapshot,
    canonical_bytes,
    dump_snapshot,
    load_snapshot,
    write_snapshot,
)
from .telemetry import Counter, Gauge, LogHistogram, TelemetryRegistry
from .trace import EVENT_VOCABULARY, Tracer

__all__ = [
    "Metrics",
    "Tracer",
    "Counter",
    "Gauge",
    "LogHistogram",
    "TelemetryRegistry",
    "EVENT_VOCABULARY",
    "ProvenanceLog",
    "Derivation",
    "FaultPlan",
    "SNAPSHOT_FORMAT",
    "build_snapshot",
    "canonical_bytes",
    "dump_snapshot",
    "load_snapshot",
    "write_snapshot",
    "DRIFT_KINDS",
    "DiffReport",
    "DriftRecord",
    "FailOn",
    "diff_snapshots",
    "parse_fail_on",
]
