"""Analysis diagnostics: counters and timers for the hot paths.

The :class:`Metrics` object is threaded through the engine so that the
cost of the sparse representation's dominator walks — and the effect of
the lookup memoization layer on them — shows up as numbers in
``Analyzer.stats``, the ``--stats-json`` CLI flag, and the bench harness
instead of being guessed at.
"""

from .metrics import Metrics

__all__ = ["Metrics"]
