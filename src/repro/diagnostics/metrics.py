"""Counters and timers for the analysis engine.

One :class:`Metrics` instance is owned by the
:class:`~repro.analysis.engine.Analyzer` and shared by every points-to
state it creates, so the counters aggregate across all PTFs of a run.

Counter semantics:

* ``lookups`` — calls to the public ``lookup``/``lookup_overlapping`` of
  any points-to state (dense or sparse);
* ``cache_hits`` / ``cache_misses`` — probes of the sparse lookup
  memoization caches (``_search``, ``_find_strong_fence`` and
  ``lookup_overlapping`` result caches).  The hit rate only counts probes
  while the cache is enabled; with ``AnalyzerOptions.lookup_cache=False``
  both stay zero;
* ``dom_walk_steps`` — dominator-tree edges traversed by the sparse
  representation's searches (the paper's §4.2 walk).  This is the number
  the memoization layer exists to shrink;
* ``phi_insertions`` — φ-functions inserted at iterated dominance
  frontiers (§4.2, Figure 9);
* ``strong_updates`` / ``weak_updates`` — assignments recorded by kind
  (§4.1);
* ``initial_fetches`` — lazy initial-value fetches that added an entry to
  a PTF's input domain (§3.2);
* ``eval_passes`` — full reverse-postorder passes executed by
  ``ProcEvaluator.run``;
* ``guard_trips`` — resource guards that fired (deadline, pass budget,
  call depth, PTF cap, state-entry cap, injected faults);
* ``degraded_calls`` — call sites summarized by the conservative havoc
  stub instead of a real PTF (the degradation ladder's fallback);
* ``ptf_generalizations`` — contexts force-merged into a procedure's
  first PTF because ``ptf_limit`` (or the total-PTF budget) was reached
  (§8's generalization fallback).

Timers: ``phase_seconds`` buckets the top-level driver phases
(``finalize`` / ``analysis`` / ``summary``); ``proc_seconds`` buckets
*inclusive* per-procedure evaluation time (a caller's bucket includes the
time spent analyzing its callees at its call nodes), and
``proc_self_seconds`` the *exclusive* complement (inclusive minus the
time spent in nested callee evaluations) so per-procedure hotspots are
not all attributed to ``main``.  ``as_dict`` additionally derives
``dom_steps_per_lookup`` — the average dominator-walk length per public
lookup, the single number the memoization layer optimizes.

This is the **counter vocabulary**; the companion **event vocabulary**
(the span/instant names the optional tracer emits — driver phases,
``eval``/``pass`` spans, ``ptf.create``/``ptf.reuse``/``ptf.miss``,
``apply_summary``, ``initial_fetch``, …) is documented in
:data:`repro.diagnostics.trace.EVENT_VOCABULARY` next to the tracer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

__all__ = ["Metrics", "safe_ratio"]

#: counter attribute names, in reporting order
COUNTERS = (
    "lookups",
    "cache_hits",
    "cache_misses",
    "dom_walk_steps",
    "phi_insertions",
    "strong_updates",
    "weak_updates",
    "initial_fetches",
    "eval_passes",
    "guard_trips",
    "degraded_calls",
    "ptf_generalizations",
    # -- query subsystem (repro.query; zero for plain analysis runs) ------
    "queries",
    "query_cache_hits",
    "query_cache_misses",
)


def safe_ratio(
    numerator: Union[int, float],
    denominator: Union[int, float],
    ndigits: int = 4,
) -> Optional[float]:
    """``numerator / denominator`` rounded, or ``None`` on a zero
    denominator.

    The single null-on-zero-denominator guard shared by every derived
    ratio in the diagnostics stack (``Metrics.as_dict``'s
    ``cache_hit_rate`` / ``dom_steps_per_lookup`` and the query engine's
    ``query_cache_hit_rate``).  ``None`` — not ``0.0`` — because a run
    that never probed a cache is not an all-miss run, and downstream
    consumers (the snapshot differ, the bench trajectory) must not be
    fed a fabricated number.
    """
    if not denominator:
        return None
    return round(numerator / denominator, ndigits)


class Metrics:
    """Mutable bag of analysis counters and timers.

    The hot-path contract is that incrementing a counter is a plain
    attribute ``+=`` on this object — no dict probes, no method calls —
    so the instrumentation itself stays off the profile.
    """

    __slots__ = COUNTERS + (
        "phase_seconds",
        "proc_seconds",
        "proc_self_seconds",
        "proc_passes",
        "proc_generalizations",
        "_proc_stack",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in COUNTERS:
            setattr(self, name, 0)
        #: phase name -> accumulated seconds
        self.phase_seconds: dict[str, float] = {}
        #: procedure name -> accumulated (inclusive) evaluation seconds
        self.proc_seconds: dict[str, float] = {}
        #: procedure name -> accumulated *exclusive* seconds (inclusive
        #: minus time spent in callee evaluations nested within)
        self.proc_self_seconds: dict[str, float] = {}
        #: procedure name -> accumulated evaluation passes
        self.proc_passes: dict[str, int] = {}
        #: procedure name -> contexts force-merged into its first PTF (the
        #: per-procedure split of the ``ptf_generalizations`` counter; the
        #: snapshot layer's precision profile attributes §8 generalization
        #: pressure with it)
        self.proc_generalizations: dict[str, int] = {}
        #: live evaluation stack: [name, start, child_seconds] frames,
        #: maintained by start_proc/end_proc to split self vs callee time
        self._proc_stack: list[list] = []

    # -- timers -----------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a top-level driver phase (accumulating on re-entry)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + time.perf_counter() - start
            )

    def add_proc_time(
        self,
        proc_name: str,
        seconds: float,
        passes: int = 0,
        self_seconds: Optional[float] = None,
    ) -> None:
        """Accumulate evaluation time for one procedure.

        ``seconds`` is inclusive; ``self_seconds`` is the exclusive share
        (defaults to ``seconds`` when the caller tracked no nesting).
        """
        self.proc_seconds[proc_name] = self.proc_seconds.get(proc_name, 0.0) + seconds
        self.proc_self_seconds[proc_name] = self.proc_self_seconds.get(
            proc_name, 0.0
        ) + (seconds if self_seconds is None else self_seconds)
        if passes:
            self.proc_passes[proc_name] = self.proc_passes.get(proc_name, 0) + passes

    def start_proc(self, proc_name: str) -> None:
        """Open a (possibly nested) procedure-evaluation timer frame."""
        self._proc_stack.append([proc_name, time.perf_counter(), 0.0])

    def end_proc(self, passes: int = 0) -> float:
        """Close the innermost frame; attributes inclusive time to the
        procedure, exclusive time (inclusive minus nested frames) to its
        self bucket, and charges the elapsed time to the parent frame's
        child accumulator.  Returns the inclusive seconds."""
        name, start, child = self._proc_stack.pop()
        elapsed = time.perf_counter() - start
        self.add_proc_time(
            name, elapsed, passes, self_seconds=max(elapsed - child, 0.0)
        )
        if self._proc_stack:
            self._proc_stack[-1][2] += elapsed
        return elapsed

    def note_generalization(self, proc_name: str) -> None:
        """Count one §8 force-merge, both globally and per procedure."""
        self.ptf_generalizations += 1
        self.proc_generalizations[proc_name] = (
            self.proc_generalizations.get(proc_name, 0) + 1
        )

    # -- derived ----------------------------------------------------------

    def dom_steps_per_lookup(self) -> float:
        """Average dominator-walk steps per public lookup (0.0 when no
        lookup ran).  This is the per-operation cost the memoization
        layer exists to shrink — comparable across program sizes where
        the raw ``dom_walk_steps`` total is not."""
        if self.lookups == 0:
            return 0.0
        return self.dom_walk_steps / self.lookups

    def cache_hit_rate(self) -> float:
        """Fraction of sparse lookup-cache probes that hit (0.0 when the
        cache was never probed, e.g. dense states or cache disabled)."""
        probes = self.cache_hits + self.cache_misses
        if probes == 0:
            return 0.0
        return self.cache_hits / probes

    def query_cache_hit_rate(self) -> Optional[float]:
        """Fraction of query-engine LRU probes that hit, or ``None`` when
        no query ever probed the cache (plain analysis runs)."""
        return safe_ratio(
            self.query_cache_hits, self.query_cache_hits + self.query_cache_misses
        )

    def counters(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in COUNTERS}

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every counter and timer.

        The derived ratios are emitted as ``null`` when their denominator
        is zero (an empty or fully degraded run performed no lookups /
        never probed a cache); :func:`safe_ratio` is the one shared guard
        — see its docstring for why ``null``, not ``0.0``.
        """
        hit_rate = safe_ratio(self.cache_hits, self.cache_hits + self.cache_misses)
        steps_per_lookup = safe_ratio(self.dom_walk_steps, self.lookups)
        return {
            "counters": self.counters(),
            "cache_hit_rate": hit_rate,
            "derived": {
                "dom_steps_per_lookup": steps_per_lookup,
                "cache_hit_rate": hit_rate,
                "query_cache_hit_rate": self.query_cache_hit_rate(),
            },
            "timers": {
                "phases": {k: round(v, 6) for k, v in sorted(self.phase_seconds.items())},
                "procedures": {
                    k: round(v, 6) for k, v in sorted(self.proc_seconds.items())
                },
                "procedures_self": {
                    k: round(v, 6)
                    for k, v in sorted(self.proc_self_seconds.items())
                },
                "procedure_passes": dict(sorted(self.proc_passes.items())),
                "procedure_generalizations": dict(
                    sorted(self.proc_generalizations.items())
                ),
            },
        }

    def merge(self, other: "Metrics") -> None:
        """Fold another metrics object into this one (bench aggregation)."""
        for name in COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for k, v in other.phase_seconds.items():
            self.phase_seconds[k] = self.phase_seconds.get(k, 0.0) + v
        for k, v in other.proc_seconds.items():
            self.proc_seconds[k] = self.proc_seconds.get(k, 0.0) + v
        for k, v in other.proc_self_seconds.items():
            self.proc_self_seconds[k] = self.proc_self_seconds.get(k, 0.0) + v
        for k, v in other.proc_passes.items():
            self.proc_passes[k] = self.proc_passes.get(k, 0) + v
        for k, v in other.proc_generalizations.items():
            self.proc_generalizations[k] = self.proc_generalizations.get(k, 0) + v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.counters()
        parts = ", ".join(f"{k}={v}" for k, v in c.items() if v)
        return f"<Metrics {parts or 'empty'}>"
