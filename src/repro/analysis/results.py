"""Query interface over a completed analysis.

Wraps the :class:`~repro.analysis.engine.Analyzer` with the questions
clients ask:

* points-to sets of named variables at procedure exit (per PTF or merged);
* may-alias queries between two pointer expressions;
* the resolved call graph (function-pointer calls included);
* PTF statistics — the Table 2 columns (#procedures, analysis seconds,
  average PTFs per procedure);
* parameter-alias facts for the parallelizer client ("can these two formals
  alias in any context?" — §7's use of the analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..frontend.ctypes_model import WORD_SIZE
from ..ir.expr import GlobalSymbol, LocalSymbol
from ..ir.nodes import CallNode
from ..ir.program import Procedure, Program
from ..memory.blocks import ExtendedParameter, MemoryBlock, ProcedureBlock
from ..memory.locset import LocationSet
from ..memory.pointsto import normalize_loc
from .engine import Analyzer, AnalyzerOptions, analyze
from .guards import DegradationReport
from .ptf import PTF

__all__ = ["AnalysisResult", "run_analysis", "PTFStats"]

#: libc functions with no caller-visible pointer side effects
_PURE_LIBC = frozenset({
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh",
    "tanh", "exp", "log", "log10", "pow", "sqrt", "ceil", "floor", "fabs",
    "fmod", "abs", "labs", "ldexp", "strlen", "strcmp", "strncmp", "memcmp",
    "isalpha", "isdigit", "isalnum", "isspace", "tolower", "toupper",
})


@dataclass
class PTFStats:
    """The per-program statistics reported in Table 2."""

    procedures: int
    analysis_seconds: float
    avg_ptfs: float
    total_ptfs: int
    max_ptfs: int
    source_lines: int

    def row(self) -> tuple:
        return (
            self.source_lines,
            self.procedures,
            round(self.analysis_seconds, 3),
            round(self.avg_ptfs, 2),
        )


class AnalysisResult:
    """User-facing facade over a finished analysis."""

    def __init__(self, analyzer: Analyzer) -> None:
        self.analyzer = analyzer
        self.program: Program = analyzer.program

    @property
    def degradation(self) -> "DegradationReport":
        """The run's structured degradation report (guards.py): which
        procedures were quarantined, why, and the budget consumed.  A
        fully precise run has ``degradation.ok == True``."""
        return self.analyzer.degradation

    # ------------------------------------------------------------------
    # points-to queries
    # ------------------------------------------------------------------

    def ptfs_of(self, proc_name: str) -> list[PTF]:
        return list(self.analyzer.ptfs.get(proc_name, ()))

    def points_to_names(self, proc_name: str, var: str) -> set[str]:
        """Names of blocks the pointer variable ``var`` may target at the
        exit of ``proc_name``, merged over every PTF and context."""
        out: set[str] = set()
        for loc in self.points_to(proc_name, var):
            out.add(self.display_name(loc.base))
        return out

    def points_to(self, proc_name: str, var: str) -> set[LocationSet]:
        """Location sets ``var`` may point to at procedure exit, with
        extended parameters translated to caller-space names where bound."""
        proc = self.program.procedures[proc_name]
        results: set[LocationSet] = set()
        for ptf in self.ptfs_of(proc_name):
            loc = self._var_loc(proc, ptf, var)
            if loc is None:
                continue
            vals = ptf.state.lookup_overlapping(loc, proc.exit, width=WORD_SIZE)
            if not vals:
                initial = ptf.state.get_initial(normalize_loc(loc))
                if initial:
                    vals = initial
            results |= self._concretize(ptf, vals)
        return results

    def _var_loc(
        self, proc: Procedure, ptf: PTF, var: str
    ) -> Optional[LocationSet]:
        symbol = proc.locals.get(var)
        if symbol is not None:
            return LocationSet(proc.local_block(symbol), 0, 0)
        if var in self.program.globals:
            param = ptf.global_params.get(var)
            if param is not None:
                return LocationSet(param.representative(), 0, 0)
            return LocationSet(self.program.global_block(var), 0, 0)
        return None

    def _concretize(self, ptf: PTF, values: Iterable[LocationSet]) -> set[LocationSet]:
        """Translate extended parameters to what they represent, where the
        PTF's last context bound them."""
        out: set[LocationSet] = set()
        map_ = ptf.current_map
        for v in values:
            base = v.base
            if isinstance(base, ExtendedParameter):
                rep = base.representative()
                if rep.global_block is not None:
                    out.add(LocationSet(rep.global_block, v.offset, v.stride))
                    continue
                bound = map_.lookup_param(rep) if map_ is not None else None
                if bound:
                    for b in bound:
                        shifted = b.with_offset(v.offset) if b.stride == 0 else b
                        out.add(shifted)
                    continue
            out.add(v)
        return out

    # ------------------------------------------------------------------
    # provenance ("why does p point to x?")
    # ------------------------------------------------------------------

    def explain(
        self, proc_name: str, var: str, max_depth: int = 8
    ) -> list[dict]:
        """Derivation chains answering *why* ``var`` points to each of its
        targets at the exit of ``proc_name``.

        Requires the analysis to have run with
        ``AnalyzerOptions.provenance=True``; raises ``ValueError``
        otherwise.  One dict per (PTF, value) pair: the queried location,
        the value, its display name, and the chain of
        :class:`~repro.diagnostics.provenance.Derivation` records
        (root — the final write — first) as dicts with a ``depth`` key.
        """
        prov = self.analyzer.provenance
        if prov is None:
            raise ValueError(
                "analysis ran without provenance; "
                "set AnalyzerOptions.provenance=True"
            )
        proc = self.program.procedures.get(proc_name)
        if proc is None:
            raise KeyError(f"no procedure named {proc_name!r}")
        out: list[dict] = []
        for ptf in self.ptfs_of(proc_name):
            loc = self._var_loc(proc, ptf, var)
            if loc is None:
                continue
            loc = normalize_loc(loc)
            vals = ptf.state.lookup_overlapping(loc, proc.exit, width=WORD_SIZE)
            if not vals:
                initial = ptf.state.get_initial(loc)
                if initial:
                    vals = initial
            for v in sorted(vals, key=str):
                value = normalize_loc(v)
                chain = prov.explain(str(loc), str(value), max_depth=max_depth)
                out.append(
                    {
                        "proc": proc_name,
                        "var": var,
                        "ptf": ptf.uid,
                        "loc": str(loc),
                        "value": str(value),
                        "display": self.display_name(value.base),
                        "chain": [
                            dict(rec.as_dict(), depth=depth)
                            for depth, rec in chain
                        ],
                    }
                )
        return out

    def points_to_at(self, proc_name: str, var: str, line: int) -> set[str]:
        """Flow-sensitive query: the names ``var`` may point to just before
        the first statement at source ``line`` of ``proc_name``."""
        proc = self.program.procedures[proc_name]
        out: set[str] = set()
        for ptf in self.ptfs_of(proc_name):
            loc = self._var_loc(proc, ptf, var)
            if loc is None:
                continue
            for node in proc.nodes():
                if not node.coord:
                    continue
                if f":{line}:" in node.coord or node.coord.endswith(f":{line}"):
                    vals = ptf.state.lookup_overlapping(loc, node, width=WORD_SIZE)
                    for v in self._concretize(ptf, vals):
                        out.add(self.display_name(v.base))
                    break
        return out

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the analysis results."""
        stats = self.stats()
        procedures = {}
        for name in sorted(self.program.procedures):
            ptfs = self.ptfs_of(name)
            summaries = []
            for ptf in ptfs:
                summaries.append(
                    {
                        "initial": [
                            {
                                "source": str(e.source),
                                "targets": sorted(str(t) for t in e.targets),
                            }
                            for e in ptf.initial_entries
                        ],
                        "final": {
                            str(loc): sorted(str(v) for v in vals)
                            for loc, vals in sorted(
                                ptf.summary().items(),
                                key=lambda kv: str(kv[0]),
                            )
                        },
                    }
                )
            procedures[name] = {"ptfs": summaries}
        out = {
            "program": self.program.name,
            "stats": {
                "procedures": stats.procedures,
                "analysis_seconds": stats.analysis_seconds,
                "avg_ptfs": stats.avg_ptfs,
                "total_ptfs": stats.total_ptfs,
                "source_lines": stats.source_lines,
            },
            "call_graph": {
                caller: sorted(callees)
                for caller, callees in sorted(self.call_graph().items())
            },
            "procedures": procedures,
        }
        report = self.analyzer.degradation
        if not report.ok:
            # additive key, only for degraded runs: a default-config run's
            # snapshot stays byte-identical to the pre-guard engine
            out["degradation"] = report.as_dict()
        return out

    def display_name(self, block: MemoryBlock) -> str:
        name = block.name
        if isinstance(block, ExtendedParameter) and block.global_block is not None:
            return block.global_block.name
        return name.split("::")[-1]

    # ------------------------------------------------------------------
    # alias queries
    # ------------------------------------------------------------------

    def may_alias(self, proc_name: str, var_a: str, var_b: str) -> bool:
        """Whether ``*var_a`` and ``*var_b`` may overlap in any context."""
        for ptf in self.ptfs_of(proc_name):
            a = self._targets_in_ptf(ptf, var_a)
            b = self._targets_in_ptf(ptf, var_b)
            for la in a:
                for lb in b:
                    if la.base is lb.base and la.overlaps(lb, width=WORD_SIZE, other_width=WORD_SIZE):
                        return True
        return False

    def targets_by_ptf(self, proc_name: str, var: str) -> list[tuple[PTF, set[LocationSet]]]:
        """Per-PTF may-point-to targets of ``var`` — exactly the sets
        :meth:`may_alias` compares (exit lookup ∪ initial entries), in the
        PTF's own name space.  The query store persists these so alias
        verdicts answered from disk agree with the live analysis."""
        out: list[tuple[PTF, set[LocationSet]]] = []
        for ptf in self.ptfs_of(proc_name):
            targets = self._targets_in_ptf(ptf, var)
            if targets:
                out.append((ptf, targets))
        return out

    def queryable_vars(self, proc_name: str) -> list[str]:
        """Names a demand query may ask about in ``proc_name``: its locals
        (formals included) plus every program global."""
        proc = self.program.procedures[proc_name]
        return sorted(set(proc.locals) | set(self.program.globals))

    # ------------------------------------------------------------------
    # MOD/REF (derived from PTF side effects)
    # ------------------------------------------------------------------

    def mod_ref(self, proc_name: str) -> dict:
        """Caller-visible MOD/REF sets of ``proc_name``, derived from its
        PTFs.

        *MOD* — locations the procedure (or anything it calls — callee
        effects on caller-visible memory are already folded into the
        caller's final points-to function) may write: the summary keys at
        procedure exit, minus the procedure's own locals and return cell.

        *REF* — input locations it may read: the initial points-to entry
        sources (§3.2's lazily discovered input domain), minus the
        procedure's own locals (reading a formal's own cell is reading the
        argument *value*, not caller memory).

        Returns ``{"mod": {name: {"kind", "locs"}}, "ref": {...}}`` keyed
        by display name; ``kind`` is the memory-block kind (``global``,
        ``xparam`` = memory reachable from the caller's arguments,
        ``heap``, ``string``, ``proc``).
        """
        from ..memory.blocks import LocalBlock, ReturnBlock

        def account(bucket: dict, loc: LocationSet) -> None:
            base = loc.base
            if isinstance(base, (LocalBlock, ReturnBlock)):
                return
            if isinstance(base, ExtendedParameter):
                base = base.representative()
                if base.global_block is not None:
                    rec = bucket.setdefault(
                        base.global_block.name, {"kind": "global", "locs": set()}
                    )
                    rec["locs"].add(str(loc))
                    return
            rec = bucket.setdefault(
                self.display_name(base), {"kind": base.kind, "locs": set()}
            )
            rec["locs"].add(str(loc))

        mod: dict[str, dict] = {}
        ref: dict[str, dict] = {}
        for ptf in self.ptfs_of(proc_name):
            for loc in ptf.summary():
                account(mod, normalize_loc(loc))
            for raw in ptf.initial_entries:
                account(ref, raw.normalized().source)
        for bucket in (mod, ref):
            for rec in bucket.values():
                rec["locs"] = sorted(rec["locs"])
        return {
            "mod": {k: mod[k] for k in sorted(mod)},
            "ref": {k: ref[k] for k in sorted(ref)},
        }

    def _targets_in_ptf(self, ptf: PTF, var: str) -> set[LocationSet]:
        proc = ptf.proc
        loc = self._var_loc(proc, ptf, var)
        if loc is None:
            return set()
        vals = set(ptf.state.lookup_overlapping(loc, proc.exit, width=WORD_SIZE))
        initial = ptf.state.get_initial(normalize_loc(loc))
        if initial:
            vals |= initial
        return vals

    def formals_may_alias(self, proc_name: str) -> bool:
        """Whether any two pointer formals of ``proc_name`` may point to
        overlapping storage in any analyzed context (the parallelizer's
        question, §7)."""
        proc = self.program.procedures[proc_name]
        names = [f.name for f in proc.formals]
        for ptf in self.ptfs_of(proc_name):
            initial_targets: list[tuple[str, set[LocationSet]]] = []
            for name in names:
                block = proc.local_block(proc.locals[name])
                init = ptf.state.get_initial(LocationSet(block, 0, 0))
                if init:
                    initial_targets.append((name, set(init)))
            for i, (na, ta) in enumerate(initial_targets):
                for nb, tb in initial_targets[i + 1 :]:
                    for la in ta:
                        for lb in tb:
                            if la.base is lb.base and la.overlaps(
                                lb, width=WORD_SIZE, other_width=WORD_SIZE
                            ):
                                return True
        return False

    def is_pure(self, proc_name: str) -> bool:
        """Whether every analyzed context of ``proc_name`` writes only its
        own locals and return value (no caller-visible pointer effects).

        The parallelizer uses this to allow calls to helper functions
        (e.g. ``squash`` in alvinn) inside parallel loops.
        """
        from ..memory.blocks import LocalBlock, ReturnBlock

        ptfs = self.ptfs_of(proc_name)
        if not ptfs:
            return False
        for ptf in ptfs:
            for loc in ptf.summary():
                if not isinstance(loc.base, (LocalBlock, ReturnBlock)):
                    return False
        # transitively: everything this procedure calls must be pure too
        for callee in self._static_callees(proc_name):
            if callee == proc_name:
                continue
            if callee in self.program.procedures:
                if not self.is_pure(callee):
                    return False
            elif callee not in _PURE_LIBC:
                return False
        return True

    def _static_callees(self, proc_name: str) -> set[str]:
        from ..ir.expr import AddressTerm, ProcSymbol, SymbolLoc

        out: set[str] = set()
        proc = self.program.procedures.get(proc_name)
        if proc is None:
            return out
        for node in proc.call_nodes():
            direct = False
            for term in node.target.terms:
                if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                    if isinstance(term.loc.symbol, ProcSymbol):
                        out.add(term.loc.symbol.name)
                        direct = True
            if not direct:
                out.add("<indirect>")
        return out

    # ------------------------------------------------------------------
    # call graph
    # ------------------------------------------------------------------

    def call_graph(self) -> dict[str, set[str]]:
        """caller -> set of callees actually resolved by the analysis."""
        graph: dict[str, set[str]] = {name: set() for name in self.program.procedures}
        for proc_name, proc in self.program.procedures.items():
            for node in proc.call_nodes():
                callees = self._resolved_targets(proc_name, node)
                graph[proc_name] |= callees
        return graph

    def callsites(self) -> list[dict]:
        """One record per static call site, with the analysis-resolved
        targets — what ``modref(callsite)`` queries are answered from.

        ``site`` is the call node's static site name (also the heap
        naming context), ``coord`` its source position, ``callees`` the
        resolved target set (function-pointer calls included).
        """
        out: list[dict] = []
        for proc_name in sorted(self.program.procedures):
            for node in self.program.procedures[proc_name].call_nodes():
                out.append(
                    {
                        "proc": proc_name,
                        "site": node.site,
                        "coord": node.coord or "",
                        "callees": sorted(
                            self._resolved_targets(proc_name, node)
                        ),
                    }
                )
        return out

    def _resolved_targets(self, proc_name: str, node: CallNode) -> set[str]:
        out: set[str] = set()
        from ..ir.expr import AddressTerm, SymbolLoc, ProcSymbol

        for term in node.target.terms:
            if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                if isinstance(term.loc.symbol, ProcSymbol):
                    out.add(term.loc.symbol.name)
                    continue
        if out:
            return out
        # indirect call: read pointer values out of each PTF state
        for ptf in self.ptfs_of(proc_name):
            from .intra import ProcEvaluator
            from .context import Frame
            from .ptf import ParamMap

            frame = Frame(
                self.analyzer,
                ptf.proc,
                ptf,
                ptf.current_map or ParamMap(),
                None,
                self.analyzer.root,
            )
            vals = ProcEvaluator(self.analyzer, frame).eval_value(node.target, node)
            for v in vals:
                if isinstance(v.base, ProcedureBlock):
                    out.add(v.base.proc_name)
                elif isinstance(v.base, ExtendedParameter):
                    rep = v.base.representative()
                    for name in ptf.fnptr_domain.get(rep, ()):  # recorded domain
                        out.add(name)
        return out

    # ------------------------------------------------------------------
    # statistics (Table 2)
    # ------------------------------------------------------------------

    def stats(self) -> PTFStats:
        counts = [len(v) for v in self.analyzer.ptfs.values() if v]
        total = sum(counts)
        return PTFStats(
            procedures=len(self.program.procedures),
            analysis_seconds=self.analyzer.elapsed_seconds,
            avg_ptfs=(total / len(counts)) if counts else 0.0,
            total_ptfs=total,
            max_ptfs=max(counts) if counts else 0,
            source_lines=self.program.source_lines,
        )


def run_analysis(
    program: Program, options: Optional[AnalyzerOptions] = None
) -> AnalysisResult:
    """Analyze ``program`` and wrap the engine in the query facade."""
    return AnalysisResult(analyze(program, options))
