"""Call-graph SCC condensation and the bottom-up shard schedule.

Wilson & Lam's partial transfer functions make the call graph's SCC
condensation the natural unit of parallel work: a procedure's PTFs are
determined by its own IR plus its callees' summaries, so once every
callee SCC is summarized, the SCCs of a condensation *wave* depend only
on completed work and may be analyzed concurrently.  Recursive cycles
(§5.4) are kept whole — an SCC is never split across shards, because its
members' summaries reach a joint fixpoint.

Everything here is deterministic by construction: Tarjan visits roots
and successors in sorted name order, so the shard list, the dependency
edges, and the wave schedule are identical regardless of dict insertion
order (the property the shard-order determinism test perturbs).  Tarjan
emits components in reverse topological order of the condensation —
exactly the bottom-up (callees-first) order the scheduler wants.

Two graph sources feed this module:

* :func:`static_call_graph` — the pre-analysis approximation used for
  *scheduling*: direct call edges, with indirect call sites widened to
  every address-taken procedure (the same over-approximation
  ``guards.conservative_region`` uses, and a superset of every edge the
  analysis can resolve);
* ``AnalysisResult.call_graph()`` — the analysis-resolved graph, used
  for reporting the realized shard structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.program import Program

__all__ = [
    "Shard",
    "ShardPlan",
    "tarjan_sccs",
    "build_plan",
    "static_call_graph",
    "address_taken_procs",
    "indirect_call_procs",
]


def _normalized(graph: Mapping[str, Iterable[str]]) -> dict[str, tuple[str, ...]]:
    """Restrict edges to graph nodes and sort everything (determinism)."""
    nodes = set(graph)
    return {
        name: tuple(sorted(set(graph[name]) & nodes))
        for name in sorted(nodes)
    }


def tarjan_sccs(graph: Mapping[str, Iterable[str]]) -> list[tuple[str, ...]]:
    """Strongly connected components of ``graph``, iteratively.

    Returns SCCs in reverse topological order of the condensation
    (callees before callers — the bottom-up schedule order), each
    component's members sorted.  Deterministic under any dict ordering:
    roots and successors are visited in sorted name order.  Iterative so
    call chains as deep as the IR allows never hit the interpreter
    recursion limit.
    """
    edges = _normalized(graph)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[tuple[str, ...]] = []
    counter = 0
    for root in edges:
        if root in index:
            continue
        # explicit DFS stack of (node, iterator position)
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = edges[node]
            while pos < len(succs):
                succ = succs[pos]
                pos += 1
                if succ not in index:
                    work[-1] = (node, pos)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                comp: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                out.append(tuple(sorted(comp)))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return out


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: a call-graph SCC, kept whole."""

    #: sorted member procedure names
    procs: tuple[str, ...]
    #: True when the shard is a recursive cycle (|SCC| > 1 or self-loop)
    recursive: bool

    @property
    def name(self) -> str:
        head = self.procs[0]
        if len(self.procs) == 1:
            return head
        return f"{head}(+{len(self.procs) - 1})"


@dataclass
class ShardPlan:
    """The bottom-up shard schedule of one call graph.

    ``shards`` is in reverse topological (bottom-up) order; ``deps[i]``
    names the callee shards of shard ``i`` (indices into ``shards``);
    ``waves`` groups shard indices whose dependencies are all satisfied
    by earlier waves — the process pool dispatches one wave at a time.
    """

    shards: list[Shard] = field(default_factory=list)
    deps: dict[int, tuple[int, ...]] = field(default_factory=dict)
    waves: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def critical_path(self) -> int:
        """Waves a perfectly parallel bottom-up execution still needs."""
        return len(self.waves)

    @property
    def width(self) -> int:
        """Largest wave — the useful degree of shard parallelism."""
        return max((len(w) for w in self.waves), default=0)

    def stats(self) -> dict:
        """JSON-serializable plan summary for metrics/trace/CLI output."""
        recursive = sum(1 for s in self.shards if s.recursive)
        return {
            "shards": len(self.shards),
            "procedures": sum(len(s.procs) for s in self.shards),
            "recursive_shards": recursive,
            "largest_shard": max((len(s.procs) for s in self.shards), default=0),
            "critical_path": self.critical_path,
            "width": self.width,
        }

    def to_payload(self) -> dict:
        """The full plan as plain picklable/JSON data — what a profiled
        worker ships back so the parent-side critical-path profiler
        (:mod:`repro.diagnostics.parprof`) can join measured
        per-procedure self-times onto the wave DAG."""
        return {
            "shards": [list(s.procs) for s in self.shards],
            "recursive": [s.recursive for s in self.shards],
            "deps": {str(i): list(d) for i, d in self.deps.items()},
            "waves": [list(w) for w in self.waves],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardPlan":
        """Rebuild a plan from :meth:`to_payload` output."""
        shards = [
            Shard(procs=tuple(procs), recursive=bool(rec))
            for procs, rec in zip(payload["shards"], payload["recursive"])
        ]
        deps = {
            int(i): tuple(d) for i, d in payload["deps"].items()
        }
        waves = [tuple(w) for w in payload["waves"]]
        return cls(shards=shards, deps=deps, waves=waves)


def build_plan(graph: Mapping[str, Iterable[str]]) -> ShardPlan:
    """SCC-condense ``graph`` into the deterministic bottom-up schedule."""
    edges = _normalized(graph)
    sccs = tarjan_sccs(edges)
    shard_of: dict[str, int] = {}
    shards: list[Shard] = []
    for i, comp in enumerate(sccs):
        recursive = len(comp) > 1 or comp[0] in edges[comp[0]]
        shards.append(Shard(procs=comp, recursive=recursive))
        for name in comp:
            shard_of[name] = i
    deps: dict[int, tuple[int, ...]] = {}
    for i, shard in enumerate(shards):
        out: set[int] = set()
        for name in shard.procs:
            for succ in edges[name]:
                j = shard_of[succ]
                if j != i:
                    out.add(j)
        deps[i] = tuple(sorted(out))
    # wave schedule: repeatedly release every shard whose deps completed
    done: set[int] = set()
    waves: list[tuple[int, ...]] = []
    remaining = list(range(len(shards)))
    while remaining:
        ready = tuple(i for i in remaining if all(d in done for d in deps[i]))
        if not ready:  # pragma: no cover - impossible: condensation is a DAG
            raise RuntimeError("shard schedule is cyclic")
        waves.append(ready)
        done.update(ready)
        remaining = [i for i in remaining if i not in done]
    return ShardPlan(shards=shards, deps=deps, waves=waves)


# ---------------------------------------------------------------------------
# static call-graph extraction (pre-analysis approximation)
# ---------------------------------------------------------------------------


def _proc_refs(value, out: set) -> None:
    """Collect every procedure symbol referenced by a value expression."""
    from ..ir.expr import AddressTerm, AdjustTerm, ContentsTerm

    for term in value.terms:
        if isinstance(term, (AddressTerm, ContentsTerm)):
            _loc_proc_refs(term.loc, out)
        elif isinstance(term, AdjustTerm):
            _proc_refs(term.value, out)


def _loc_proc_refs(loc, out: set) -> None:
    from ..ir.expr import DerefLoc, ProcSymbol, SymbolLoc

    if isinstance(loc, SymbolLoc):
        if isinstance(loc.symbol, ProcSymbol):
            out.add(loc.symbol.name)
    elif isinstance(loc, DerefLoc):
        _proc_refs(loc.pointer, out)


def address_taken_procs(program: "Program") -> set[str]:
    """Internal procedures whose address escapes into data.

    A procedure is address-taken when a reference to it appears anywhere
    *other than* as the direct target of a call: assignment sources, call
    arguments, call destinations, indirect call target expressions, and
    static global initializers.  These are exactly the procedures an
    indirect call site may reach.
    """
    from ..ir.nodes import AssignNode, CallNode
    from .guards import _direct_targets

    taken: set[str] = set()
    for proc in program.procedures.values():
        for node in proc.nodes():
            if isinstance(node, AssignNode):
                _proc_refs(node.src, taken)
            elif isinstance(node, CallNode):
                if not _direct_targets(node):
                    _proc_refs(node.target, taken)
                for arg in node.args:
                    _proc_refs(arg, taken)
    for init in program.global_inits:
        _proc_refs(init.src, taken)
    return taken & set(program.procedures)


def indirect_call_procs(program: "Program") -> set[str]:
    """Procedures containing at least one indirect (function-pointer)
    call site — the consumers a retargeted function pointer can affect."""
    from .guards import _direct_targets

    out: set[str] = set()
    for name, proc in program.procedures.items():
        for node in proc.call_nodes():
            if not _direct_targets(node):
                out.add(name)
                break
    return out


def static_call_graph(program: "Program") -> dict[str, set[str]]:
    """The scheduling over-approximation of the call graph.

    Direct call edges, plus — at every indirect call site — edges to all
    address-taken procedures (any of them could run; the analysis can
    only ever resolve a subset of these edges).  Only internal
    procedures appear; externals and libc cannot carry PTF dependencies.
    """
    from .guards import _direct_targets

    taken = address_taken_procs(program)
    internal = set(program.procedures)
    graph: dict[str, set[str]] = {}
    for name, proc in program.procedures.items():
        callees: set[str] = set()
        for node in proc.call_nodes():
            direct = _direct_targets(node)
            if direct:
                callees |= direct & internal
            else:
                callees |= taken
        graph[name] = callees
    return graph
