"""Library-function summaries.

"Since some of the standard library functions may change the values of
pointers, we provide the analysis with a summary of the potential pointer
assignments in each library function" (§1).  Each summary manipulates the
caller's points-to state directly:

* allocators (``malloc``/``calloc``/``realloc``/``strdup``) return a heap
  block named by the static call site (§3);
* block-copy functions (``memcpy``/``memmove``) move pointer fields between
  the source and destination targets;
* string-searching functions return pointers *into* their argument's block;
* higher-order functions (``qsort``/``bsearch``/``atexit``/``signal``)
  invoke their callback arguments, so callbacks are analyzed like any other
  call — through the normal PTF machinery.

Functions with no pointer effects (``strlen``, math, character class...)
are explicit no-ops so that missing summaries are loud: an unlisted
external function falls through to the engine's external-call policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..frontend.ctypes_model import WORD_SIZE
from ..ir.nodes import CallNode
from ..memory.blocks import HeapBlock, ProcedureBlock, StringBlock
from ..memory.locset import LocationSet
from .context import Frame

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Analyzer
    from .intra import ProcEvaluator

__all__ = ["LibcSummaries"]

EMPTY: frozenset = frozenset()


class LibcSummaries:
    """Registry and application of library summaries."""

    def __init__(self) -> None:
        self._handlers: dict[str, Callable] = {}
        self._register_all()

    def handles(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> list[str]:
        return sorted(self._handlers)

    def apply(
        self,
        analyzer: "Analyzer",
        frame: Frame,
        evaluator: "ProcEvaluator",
        node: CallNode,
        name: str,
    ) -> None:
        ctx = _CallContext(analyzer, frame, evaluator, node)
        self._handlers[name](ctx)
        analyzer.stats["libc_calls"] += 1

    # ------------------------------------------------------------------

    def _register_all(self) -> None:
        h = self._handlers
        for name in ("malloc", "calloc",):
            h[name] = _alloc
        h["realloc"] = _realloc
        h["strdup"] = _strdup
        h["free"] = _noop
        for name in (
            "strlen", "strcmp", "strncmp", "strcoll", "memcmp", "atoi", "atol",
            "atof", "abs", "labs", "rand", "srand", "exit", "abort", "printf",
            "fprintf", "puts", "fputs", "putc", "putchar", "fputc", "fflush",
            "fclose", "feof", "ferror", "clearerr", "perror", "rewind", "fseek",
            "ftell", "remove", "rename", "setbuf", "setvbuf", "isalnum",
            "isalpha", "iscntrl", "isdigit", "isgraph", "islower", "isprint",
            "ispunct", "isspace", "isupper", "isxdigit", "tolower", "toupper",
            "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh",
            "cosh", "tanh", "exp", "log", "log10", "pow", "sqrt", "ceil",
            "floor", "fabs", "fmod", "ldexp", "system", "clock", "time",
            "difftime", "mktime", "fwrite", "ungetc", "getchar", "getc",
            "fgetc", "scanf", "__assert_fail", "strxfrm", "write", "close",
            "read", "unlink", "access", "raise", "div", "ldiv", "strtod",
        ):
            h[name] = _noop
        for name in ("strcpy", "strncpy", "strcat", "strncat", "memset"):
            h[name] = _ret_arg0
        h["memcpy"] = _memcpy
        h["memmove"] = _memcpy
        for name in ("strchr", "strrchr", "strstr", "strpbrk", "strtok", "memchr"):
            h[name] = _ptr_into_arg0
        h["bsearch"] = _bsearch
        h["qsort"] = _qsort
        h["atexit"] = _atexit
        h["signal"] = _signal
        h["fopen"] = _fopen
        h["freopen"] = _fopen
        h["fdopen"] = _fopen
        h["tmpfile"] = _fopen
        h["fgets"] = _fgets
        h["gets"] = _ret_arg0
        h["sprintf"] = _sprintf
        h["snprintf"] = _sprintf
        h["sscanf"] = _sscanf
        h["fscanf"] = _noop
        h["fread"] = _noop
        h["getenv"] = _static_string("getenv")
        h["strerror"] = _static_string("strerror")
        h["tmpnam"] = _static_string("tmpnam")
        h["ctime"] = _static_string("ctime")
        h["asctime"] = _static_string("asctime")
        h["gmtime"] = _static_buffer("gmtime")
        h["localtime"] = _static_buffer("localtime")
        h["strtol"] = _strtol
        h["strtoul"] = _strtol
        h["frexp"] = _noop
        h["modf"] = _noop
        h["strftime"] = _noop
        h["strspn"] = _noop
        h["strcspn"] = _noop
        # §7: "We eventually plan to support setjmp/longjmp calls in a
        # conservative fashion."  In a may-analysis, a longjmp only
        # re-enters code the iterative analysis already covers, and neither
        # call introduces pointer assignments, so scalar no-ops suffice.
        h["setjmp"] = _noop
        h["longjmp"] = _noop


class _CallContext:
    """Bundle passed to each summary handler."""

    def __init__(
        self,
        analyzer: "Analyzer",
        frame: Frame,
        evaluator: "ProcEvaluator",
        node: CallNode,
    ) -> None:
        self.analyzer = analyzer
        self.frame = frame
        self.evaluator = evaluator
        self.node = node

    def arg(self, i: int) -> frozenset:
        """Pointer values of argument ``i`` (empty when absent)."""
        if i >= len(self.node.args):
            return EMPTY
        return self.evaluator.eval_value(self.node.args[i], self.node)

    def heap_block(self, tag: str = "") -> HeapBlock:
        site = self.node.site + (f"#{tag}" if tag else "")
        return self.analyzer.heap_block(site)

    def set_return(self, values: frozenset, may_be_null: bool = True) -> None:
        if self.node.dst is None or not values:
            return
        dsts = self.evaluator.eval_loc(self.node.dst, self.node)
        strong = len(dsts) == 1 and dsts[0].is_unique
        for dst in dsts:
            self.frame.assign(dst, values, self.node, strong)

    def store(self, targets: frozenset, values: frozenset) -> None:
        """Weakly assign ``values`` through every pointer in ``targets``."""
        if not values:
            return
        for t in targets:
            if isinstance(t.base, (ProcedureBlock, StringBlock)):
                continue
            self.frame.assign(t, values, self.node, False)

    def contents(self, pointers: frozenset, blurred: bool = True) -> frozenset:
        """Everything stored in the blocks ``pointers`` point into."""
        out: set[LocationSet] = set()
        for p in pointers:
            probe = p.blurred() if blurred else p
            out |= self.frame.lookup_value(probe, self.node, WORD_SIZE)
        return frozenset(out)


# -- handlers -----------------------------------------------------------


def _noop(ctx: _CallContext) -> None:
    # evaluate arguments for completeness (side effects already lowered)
    for i in range(len(ctx.node.args)):
        ctx.arg(i)


def _alloc(ctx: _CallContext) -> None:
    block = ctx.heap_block()
    ctx.set_return(frozenset({LocationSet(block, 0, 0)}))


def _realloc(ctx: _CallContext) -> None:
    old = ctx.arg(0)
    block = ctx.heap_block()
    new_loc = LocationSet(block, 0, 0)
    # the old contents (including pointers) survive into the new block
    moved = ctx.contents(old)
    if moved:
        ctx.frame.assign(new_loc.blurred(), moved, ctx.node, False)
    ctx.set_return(frozenset({new_loc}) | old)


def _strdup(ctx: _CallContext) -> None:
    ctx.arg(0)
    block = ctx.heap_block()
    ctx.set_return(frozenset({LocationSet(block, 0, 0)}))


def _ret_arg0(ctx: _CallContext) -> None:
    ctx.set_return(ctx.arg(0))


def _ptr_into_arg0(ctx: _CallContext) -> None:
    # returns a pointer somewhere inside the first argument's block(s)
    ctx.set_return(frozenset(v.blurred() for v in ctx.arg(0)))


def _memcpy(ctx: _CallContext) -> None:
    dst = ctx.arg(0)
    src = ctx.arg(1)
    values = ctx.contents(src)
    if values:
        ctx.store(frozenset(d.blurred() for d in dst), values)
    ctx.set_return(dst)


def _fgets(ctx: _CallContext) -> None:
    ctx.set_return(ctx.arg(0))


def _sprintf(ctx: _CallContext) -> None:
    # writes characters; %s reads strings — no pointer stores
    _noop(ctx)


def _sscanf(ctx: _CallContext) -> None:
    # %s and %d targets receive scalars/characters, not pointers
    _noop(ctx)


def _fopen(ctx: _CallContext) -> None:
    _noop(ctx)
    block = ctx.heap_block("FILE")
    ctx.set_return(frozenset({LocationSet(block, 0, 0)}))


def _bsearch(ctx: _CallContext) -> None:
    base = ctx.arg(1)
    _run_comparator(ctx, ctx.arg(4), base)
    ctx.set_return(frozenset(v.blurred() for v in base))


def _qsort(ctx: _CallContext) -> None:
    base = ctx.arg(0)
    _run_comparator(ctx, ctx.arg(3), base)


def _run_comparator(ctx: _CallContext, fnvals: frozenset, base: frozenset) -> None:
    targets = ctx.frame.resolve_fnptr_targets(fnvals)
    elems = frozenset(v.blurred() for v in base)
    for name in sorted(targets):
        ctx.analyzer.call_procedure(
            ctx.frame, ctx.evaluator, ctx.node, name, [elems, elems]
        )


def _atexit(ctx: _CallContext) -> None:
    targets = ctx.frame.resolve_fnptr_targets(ctx.arg(0))
    for name in sorted(targets):
        ctx.analyzer.call_procedure(ctx.frame, ctx.evaluator, ctx.node, name, [])


def _signal(ctx: _CallContext) -> None:
    handler = ctx.arg(1)
    targets = ctx.frame.resolve_fnptr_targets(handler)
    for name in sorted(targets):
        ctx.analyzer.call_procedure(
            ctx.frame, ctx.evaluator, ctx.node, name, [EMPTY]
        )
    # returns the previous handler: conservatively, any handler seen here
    ctx.set_return(handler)


def _strtol(ctx: _CallContext) -> None:
    # *endptr = pointer into the first argument's block
    endptr = ctx.arg(1)
    into = frozenset(v.blurred() for v in ctx.arg(0))
    if into:
        ctx.store(endptr, into)


def _static_string(tag: str) -> Callable[[_CallContext], None]:
    def handler(ctx: _CallContext) -> None:
        _noop(ctx)
        block = ctx.analyzer.libc_static_block(tag)
        ctx.set_return(frozenset({LocationSet(block, 0, 1)}))

    return handler


def _static_buffer(tag: str) -> Callable[[_CallContext], None]:
    return _static_string(tag)
