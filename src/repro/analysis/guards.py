"""Resource guards and the graceful-degradation ladder.

Wilson & Lam's algorithm assumes every procedure converges and the host
has unbounded stack and time.  Real batch workloads do not: a single
pathological procedure can blow past the pass budget, a deep call chain
can ride the Python stack toward ``RecursionError``, and a wall-clock
deadline may arrive mid-fixpoint.  This module turns each of those
blow-ups from a crash into a *degradation*:

* :class:`AnalysisBudget` — the resource envelope of one analyzer run:
  a wall-clock deadline, per-procedure pass budget, an explicit
  call-depth bound (replacing "however deep Python lets us recurse"),
  and caps on the total PTF count and per-state points-to entries.
* :class:`GuardTripped` — raised at the instrument site when a budget
  is exhausted.  ``AnalysisBudgetExceeded`` (the historical ``max_passes``
  valve in :mod:`repro.analysis.intra`) is a subclass, so every guard
  trips through one exception family.
* **The degradation ladder** — when a guard trips for a procedure the
  engine does *not* propagate the failure.  Instead the procedure is
  **quarantined**: its partial (unsound-to-use) PTF is discarded and
  every call to it — the tripping one and all later ones — is summarized
  by a *sound conservative havoc stub* (the same policy as calls to
  unknown external functions, widened to cover the procedure's
  transitively reachable globals; see
  ``InterproceduralMixin._degrade_call``).  Callers keep analyzing with
  the coarser summary; only ``--strict`` restores raise-through.
* :class:`DegradationRecord` / :class:`FrontendFault` /
  :class:`DegradationReport` — the structured account of what degraded
  and why, threaded through ``AnalyzerOptions`` → ``Analyzer.run`` →
  ``AnalysisResult`` and surfaced by ``--stats-json`` and the CLI's
  partial-results exit code.

The conservative region computation (:func:`conservative_region`) makes
the havoc stub *sound* for internal procedures: unlike an unknown
external — which, in this reproduction's closed-world model, can touch
only its arguments and its own storage — a skipped internal procedure
can also read and write any global it (transitively) references and can
take addresses of globals, string literals and functions.  The region
walk collects those statically; an indirect call inside the region
widens it to the whole program (any address-taken procedure could run).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..ir.program import Program

__all__ = [
    "AnalysisBudget",
    "GuardTripped",
    "DegradationRecord",
    "FrontendFault",
    "DegradationReport",
    "conservative_region",
    "Region",
]


class GuardTripped(Exception):
    """A resource guard fired.

    ``reason`` is one of the stable degradation-reason strings
    (``deadline``, ``max_passes``, ``call_depth``, ``ptf_cap``,
    ``state_entries``, ``injected``, ``quarantined``); ``proc`` names the
    procedure being evaluated when the guard tripped.
    """

    def __init__(self, reason: str, proc: str = "", detail: str = "") -> None:
        self.reason = reason
        self.proc = proc
        self.detail = detail
        message = f"{proc or '<program>'}: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass
class AnalysisBudget:
    """The resource envelope of one analyzer run.

    All limits default to "off" or to values no working analysis reaches,
    so a default-budget run behaves exactly like the unguarded engine.
    ``start()`` arms the wall clock; the engine reads the armed fields
    directly on its hot paths (one attribute load + compare per site).
    """

    #: wall-clock budget for the whole run (None = unlimited)
    deadline_seconds: Optional[float] = None
    #: fixpoint passes per procedure evaluation (the historical valve)
    max_passes: int = 200
    #: maximum analysis call-stack depth — the explicit replacement for
    #: unbounded Python recursion through ``_dispatch_internal``
    max_call_depth: int = 200
    #: cap on the total number of live PTFs across all procedures
    max_ptfs_total: Optional[int] = None
    #: cap on points-to entries (assigned keys + initial entries) per
    #: procedure state
    max_state_entries: Optional[int] = None

    # -- armed at run start ------------------------------------------------
    started_at: Optional[float] = field(default=None, repr=False)
    #: absolute ``time.perf_counter()`` deadline, or None when unlimited
    deadline_at: Optional[float] = field(default=None, repr=False)
    #: deepest analysis call stack observed (diagnostics)
    peak_depth: int = field(default=0, repr=False)

    @classmethod
    def from_options(cls, options) -> "AnalysisBudget":
        return cls(
            deadline_seconds=options.deadline_seconds,
            max_passes=options.max_passes,
            max_call_depth=options.max_call_depth,
            max_ptfs_total=options.max_ptfs_total,
            max_state_entries=options.max_state_entries,
        )

    def start(self) -> None:
        self.started_at = time.perf_counter()
        self.deadline_at = (
            self.started_at + self.deadline_seconds
            if self.deadline_seconds is not None
            else None
        )

    def deadline_exceeded(self) -> bool:
        return self.deadline_at is not None and time.perf_counter() > self.deadline_at

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.perf_counter())

    def note_depth(self, depth: int) -> None:
        if depth > self.peak_depth:
            self.peak_depth = depth

    def as_dict(self) -> dict:
        elapsed = (
            round(time.perf_counter() - self.started_at, 6)
            if self.started_at is not None
            else None
        )
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_passes": self.max_passes,
            "max_call_depth": self.max_call_depth,
            "max_ptfs_total": self.max_ptfs_total,
            "max_state_entries": self.max_state_entries,
            "consumed": {
                "elapsed_seconds": elapsed,
                "peak_call_depth": self.peak_depth,
            },
        }


@dataclass
class DegradationRecord:
    """One procedure (or call) that fell down the degradation ladder."""

    proc: str
    #: stable reason string (see :class:`GuardTripped`)
    reason: str
    detail: str = ""
    #: call site where the degraded summary was applied ("" for the
    #: quarantine record itself / for ``main``)
    call_site: str = ""

    def as_dict(self) -> dict:
        return {
            "proc": self.proc,
            "reason": self.reason,
            "detail": self.detail,
            "call_site": self.call_site,
        }

    def render(self) -> str:
        out = f"proc={self.proc} reason={self.reason}"
        if self.call_site:
            out += f" call_site={self.call_site}"
        if self.detail:
            out += f" detail={self.detail}"
        return out


@dataclass
class FrontendFault:
    """A translation unit (or single procedure) the frontend quarantined."""

    filename: str
    #: ``parse_error`` / ``lower_error`` / ``injected``
    reason: str
    detail: str = ""
    #: procedure quarantined by a per-procedure lowering fault ("" when
    #: the whole unit was dropped)
    proc: str = ""

    def as_dict(self) -> dict:
        return {
            "file": self.filename,
            "reason": self.reason,
            "detail": self.detail,
            "proc": self.proc,
        }

    def render(self) -> str:
        out = f"file={self.filename}"
        if self.proc:
            out += f" proc={self.proc}"
        out += f" reason={self.reason}"
        if self.detail:
            detail = self.detail.replace("\n", " ")
            out += f" detail={detail}"
        return out


class DegradationReport:
    """Structured account of everything that degraded during a run.

    ``ok`` is True only for a fully precise run; any quarantine, havoc
    fallback or frontend fault makes the result *partial* in the CLI's
    exit-code convention (exit 4).  ``partial`` additionally flags that
    ``main`` itself tripped a guard, i.e. even the top-level results are
    an under-approximation of a full fixpoint and should be treated as
    best-effort.
    """

    def __init__(self) -> None:
        self.records: list[DegradationRecord] = []
        self._record_keys: dict[tuple, DegradationRecord] = {}
        self.frontend: list[FrontendFault] = []
        #: procedures whose partial PTFs were discarded; every later call
        #: to them degrades immediately to the havoc stub
        self.quarantined: set[str] = set()
        #: True when ``main``'s own evaluation tripped a guard
        self.partial: bool = False
        #: filled by the engine (the armed budget of the run)
        self.budget: Optional[AnalysisBudget] = None

    # -- recording ---------------------------------------------------------

    def record(
        self, proc: str, reason: str, detail: str = "", call_site: str = ""
    ) -> DegradationRecord:
        """Record one degradation, deduplicated on (proc, reason, site).

        A quarantined procedure's call sites degrade on *every* fixpoint
        pass of their caller; one record per distinct site keeps the
        report proportional to the program, not to the iteration count.
        """
        key = (proc, reason, call_site)
        existing = self._record_keys.get(key)
        if existing is not None:
            return existing
        rec = DegradationRecord(proc, reason, detail, call_site)
        self._record_keys[key] = rec
        self.records.append(rec)
        return rec

    def quarantine(self, proc: str, reason: str, detail: str = "") -> None:
        if proc not in self.quarantined:
            self.quarantined.add(proc)
            self.record(proc, reason, detail)

    def add_frontend(self, fault: FrontendFault) -> None:
        self.frontend.append(fault)
        if fault.proc:
            self.quarantined.add(fault.proc)

    # -- queries -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.records and not self.frontend and not self.partial

    def reasons(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.reason] = out.get(rec.reason, 0) + 1
        for fault in self.frontend:
            out[fault.reason] = out.get(fault.reason, 0) + 1
        return out

    def as_dict(self) -> dict:
        out = {
            "ok": self.ok,
            "partial": self.partial,
            "quarantined": sorted(self.quarantined),
            "records": [r.as_dict() for r in self.records],
            "frontend": [f.as_dict() for f in self.frontend],
            "reasons": self.reasons(),
        }
        if self.budget is not None:
            out["budget"] = self.budget.as_dict()
        return out

    def summary_lines(self) -> list[str]:
        lines = [f"degraded : {rec.render()}" for rec in self.records]
        lines.extend(f"frontend : {fault.render()}" for fault in self.frontend)
        if self.partial:
            lines.append("partial  : main tripped a guard; "
                         "top-level results are best-effort")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DegradationReport ok={self.ok} records={len(self.records)} "
            f"frontend={len(self.frontend)} "
            f"quarantined={sorted(self.quarantined)}>"
        )


# ---------------------------------------------------------------------------
# conservative reach region (what a skipped procedure could touch)
# ---------------------------------------------------------------------------


@dataclass
class Region:
    """What ``proc`` and everything it can statically reach may touch."""

    #: global variable names read/written/addressed anywhere in the region
    globals: frozenset
    #: procedure names in the region (callable or address-taken)
    procs: frozenset
    #: string-literal sites whose addresses appear in the region (the key
    #: of ``Program.string_blocks``)
    strings: frozenset
    #: True when the region contains an indirect call or an unknown
    #: callee, i.e. the static walk could not bound it — treat as "may
    #: touch every global / any address-taken procedure"
    world: bool


def _walk_value(value, globals_, procs, strings) -> None:
    from ..ir.expr import AddressTerm, AdjustTerm, ContentsTerm

    for term in value.terms:
        if isinstance(term, (AddressTerm, ContentsTerm)):
            _walk_loc(term.loc, globals_, procs, strings)
        elif isinstance(term, AdjustTerm):
            _walk_value(term.value, globals_, procs, strings)


def _walk_loc(loc, globals_, procs, strings) -> None:
    from ..ir.expr import (
        DerefLoc,
        GlobalSymbol,
        ProcSymbol,
        StringSymbol,
        SymbolLoc,
    )

    if isinstance(loc, SymbolLoc):
        sym = loc.symbol
        if isinstance(sym, GlobalSymbol):
            globals_.add(sym.name)
        elif isinstance(sym, ProcSymbol):
            procs.add(sym.name)
        elif isinstance(sym, StringSymbol):
            strings.add(sym.site)  # string_blocks is keyed by site
    elif isinstance(loc, DerefLoc):
        _walk_value(loc.pointer, globals_, procs, strings)


def _direct_targets(node) -> set[str]:
    """Statically named call targets of a call node ('' when indirect)."""
    from ..ir.expr import AddressTerm, ProcSymbol, SymbolLoc

    out: set[str] = set()
    for term in node.target.terms:
        if (
            isinstance(term, AddressTerm)
            and isinstance(term.loc, SymbolLoc)
            and isinstance(term.loc.symbol, ProcSymbol)
        ):
            out.add(term.loc.symbol.name)
    return out


def conservative_region(program: "Program", proc_name: str) -> Region:
    """Everything ``proc_name`` may touch, by a static worklist walk.

    Globals, address-taken procedures and string literals referenced by
    the procedure or by anything it transitively calls.  Indirect calls
    and calls to procedures outside the program (externals, libc) widen
    the region to ``world`` — every global and every procedure of the
    program — because the static walk cannot bound what runs next.
    Pure-name walk over the IR; no points-to information is consulted,
    so the result is safe to use *before* (instead of) analyzing the
    procedure.
    """
    from ..ir.nodes import AssignNode, CallNode

    globals_: set = set()
    procs: set = set()
    strings: set = set()
    world = False
    seen: set[str] = set()
    work = [proc_name]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        proc = program.procedures.get(name)
        if proc is None:
            # unknown callee (external / libc / quarantined unit): the
            # static walk cannot see inside it
            world = True
            continue
        procs.add(name)
        for node in proc.nodes():
            if isinstance(node, AssignNode):
                if node.dst is not None:
                    _walk_loc(node.dst, globals_, procs, strings)
                _walk_value(node.src, globals_, procs, strings)
            elif isinstance(node, CallNode):
                targets = _direct_targets(node)
                if not targets:
                    world = True  # indirect call: anything address-taken
                _walk_value(node.target, globals_, procs, strings)
                for arg in node.args:
                    _walk_value(arg, globals_, procs, strings)
                if node.dst is not None:
                    _walk_loc(node.dst, globals_, procs, strings)
                for target in targets:
                    if target not in seen:
                        work.append(target)
        # every procedure whose address appeared is callable from here
        for taken in list(procs):
            if taken not in seen:
                work.append(taken)
    if world:
        globals_ |= set(program.globals)
        procs |= set(program.procedures)
    return Region(
        globals=frozenset(globals_),
        procs=frozenset(procs),
        strings=frozenset(strings),
        world=world,
    )
