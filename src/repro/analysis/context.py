"""Calling contexts (frames) and lazy extended-parameter management.

The analysis keeps a stack of frames to track the current calling contexts
(§2.3).  Each frame pairs a procedure's PTF with the parameter mapping for
the call being analyzed.  Frames implement the lazy machinery of §3.2:

* ``lookup_value`` — read a pointer's value at a node; if the search
  reaches the procedure entry for an input location (extended parameter or
  formal), the *initial* value is computed on demand by asking the calling
  context — recursively, up the call stack, until values are known;
* ``to_callee_targets`` — convert caller-space values into the PTF name
  space: reuse a parameter whose values match (possibly at a constant
  offset — negative offsets handle a field pointer seen before its
  enclosing struct, Figure 7), create a fresh parameter when nothing
  aliases, or *subsume* aliased parameters into a new one (Figure 6);
* global variables resolve to extended parameters so PTFs stay reusable
  across contexts (§2.2); direct and through-pointer references to the same
  global share one parameter, which models their alias.

The :class:`RootFrame` terminates the recursion: it feeds static
initializer values for globals and a synthetic ``argv`` for ``main``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..frontend.ctypes_model import WORD_SIZE
from ..ir.expr import GlobalSymbol, LocalSymbol, ProcSymbol, StringSymbol, Symbol
from ..ir.nodes import CallNode, Node
from ..ir.program import Procedure, Program
from ..memory.blocks import (
    ExtendedParameter,
    GlobalBlock,
    HeapBlock,
    LocalBlock,
    MemoryBlock,
    ProcedureBlock,
    ReturnBlock,
    StringBlock,
)
from ..memory.locset import LocationSet
from ..memory.pointsto import normalize_loc, normalize_values
from .ptf import ParamMap, PTF

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Analyzer

__all__ = ["Frame", "RootFrame"]

EMPTY: frozenset = frozenset()


class RootFrame:
    """The context that calls ``main``: static initializers + argv."""

    def __init__(self, analyzer: "Analyzer") -> None:
        self.analyzer = analyzer
        self.program: Program = analyzer.program
        self.proc = None
        self.ptf = None
        self.call_node: Optional[Node] = None
        # synthetic storage for the argv vector and the strings it holds
        self.argv_array = HeapBlock("<argv[]>")
        self.argv_strings = HeapBlock("<argv-strings>")
        self.argv_array.register_pointer_location(0, WORD_SIZE)
        # envp gets its own synthetic vector: argv and envp never alias in
        # a real process, so sharing argv's block would manufacture a
        # spurious alias between main's second and third formals
        self.envp_array = HeapBlock("<envp[]>")
        self.envp_strings = HeapBlock("<envp-strings>")
        self.envp_array.register_pointer_location(0, WORD_SIZE)
        self._static_values: Optional[dict] = None

    # -- the caller-side API used by callee frames -----------------------

    def lookup_value(self, loc: LocationSet, node: Optional[Node], size: int) -> frozenset:
        base = loc.base
        if base is self.argv_array:
            return frozenset({LocationSet(self.argv_strings, 0, 1)})
        if base is self.envp_array:
            return frozenset({LocationSet(self.envp_strings, 0, 1)})
        if isinstance(base, GlobalBlock):
            return self._static_value(loc)
        if isinstance(base, StringBlock):
            return EMPTY  # strings hold characters, not pointers
        return EMPTY

    def resolve_symbol_block(self, symbol: Symbol) -> MemoryBlock:
        if isinstance(symbol, GlobalSymbol):
            return self.program.add_global(symbol)
        if isinstance(symbol, ProcSymbol):
            return self.program.proc_block(symbol.name)
        if isinstance(symbol, StringSymbol):
            return self.program.string_block(symbol)
        raise TypeError(f"root frame cannot resolve {symbol!r}")

    def resolve_fnptr_targets(self, values: frozenset) -> set[str]:
        out: set[str] = set()
        for loc in values:
            if isinstance(loc.base, ProcedureBlock):
                out.add(loc.base.proc_name)
        return out

    def caller_block_for_global(self, name: str) -> MemoryBlock:
        symbol = self.program.globals.get(name)
        if symbol is None:
            from ..ir.expr import GlobalSymbol as _GS

            symbol = _GS(name)
        return self.program.add_global(symbol)

    # -- static initializers -------------------------------------------------

    def _static_value(self, loc: LocationSet) -> frozenset:
        if self._static_values is None:
            self._static_values = self._evaluate_static_inits()
        result: set[LocationSet] = set()
        for key, vals in self._static_values.items():
            if key.base is loc.base and loc.overlaps(key, width=max(1, WORD_SIZE)):
                result |= vals
        return frozenset(result)

    def _evaluate_static_inits(self) -> dict[LocationSet, frozenset]:
        """Evaluate GlobalInit records in the root name space."""
        from ..ir.expr import AddressTerm, ContentsTerm, SymbolLoc

        out: dict[LocationSet, frozenset] = {}
        for init in self.program.global_inits:
            dst = init.dst
            if not isinstance(dst, SymbolLoc):
                continue
            dst_block = self.resolve_symbol_block(dst.symbol)
            dst_loc = LocationSet(dst_block, dst.offset, dst.stride)
            values: set[LocationSet] = set()
            for term in init.src.terms:
                if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                    block = self.resolve_symbol_block(term.loc.symbol)
                    values.add(LocationSet(block, term.loc.offset, term.loc.stride))
            if values:
                old = out.get(dst_loc, EMPTY)
                out[dst_loc] = old | frozenset(values)
        return out


class Frame:
    """One activation: a procedure analyzed under one PTF and mapping."""

    def __init__(
        self,
        analyzer: "Analyzer",
        proc: Procedure,
        ptf: PTF,
        param_map: ParamMap,
        call_node: Optional[CallNode],
        caller: "Frame | RootFrame",
    ) -> None:
        self.analyzer = analyzer
        self.program: Program = analyzer.program
        self.proc = proc
        self.ptf = ptf
        self.param_map = param_map
        self.call_node = call_node
        self.caller = caller
        self.changed = False
        #: nodes whose evaluation was deferred (recursion, unknown dests)
        self.deferred: set[int] = set()

    # ------------------------------------------------------------------
    # symbol resolution
    # ------------------------------------------------------------------

    def resolve_symbol_block(self, symbol: Symbol) -> MemoryBlock:
        if isinstance(symbol, LocalSymbol):
            return self.proc.local_block(symbol)
        if isinstance(symbol, ProcSymbol):
            return self.program.proc_block(symbol.name)
        if isinstance(symbol, StringSymbol):
            return self.program.string_block(symbol)
        if isinstance(symbol, GlobalSymbol):
            return self.global_param(symbol)
        raise TypeError(f"cannot resolve symbol {symbol!r}")

    def global_param(self, symbol: GlobalSymbol) -> ExtendedParameter:
        """The extended parameter representing a directly referenced global."""
        cached = self.ptf.global_params.get(symbol.name)
        if cached is not None:
            return cached.representative()
        # the caller-space location of the global
        caller_block = self.caller.resolve_symbol_block(symbol)
        caller_loc = LocationSet(caller_block, 0, 0)
        # reuse a parameter already bound exactly to this location
        for param, values in self.param_map.param_values.items():
            if values == frozenset({caller_loc}) and param.subsumed_by is None:
                self.ptf.global_params[symbol.name] = param
                return param
        param = self.ptf.new_param(symbol.name, global_block=self._root_global(symbol))
        self.param_map.bind_param(param, frozenset({caller_loc}))
        self.ptf.global_params[symbol.name] = param
        return param

    def _root_global(self, symbol: GlobalSymbol) -> GlobalBlock:
        return self.program.add_global(symbol)

    def caller_block_for_global(self, name: str) -> MemoryBlock:
        """This frame's own block for global ``name`` (used when a callee
        PTF's global parameter is bound structurally during matching)."""
        symbol = self.program.globals.get(name)
        if symbol is None:
            symbol = GlobalSymbol(name)
            self.program.add_global(symbol)
        return self.resolve_symbol_block(symbol)

    # ------------------------------------------------------------------
    # values: lookups with lazy initial fetch
    # ------------------------------------------------------------------

    def lookup_value(self, loc: LocationSet, node: Optional[Node], size: int) -> frozenset:
        """The values of ``loc`` visible just before ``node``.

        Used both intraprocedurally (dereferences) and by callees fetching
        initial values at our call node.
        """
        loc = normalize_loc(loc)
        self.ensure_initial(loc, size)
        if node is None:
            node = self.proc.exit
        return self.ptf.state.lookup_overlapping(loc, node, width=max(size, 1))

    def assign(
        self,
        loc: LocationSet,
        values,
        node: Node,
        strong: bool,
        size: int = WORD_SIZE,
    ) -> bool:
        """Record an assignment, first materializing the destination's
        initial value when it is a procedure input.

        Without this, a *conditional* update of an input location would
        summarize as only the new value: the fall-through path's "value at
        entry" must exist in the state for merges to see it.
        """
        self.ensure_initial(loc, size)
        return self.ptf.state.assign(loc, values, node, strong, size=size)

    def ensure_initial(self, loc: LocationSet, size: int) -> None:
        """Record the initial value of an input location if needed (§3.2)."""
        base = loc.base
        if isinstance(base, ExtendedParameter):
            if base.subsumed_by is not None:
                loc = normalize_loc(loc)
                base = loc.base
            if self.ptf.state.get_initial(loc) is not None:
                return
            caller_locs = self.param_map.caller_locations(loc)
            if caller_locs is None:
                # unbound parameter: an input that only exists in other
                # contexts of a recursive PTF; nothing to fetch here
                return
            caller_vals = self._caller_values(caller_locs, size)
            targets = self.to_callee_targets(caller_vals, loc)
            prov = self.analyzer.provenance
            if prov is not None:
                # the caller-space locations are the chain's next hops
                prov.set_initial_context(
                    sources=tuple(
                        sorted(str(normalize_loc(cl)) for cl in caller_locs)
                    ),
                    detail="input fetched from calling context",
                )
            tr = self.analyzer.trace
            if tr is not None:
                tr.instant(
                    "initial_fetch",
                    "interproc",
                    proc=self.proc.name,
                    ptf=self.ptf.uid,
                    loc=str(loc),
                    targets=len(targets),
                )
            self.ptf.add_initial_entry(loc, targets)
            self.ptf.snapshot_pointer_versions(self.param_map)
            self.analyzer.metrics.initial_fetches += 1
            self.changed = True
            return
        if isinstance(base, LocalBlock):
            symbol = self.proc.locals.get(base.name.split("::")[-1])
            if symbol is None or not symbol.is_formal:
                return
            if self.ptf.state.get_initial(loc) is not None:
                return
            caller_vals = self._actual_values(symbol.name, loc)
            targets = self.to_callee_targets(caller_vals, loc)
            prov = self.analyzer.provenance
            if prov is not None:
                prov.set_initial_context(
                    detail=f"actual argument bound to formal {symbol.name}",
                )
            tr = self.analyzer.trace
            if tr is not None:
                tr.instant(
                    "initial_fetch",
                    "interproc",
                    proc=self.proc.name,
                    ptf=self.ptf.uid,
                    loc=str(loc),
                    targets=len(targets),
                )
            self.ptf.add_initial_entry(loc, targets)
            self.analyzer.metrics.initial_fetches += 1
            self.changed = True

    def _caller_values(self, caller_locs: frozenset, size: int) -> frozenset:
        values: set[LocationSet] = set()
        for cl in caller_locs:
            values |= self.caller.lookup_value(cl, self.call_node, size)
        return frozenset(values)

    def _actual_values(self, formal_name: str, loc: LocationSet) -> frozenset:
        """Actual-argument values overlapping ``loc`` within the formal."""
        entries = self.param_map.actuals.get(formal_name)
        if not entries:
            return EMPTY
        values: set[LocationSet] = set()
        for offset, stride, vals in entries:
            probe = LocationSet(loc.base, offset, stride)
            if probe.overlaps(loc, width=1, other_width=max(1, WORD_SIZE)):
                values |= vals
        return frozenset(values)

    # ------------------------------------------------------------------
    # caller values -> callee name space (§3.2)
    # ------------------------------------------------------------------

    def to_callee_targets(self, caller_vals: frozenset, source: LocationSet) -> frozenset:
        """Represent caller-space values as location sets over one extended
        parameter, creating/reusing/subsuming parameters as needed."""
        if not caller_vals:
            return EMPTY
        caller_vals = frozenset(caller_vals)
        # locals of the *callee* never appear in caller values; procedure
        # blocks (function pointers) pass through unchanged — they are
        # global code addresses, not storage
        storage_vals = frozenset(
            v for v in caller_vals if not isinstance(v.base, ProcedureBlock)
        )
        passthrough = frozenset(
            v for v in caller_vals if isinstance(v.base, ProcedureBlock)
        )
        # heap blocks allocated by *this* procedure or its children keep
        # their identity; blocks passed in from the caller become parameters
        # (§3) — we approximate "from the caller" as "any heap value coming
        # through an initial fetch", which this is.
        if not storage_vals:
            return passthrough

        candidates = self._aliased_params(storage_vals)
        if not candidates:
            param = self.ptf.new_param(self._hint(source))
            self.param_map.bind_param(param, storage_vals)
            self.ptf.note_param_source(param, source)
            self._update_uniqueness(param)
            return passthrough | frozenset({LocationSet(param, 0, 0)})

        if len(candidates) == 1:
            param = candidates[0]
            bound = self.param_map.lookup_param(param) or EMPTY
            delta = self._constant_shift(bound, storage_vals)
            if delta is not None and not self.analyzer.options.subsumption and delta != 0:
                # ablation: offset-based reuse disabled — merge instead
                delta = None
            if delta is not None:
                self.ptf.note_param_source(param, source)
                self._update_uniqueness(param)
                target = LocationSet(param, delta, 0)
                if any(v.stride for v in storage_vals):
                    from math import gcd

                    s = 0
                    for v in storage_vals:
                        s = gcd(s, v.stride)
                    target = LocationSet(param, delta, s or 1)
                return passthrough | frozenset({target})
            if storage_vals <= bound:
                # a subset of what the parameter stands for: reuse directly
                self.ptf.note_param_source(param, source)
                self._update_uniqueness(param)
                return passthrough | frozenset({LocationSet(param, 0, 0)})

        # aliased with one-or-more parameters but not cleanly: subsume
        param = self._subsume(candidates, storage_vals, source)
        return passthrough | frozenset({LocationSet(param, 0, 0)})

    def _aliased_params(self, values: frozenset) -> list[ExtendedParameter]:
        """Parameters whose caller-space values alias ``values``.

        Aliasing is at *object* granularity: a pointer into the same block
        as an existing parameter relates to that parameter even at another
        offset — that is exactly the field-before-struct case of Figure 7,
        resolved by an offset (possibly negative) from the parameter.
        """
        out: list[ExtendedParameter] = []
        for param, bound in self.param_map.param_values.items():
            if param.subsumed_by is not None:
                continue
            if any(v.base is b.base for v in values for b in bound):
                out.append(param)
        out.sort(key=lambda p: p.order)
        return out

    @staticmethod
    def _constant_shift(bound: frozenset, values: frozenset) -> Optional[int]:
        """If ``values`` is exactly ``bound`` shifted by a constant byte
        offset, return that offset (0 when identical)."""
        if len(bound) != len(values):
            return None
        by_base_b = sorted(bound, key=lambda l: (l.base.uid, l.offset, l.stride))
        by_base_v = sorted(values, key=lambda l: (l.base.uid, l.offset, l.stride))
        delta: Optional[int] = None
        for b, v in zip(by_base_b, by_base_v):
            if b.base is not v.base or b.stride != v.stride:
                return None
            if b.stride:
                if b.offset != v.offset:
                    return None
                d = 0
            else:
                d = v.offset - b.offset
            if delta is None:
                delta = d
            elif delta != d and (b.stride == 0):
                return None
        return delta if delta is not None else 0

    def _subsume(
        self,
        old_params: list[ExtendedParameter],
        values: frozenset,
        source: LocationSet,
    ) -> ExtendedParameter:
        """Create a parameter subsuming ``old_params`` (Figure 6)."""
        union: set[LocationSet] = set(values)
        for p in old_params:
            union |= self.param_map.lookup_param(p) or EMPTY
        param = self.ptf.new_param(self._hint(source))
        self.param_map.bind_param(param, frozenset(union))
        for p in old_params:
            p.subsumed_by = param
            # inherit uniqueness sources
            for src in self.ptf.param_sources.get(p, ()):  # type: ignore[arg-type]
                self.ptf.note_param_source(param, src)
            if p.is_function_pointer:
                param.is_function_pointer = True
            # the subsumed parameter's pointer locations carry over
            for off_stride in p.pointer_locations:
                param.register_pointer_location(*off_stride)
            # keep the global cache pointing at representatives
            for gname, gparam in list(self.ptf.global_params.items()):
                if gparam is p:
                    self.ptf.global_params[gname] = param
        self.ptf.note_param_source(param, source)
        self._update_uniqueness(param)
        self.ptf.state.mark_changed()
        self.changed = True
        return param

    def _update_uniqueness(self, param: ExtendedParameter) -> None:
        """§4.1: a parameter stops being unique once more than one location
        points at it and its actual values are not a single unique location."""
        sources = self.ptf.param_sources.get(param, set())
        if len(sources) <= 1:
            return
        bound = self.param_map.lookup_param(param) or EMPTY
        if len(bound) == 1:
            only = next(iter(bound))
            if only.is_unique:
                return
        if param.known_unique:
            param.known_unique = False
            # the downgrade changes strong-update/fence applicability for
            # every location based on this parameter: force reevaluation and
            # drop the state's memoized lookups
            self.ptf.state.mark_changed()

    @staticmethod
    def _hint(source: LocationSet) -> str:
        name = source.base.name
        for sep in ("::", "@"):
            if sep in name:
                name = name.split(sep)[-1]
        return name

    # ------------------------------------------------------------------
    # function pointers (§5.1)
    # ------------------------------------------------------------------

    def resolve_fnptr_targets(self, values: frozenset) -> set[str]:
        """Resolve pointer values used as call targets to procedure names,
        walking parameter mappings up the call graph as needed."""
        out: set[str] = set()
        for loc in values:
            base = loc.base
            if isinstance(base, ProcedureBlock):
                out.add(base.proc_name)
            elif isinstance(base, ExtendedParameter):
                # the parameter *is* the function passed in: the values it
                # represents in the caller are the candidate code addresses
                rep = base.representative()
                rep.is_function_pointer = True
                caller_locs = self.param_map.lookup_param(rep) or EMPTY
                resolved = self.caller.resolve_fnptr_targets(frozenset(caller_locs))
                old = self.ptf.fnptr_domain.get(rep, frozenset())
                new = old | frozenset(resolved)
                if new != old:
                    self.ptf.fnptr_domain[rep] = new
                    self.changed = True
                out |= resolved
        return out

    def __repr__(self) -> str:
        return f"<Frame {self.proc.name} ptf#{self.ptf.uid}>"
