"""Partial transfer functions (§2) and parameter mappings.

A PTF summarizes one procedure *for one input alias pattern*.  Its pieces:

* the **extended parameters** it created, in creation order;
* the **initial points-to function**: ordered entries mapping input pointer
  locations to their initial targets (location sets over a single extended
  parameter each) — this *is* the input-domain specification (§2.2);
* the **function-pointer domain**: the values of parameters used as call
  targets (§5.1–5.2);
* the **final points-to function** at the procedure exit, in the
  parameterized name space, extracted from the PTF's points-to state;
* the **home context** where it was created, so iterative re-evaluation of
  the same call site updates the PTF in place instead of spawning PTFs for
  intermediate inputs (§5.2);
* for PTFs entered recursively, a second, merged input domain (§5.4).

A :class:`ParamMap` binds the PTF's name space to one calling context: the
actual values of the formals and the caller-space location sets each
extended parameter represents.  It is built while matching (§5.2) and then
drives summary translation back into the caller (§5.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..ir.expr import LocalSymbol
from ..ir.nodes import CallNode, Node
from ..ir.program import Procedure
from ..memory.blocks import ExtendedParameter
from ..memory.locset import LocationSet
from ..memory.pointsto import DenseState, PointsToState, SparseState, normalize_loc

__all__ = ["PTF", "ParamMap", "InitialEntry", "reset_ptf_counter"]

_ptf_counter = itertools.count()


def reset_ptf_counter() -> None:
    """Restart PTF uid numbering from zero.

    Stored alias tables and witnesses embed PTF uids, so two analyses of
    the same program produce byte-identical stores only when both start
    from a fresh counter.  Never call this between analyses that share
    PTF objects: uid collisions across a reset are only safe because
    nothing compares PTFs from different generations.
    """
    global _ptf_counter
    _ptf_counter = itertools.count()


@dataclass
class InitialEntry:
    """One ordered entry of the initial points-to function.

    ``source`` is a location set in the PTF name space whose initial
    contents were needed; ``targets`` are location sets based on (at most)
    one extended parameter, or empty when the input held no pointers.
    """

    source: LocationSet
    targets: frozenset  # frozenset[LocationSet]

    def normalized(self) -> "InitialEntry":
        return InitialEntry(
            normalize_loc(self.source),
            frozenset(normalize_loc(t) for t in self.targets),
        )


class ParamMap:
    """Binding of a PTF's name space to one calling context."""

    def __init__(self) -> None:
        #: formal symbol name -> caller-space pointer values of the actual
        self.actuals: dict[str, frozenset] = {}
        #: extended parameter -> caller-space location sets it represents
        self.param_values: dict[ExtendedParameter, frozenset] = {}

    def bind_param(self, param: ExtendedParameter, values: frozenset) -> None:
        self.param_values[param] = frozenset(values)

    def extend_param(self, param: ExtendedParameter, values: frozenset) -> None:
        old = self.param_values.get(param, frozenset())
        self.param_values[param] = old | values

    def lookup_param(self, param: ExtendedParameter) -> Optional[frozenset]:
        hit = self.param_values.get(param)
        if hit is not None:
            return hit
        rep = param.representative()
        if rep is not param:
            return self.param_values.get(rep)
        return None

    def caller_locations(self, loc: LocationSet) -> Optional[frozenset]:
        """Translate a param-based location set into caller space."""
        base = loc.base
        if not isinstance(base, ExtendedParameter):
            return None
        values = self.lookup_param(base.representative())
        if values is None:
            return None
        out = set()
        for v in values:
            shifted = v.with_offset(loc.offset) if loc.stride == 0 else v
            if loc.stride:
                shifted = shifted.with_offset(loc.offset).with_stride(loc.stride)
            out.add(shifted)
        return frozenset(out)

    def copy(self) -> "ParamMap":
        clone = ParamMap()
        clone.actuals = dict(self.actuals)
        clone.param_values = dict(self.param_values)
        return clone

    def __repr__(self) -> str:
        parts = [f"{p.name}->{{{', '.join(str(v) for v in vs)}}}" for p, vs in self.param_values.items()]
        return f"<ParamMap actuals={list(self.actuals)} params=[{'; '.join(parts)}]>"


class PTF:
    """A partial transfer function for one procedure."""

    def __init__(
        self,
        proc: Procedure,
        state_kind: str = "sparse",
        lookup_cache: bool = True,
        metrics=None,
        provenance=None,
    ) -> None:
        self.uid = next(_ptf_counter)
        self.proc = proc
        self.state_kind = state_kind
        self.lookup_cache = lookup_cache
        #: shared diagnostics sink (``Analyzer.metrics``); every state this
        #: PTF creates (including after ``reset``) reports into it
        self.metrics = metrics
        #: optional shared derivation log (``Analyzer.provenance``)
        self.provenance = provenance
        self.state: PointsToState = self._new_state()
        #: extended parameters in creation order (§5.2 compares in order)
        self.params: list[ExtendedParameter] = []
        #: ordered initial points-to entries (the input domain)
        self.initial_entries: list[InitialEntry] = []
        #: parameters used as call targets -> the procedures they may name
        #: (frozenset of procedure names; None entry means unresolvable)
        self.fnptr_domain: dict[ExtendedParameter, frozenset] = {}
        #: (call node uid, caller PTF uid) where this PTF was created
        self.home: Optional[tuple[int, int]] = None
        #: the ParamMap of the context being (re)analyzed; lazy initial-value
        #: fetches go through it
        self.current_map: Optional[ParamMap] = None
        #: global name -> the extended parameter representing it here (§2.2)
        self.global_params: dict[str, ExtendedParameter] = {}
        #: count of distinct pointer sources per parameter (uniqueness, §4.1)
        self.param_sources: dict[ExtendedParameter, set[LocationSet]] = {}
        #: set when this PTF sits at the head of a recursive cycle (§5.4)
        self.is_recursive = False
        #: head-PTF uid -> summary generation consumed (recursion fixpoint)
        self.recursive_deps: dict[int, int] = {}
        #: the merged inputs of all recursive call sites — the second input
        #: domain of §5.4, kept apart from the non-recursive context
        self.recursive_domain: dict[str, tuple] = {}
        #: snapshot of block pointer-location versions among the inputs,
        #: used to detect that a PTF must be extended (§5.2)
        self.pointer_snapshot: dict[int, int] = {}
        #: cached final summary + version for change detection
        self._summary_cache: Optional[dict] = None
        self._summary_version = -1
        self.summary_generation = 0
        self.analyzing = False

    def _new_state(self) -> PointsToState:
        cls = SparseState if self.state_kind == "sparse" else DenseState
        return cls(
            self.proc.entry,
            lookup_cache=self.lookup_cache,
            metrics=self.metrics,
            provenance=self.provenance,
        )

    # -- parameters -------------------------------------------------------

    def new_param(self, hint: str, global_block=None) -> ExtendedParameter:
        name = f"{len(self.params) + 1}_{hint}"
        param = ExtendedParameter(name, self.proc.name, global_block=global_block)
        param.order = len(self.params)
        self.params.append(param)
        return param

    def add_initial_entry(self, source: LocationSet, targets: frozenset) -> None:
        self.initial_entries.append(InitialEntry(source, targets))
        self.state.set_initial(source, targets)

    def note_param_source(self, param: ExtendedParameter, source: LocationSet) -> None:
        """Track which locations point at ``param`` for uniqueness (§4.1)."""
        sources = self.param_sources.setdefault(param, set())
        sources.add(source)

    # -- summary ----------------------------------------------------------

    def summary(self) -> dict[LocationSet, frozenset]:
        if self._summary_version != self.state.change_counter:
            new = self.state.summary(self.proc.exit)
            if new != self._summary_cache:
                self.summary_generation += 1
            self._summary_cache = new
            self._summary_version = self.state.change_counter
        return self._summary_cache or {}

    # -- diagnostics ------------------------------------------------------

    def alias_pattern(self) -> str:
        """A compact, stable rendering of the input alias pattern this PTF
        summarizes (its ordered initial points-to entries, §2.2).  Used by
        the tracer so ``ptf.reuse`` / ``ptf.create`` events say *which*
        pattern matched, and by the explain CLI."""
        parts = []
        for raw in self.initial_entries:
            entry = raw.normalized()
            targets = ",".join(sorted(str(t) for t in entry.targets)) or "-"
            parts.append(f"{entry.source}->{{{targets}}}")
        return "; ".join(parts) if parts else "<empty>"

    # -- maintenance ------------------------------------------------------

    def snapshot_pointer_versions(self, map_: ParamMap) -> None:
        for values in map_.param_values.values():
            for loc in values:
                self.pointer_snapshot[loc.base.uid] = loc.base.pointer_version

    def inputs_gained_pointers(self, map_: ParamMap) -> bool:
        """Whether input blocks gained registered pointer locations since
        this PTF was created (then the PTF must be extended, §5.2)."""
        for values in map_.param_values.values():
            for loc in values:
                old = self.pointer_snapshot.get(loc.base.uid)
                if old is None or loc.base.pointer_version > old:
                    return True
        return False

    def reset(self) -> None:
        """Wipe the PTF for a home-context reanalysis (§5.2).

        The object identity (and home) survive so the caller keeps updating
        this PTF instead of allocating one per fixpoint iteration.
        """
        self.state = self._new_state()
        self.params = []
        self.initial_entries = []
        self.fnptr_domain = {}
        self.global_params = {}
        self.param_sources = {}
        self.pointer_snapshot = {}
        self.recursive_domain = {}
        self._summary_cache = None
        self._summary_version = -1

    def describe(self) -> str:
        lines = [f"PTF#{self.uid} for {self.proc.name}"]
        for entry in self.initial_entries:
            tgts = ", ".join(str(t) for t in entry.targets) or "-"
            lines.append(f"  initial {entry.source} -> {{{tgts}}}")
        for loc, vals in sorted(
            self.summary().items(), key=lambda kv: (kv[0].base.name, kv[0].offset)
        ):
            vs = ", ".join(str(v) for v in sorted(vals, key=lambda l: (l.base.name, l.offset)))
            lines.append(f"  final   {loc} -> {{{vs}}}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<PTF#{self.uid} {self.proc.name} params={len(self.params)}>"
