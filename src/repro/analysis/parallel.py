"""The parallel analysis driver (``repro analyze --jobs N``).

The unit of parallel work is one *program*: each task parses, lowers and
analyzes one translation-unit group in its own worker process and ships
back a pickle-clean result bundle — the canonical snapshot (digest
included), the Table-2 measurement columns, the degradation summary, and
the program's SCC shard plan (:mod:`repro.analysis.scc`).  The parent
merges bundles **in task order**, so the batch output and the recorded
digests are deterministic regardless of which worker finishes first.

Determinism argument (docs/PARALLEL.md):

* every worker runs the *unchanged sequential algorithm* on a complete
  program — no analysis state crosses process boundaries, so there is
  nothing to race on;
* the canonical snapshot digest is normalization-stable across processes
  (name-space-normalized, everywhere-sorted, uid-free — the
  :mod:`repro.diagnostics.snapshot` contract), so a worker's digest is
  bit-identical to what a sequential in-process run of the same program
  produces;
* the merge is positional: results are yielded in submission order
  (``imap``), never completion order.

``jobs=1`` runs the same task list in-process with zero pool overhead —
that is the sequential baseline the digest-equality acceptance test and
the CI parallel job compare against.

Why programs and not procedure shards?  The PTF scheme is *demand-driven
top-down*: a callee's contexts (input alias patterns) are discovered
while its callers are being evaluated, so a bottom-up worker cannot know
which PTFs to build, and any context-free over-approximation would
change the per-procedure PTF payload lists the digest hashes.  The shard
plan each worker computes (SCC condensation, bottom-up waves) is the
schedule a future context-free summary phase would execute; until then
it is reported, not dispatched.  See docs/PARALLEL.md.
"""

from __future__ import annotations

import os
import time
from contextlib import suppress
from dataclasses import dataclass, field, fields as _dataclass_fields, replace
from typing import Callable, Optional

__all__ = [
    "AnalysisTask",
    "BatchResult",
    "options_payload",
    "run_batch",
    "default_jobs",
]


def options_payload(options) -> dict:
    """The pickle/JSON-clean scalar option fields that differ from the
    defaults — the only part of :class:`AnalyzerOptions` that crosses the
    process boundary (tracers, fault plans and other live objects stay in
    the parent; workers run plain)."""
    from .engine import AnalyzerOptions

    if options is None:
        return {}
    defaults = AnalyzerOptions()
    out = {}
    for f in _dataclass_fields(AnalyzerOptions):
        value = getattr(options, f.name)
        if value == getattr(defaults, f.name):
            continue
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[f.name] = value
    return out


@dataclass(frozen=True)
class AnalysisTask:
    """One program to analyze — fully described by picklable values.

    Exactly one of ``files`` (paths re-read in the worker) or ``source``
    (inline text, used by the bench harness and tests) is set.
    """

    name: str
    files: tuple[str, ...] = ()
    source: Optional[str] = None
    filename: Optional[str] = None
    #: scalar AnalyzerOptions overrides (see :func:`options_payload`)
    options: dict = field(default_factory=dict)
    #: also build the persistent query store (``repro index --jobs``)
    build_store: bool = False
    #: parallel observatory (``--profile-parallel``): the worker runs
    #: with its own Tracer + TelemetryRegistry and ships the trace
    #: events, the clock calibration record, the telemetry payload, the
    #: per-procedure self-times and the full shard plan back in the
    #: bundle.  Results and digests stay bit-identical — the profile is
    #: pure instrumentation.
    profile: bool = False
    #: task position in the batch (stamped by run_batch; lane ordering
    #: and queue-wait attribution)
    index: int = 0
    #: ``time.time_ns()`` at dispatch (stamped by run_batch); the
    #: worker's queue-wait is its tracer anchor minus this
    dispatched_ns: Optional[int] = None
    #: when set (and profiling), the worker writes its own JSONL trace
    #: to ``<trace_dir>/<name>.worker.jsonl`` — calibration record
    #: included — in addition to shipping events in the bundle
    trace_dir: Optional[str] = None


def _load_task_program(task: AnalysisTask):
    from ..frontend.parser import load_program, load_project_files

    if task.source is not None:
        return load_program(
            task.source, task.filename or f"{task.name}.c", task.name
        )
    strict = bool(task.options.get("strict"))
    return load_project_files(
        list(task.files), name=task.name, tolerant=not strict
    )


def _worker_run(task: AnalysisTask) -> dict:
    """Analyze one task start-to-finish; always returns a bundle dict.

    Top-level (picklable under spawn); exceptions become ``error``
    bundles so one broken program never takes the batch down — the
    fault-isolation discipline of ``bench.harness``.

    With ``task.profile`` the worker additionally runs under its own
    :class:`~repro.diagnostics.trace.Tracer` (clock-calibration record
    first, a ``worker.task`` span around the whole task, the engine's
    full span tree nested inside) and a private
    :class:`~repro.diagnostics.telemetry.TelemetryRegistry`, shipping
    both back as plain data in ``bundle["profile"]`` — analysis results
    and digests stay bit-identical (instrumentation never feeds the
    solution).
    """
    started = time.perf_counter()
    out: dict = {"name": task.name, "pid": os.getpid()}
    tracer = registry = None
    queue_wait_ms: Optional[float] = None
    phase_ms: dict[str, float] = {}
    if task.profile:
        from ..diagnostics.telemetry import TelemetryRegistry
        from ..diagnostics.trace import Tracer

        tracer = Tracer()
        registry = TelemetryRegistry()
        tracer.instant("clock.calibrate", "worker", **tracer.calibration())
        if task.dispatched_ns is not None:
            queue_wait_ms = max(
                0.0, (tracer.wall_anchor_ns - task.dispatched_ns) / 1e6
            )
        tracer.instant(
            "worker.start", "worker", task=task.name, index=task.index,
            pid=out["pid"], queue_wait_ms=queue_wait_ms,
        )
        tracer.begin(
            "worker.task", "worker", task=task.name, index=task.index,
            pid=out["pid"],
        )
    try:
        from ..diagnostics.snapshot import build_snapshot
        from ..analysis.results import run_analysis
        from ..analysis.engine import AnalyzerOptions
        from .scc import build_plan, static_call_graph

        t_phase = time.perf_counter()
        program = _load_task_program(task)
        phase_ms["load"] = (time.perf_counter() - t_phase) * 1000.0
        if "main" not in program.procedures:
            faults = [f.render() for f in program.frontend_failures]
            out["error"] = "no analyzable main procedure"
            out["frontend_faults"] = faults
            out["seconds"] = time.perf_counter() - started
            _finish_worker_profile(
                task, out, tracer, registry, queue_wait_ms, phase_ms
            )
            return out
        plan = build_plan(static_call_graph(program))
        if task.options or task.profile:
            options = AnalyzerOptions(**task.options)
        else:
            options = None
        if tracer is not None:
            options.trace = tracer
        t_phase = time.perf_counter()
        result = run_analysis(program, options)
        phase_ms["analyze"] = (time.perf_counter() - t_phase) * 1000.0
        t_phase = time.perf_counter()
        snapshot = build_snapshot(
            result, options=options, program_name=task.name,
            include_solution=True,
        )
        phase_ms["snapshot"] = (time.perf_counter() - t_phase) * 1000.0
        stats = result.stats()
        report = result.degradation
        out.update(
            {
                "snapshot": snapshot,
                "digest": snapshot["digest"]["program"],
                "shard_plan": plan.stats(),
                "lines": stats.source_lines,
                "procedures": stats.procedures,
                "analysis_seconds": stats.analysis_seconds,
                "total_ptfs": stats.total_ptfs,
                "avg_ptfs": stats.avg_ptfs,
                "cache_hit_rate": result.analyzer.metrics.cache_hit_rate(),
                "dom_walk_steps": result.analyzer.metrics.dom_walk_steps,
                "degraded": len(report.records) + len(report.frontend),
                "degradation": (
                    {
                        "quarantined": sorted(report.quarantined),
                        "reasons": report.reasons(),
                    }
                    if (report.records or report.frontend)
                    else None
                ),
                "degradation_lines": report.summary_lines()
                if not report.ok
                else [],
                "partial": not report.ok,
            }
        )
        if task.profile:
            out["profile_data"] = {
                "plan": plan.to_payload(),
                "proc_self_seconds": {
                    name: round(seconds, 9)
                    for name, seconds in
                    result.analyzer.metrics.proc_self_seconds.items()
                },
            }
        if task.build_store:
            from ..query.store import build_store

            out["store"] = build_store(
                result,
                options=options,
                program_name=task.name,
                sources=list(task.files) or None,
            )
    except Exception as exc:  # noqa: BLE001 - fault isolation by design
        out["error"] = f"{type(exc).__name__}: {exc}"
    out["seconds"] = time.perf_counter() - started
    _finish_worker_profile(task, out, tracer, registry, queue_wait_ms, phase_ms)
    return out


def _finish_worker_profile(
    task: AnalysisTask,
    out: dict,
    tracer,
    registry,
    queue_wait_ms: Optional[float],
    phase_ms: dict[str, float],
) -> None:
    """Close the worker span, record the worker-side telemetry, attach
    the profile transport block, and (when asked) write the worker's own
    JSONL trace file.  No-op without profiling."""
    if tracer is None:
        return
    tracer.end("worker.task", "worker", seconds=round(out["seconds"], 6),
               error=out.get("error", ""))
    # the pickle-time histogram measures shipping the *data* bundle (the
    # profile block itself is not part of the non-profiled payload)
    import pickle

    t0 = time.perf_counter()
    try:
        payload_bytes = len(
            pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL)
        )
        pickle_ms = (time.perf_counter() - t0) * 1000.0
    except Exception:  # pragma: no cover - unpicklable bundles never ship
        payload_bytes = None
        pickle_ms = None
    if queue_wait_ms is not None:
        registry.histogram("parallel.queue_wait_ms").record(queue_wait_ms)
    for phase, ms in phase_ms.items():
        registry.histogram(f"parallel.{phase}_ms").record(ms)
    registry.histogram("parallel.run_ms").record(out["seconds"] * 1000.0)
    if pickle_ms is not None:
        registry.histogram("parallel.pickle_ms").record(pickle_ms)
    registry.counter("parallel.tasks").inc()
    if out.get("error"):
        registry.counter("parallel.errors").inc()
    profile_data = out.pop("profile_data", None) or {}
    out["profile"] = dict(
        profile_data,
        index=task.index,
        calibration=tracer.calibration(),
        events=tracer.events,
        telemetry=registry.to_payload(),
        queue_wait_ms=queue_wait_ms,
        pickle_ms=pickle_ms,
        payload_bytes=payload_bytes,
    )
    if task.trace_dir:
        with suppress(OSError):
            tracer.save_jsonl(
                os.path.join(task.trace_dir, f"{task.name}.worker.jsonl")
            )


@dataclass
class BatchResult:
    """Merged outcome of one parallel batch, in task order."""

    results: list[dict]
    jobs: int
    workers: int
    elapsed_seconds: float
    #: parent-side registry the worker telemetry payloads were folded
    #: into (``--profile-parallel``); None when profiling was off
    telemetry: Optional[object] = None
    #: merged-trace lane map ``{worker pid: tid}`` (empty without a
    #: tracer or without profiling)
    lanes: dict = field(default_factory=dict)

    @property
    def errors(self) -> list[dict]:
        return [r for r in self.results if r.get("error")]

    @property
    def partial(self) -> bool:
        return any(r.get("partial") for r in self.results)

    def stats(self) -> dict:
        """The batch-level measurement record (metrics + trajectory)."""
        good = [r for r in self.results if not r.get("error")]
        worker_seconds = sum(r.get("seconds", 0.0) for r in self.results)
        denom = self.jobs * self.elapsed_seconds
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "programs": len(self.results),
            "errors": len(self.errors),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            # total in-worker wall time; elapsed/worker ratio is the
            # realized parallel speedup the CI job asserts on
            "worker_seconds": round(worker_seconds, 6),
            # fraction of the pool's capacity (jobs x wall) spent inside
            # workers, and the batch's critical path — the slowest
            # single task, which no worker count can compress below
            # (docs/OBSERVABILITY.md §6)
            "utilization": (
                round(worker_seconds / denom, 4) if denom > 0 else None
            ),
            "critical_path_seconds": round(
                max((r.get("seconds", 0.0) for r in self.results),
                    default=0.0),
                6,
            ),
            "shards": sum(
                r.get("shard_plan", {}).get("shards", 0) for r in good
            ),
            "recursive_shards": sum(
                r.get("shard_plan", {}).get("recursive_shards", 0)
                for r in good
            ),
        }


def default_jobs() -> int:
    return os.cpu_count() or 1


def _pool_context():
    """Prefer fork (cheap, inherits the loaded modules); fall back to
    spawn where fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def run_batch(
    tasks: list[AnalysisTask],
    jobs: int = 1,
    tracer=None,
    progress: Optional[Callable[[dict], None]] = None,
    profile: bool = False,
    worker_trace_dir: Optional[str] = None,
    telemetry=None,
) -> BatchResult:
    """Analyze ``tasks`` with up to ``jobs`` worker processes.

    Results come back in task order (deterministic merge).  ``jobs=1``
    runs everything in-process — the sequential baseline.  ``tracer``
    (a :class:`~repro.diagnostics.trace.Tracer`) records the batch span
    and one dispatch/done instant per task; ``progress`` is called with
    each bundle as it is merged.

    ``profile=True`` turns on the parallel observatory
    (docs/OBSERVABILITY.md §6): every worker runs with its own tracer
    and telemetry registry, the parent folds worker telemetry into
    ``telemetry`` (a :class:`TelemetryRegistry`, created when not
    passed) with the exact histogram bucket-merge, and — when ``tracer``
    is given — merges every worker's events onto the parent timeline,
    one lane per worker process (``BatchResult.lanes``).
    ``worker_trace_dir`` additionally makes each worker write its own
    JSONL trace file there.  Results and digests are bit-identical with
    profiling on or off.
    """
    jobs = max(1, min(jobs, len(tasks))) if tasks else 1
    if profile:
        if telemetry is None:
            from ..diagnostics.telemetry import TelemetryRegistry

            telemetry = TelemetryRegistry()
        if worker_trace_dir:
            os.makedirs(worker_trace_dir, exist_ok=True)
    else:
        telemetry = None
    start = time.perf_counter()
    if tracer is not None:
        tracer.begin("parallel", "driver", jobs=jobs, tasks=len(tasks))
    results: list[dict] = []
    payloads: list[dict] = []
    try:
        if jobs == 1:
            for i, task in enumerate(tasks):
                if profile:
                    task = replace(
                        task, profile=True, index=i,
                        dispatched_ns=time.time_ns(),
                        trace_dir=worker_trace_dir,
                    )
                if tracer is not None:
                    tracer.instant(
                        "shard.dispatch", "driver", task=task.name, index=i
                    )
                bundle = _worker_run(task)
                _merge_bundle(
                    tracer, telemetry, progress, bundle, i, results, payloads
                )
        else:
            if profile:
                tasks = [
                    replace(
                        task, profile=True, index=i,
                        dispatched_ns=time.time_ns(),
                        trace_dir=worker_trace_dir,
                    )
                    for i, task in enumerate(tasks)
                ]
            ctx = _pool_context()
            with ctx.Pool(processes=jobs) as pool:
                if tracer is not None:
                    for i, task in enumerate(tasks):
                        tracer.instant(
                            "shard.dispatch", "driver",
                            task=task.name, index=i,
                        )
                for i, bundle in enumerate(pool.imap(_worker_run, tasks)):
                    _merge_bundle(
                        tracer, telemetry, progress, bundle, i, results,
                        payloads,
                    )
    finally:
        if tracer is not None:
            tracer.end("parallel", "driver", tasks=len(results))
    elapsed = time.perf_counter() - start
    lanes: dict[int, int] = {}
    if payloads and tracer is not None:
        from ..diagnostics.trace import merge_worker_events

        lanes = merge_worker_events(tracer, payloads)
    if telemetry is not None:
        _record_pool_telemetry(telemetry, results, payloads, jobs, elapsed,
                               lanes)
    return BatchResult(
        results=results,
        jobs=jobs,
        workers=jobs,
        elapsed_seconds=elapsed,
        telemetry=telemetry,
        lanes=lanes,
    )


#: a dispatched task whose queue wait exceeds this was blocked behind a
#: fully busy pool (the pool-saturation counter's threshold)
SATURATION_QUEUE_WAIT_MS = 1.0


def _merge_bundle(
    tracer, telemetry, progress, bundle: dict, index: int,
    results: list[dict], payloads: list[dict],
) -> None:
    """Fold one arriving worker bundle into the parent (task order):
    telemetry payload merge, trace bookkeeping (``shard.done`` instant +
    a ``merge`` complete event covering the parent-side work), progress
    callback."""
    merge_start_us = tracer.now_us() if tracer is not None else 0.0
    t0 = time.perf_counter()
    prof = bundle.get("profile")
    if prof is not None:
        if telemetry is not None:
            telemetry.merge_payload(prof.get("telemetry", {}))
        payloads.append(prof)
    results.append(bundle)
    if tracer is not None:
        tracer.instant(
            "shard.done",
            "driver",
            task=bundle.get("name"),
            index=index,
            seconds=round(bundle.get("seconds", 0.0), 6),
            error=bundle.get("error", ""),
        )
        if prof is not None:
            merge_ms = (time.perf_counter() - t0) * 1000.0
            tracer.complete(
                "merge", "driver", merge_start_us, merge_ms * 1000.0,
                task=bundle.get("name"), index=index,
            )
            if telemetry is not None:
                telemetry.histogram("parallel.merge_ms").record(merge_ms)
    elif prof is not None and telemetry is not None:
        telemetry.histogram("parallel.merge_ms").record(
            (time.perf_counter() - t0) * 1000.0
        )
    if progress is not None:
        progress(bundle)


def _record_pool_telemetry(
    telemetry, results: list[dict], payloads: list[dict], jobs: int,
    elapsed: float, lanes: dict[int, int],
) -> None:
    """The parent-side pool gauges/counters: overall and per-worker
    utilization, pool-saturation count (tasks that measurably waited in
    the queue), worker count."""
    telemetry.gauge("parallel.jobs").set(jobs)
    telemetry.gauge("parallel.programs").set(len(results))
    saturated = sum(
        1 for p in payloads
        if (p.get("queue_wait_ms") or 0.0) > SATURATION_QUEUE_WAIT_MS
    )
    if saturated:
        telemetry.counter("parallel.pool_saturated").inc(saturated)
    if elapsed <= 0:
        return
    worker_seconds = sum(r.get("seconds", 0.0) for r in results)
    telemetry.gauge("parallel.utilization").set(
        round(worker_seconds / (jobs * elapsed), 4)
    )
    busy: dict[int, float] = {}
    for r in results:
        pid = r.get("pid")
        if pid is not None:
            busy[pid] = busy.get(pid, 0.0) + r.get("seconds", 0.0)
    for rank, pid in enumerate(sorted(busy)):
        lane = lanes.get(pid, rank + 2)
        telemetry.gauge(f"parallel.worker_utilization.lane{lane}").set(
            round(busy[pid] / elapsed, 4)
        )
