"""The parallel analysis driver (``repro analyze --jobs N``).

The unit of parallel work is one *program*: each task parses, lowers and
analyzes one translation-unit group in its own worker process and ships
back a pickle-clean result bundle — the canonical snapshot (digest
included), the Table-2 measurement columns, the degradation summary, and
the program's SCC shard plan (:mod:`repro.analysis.scc`).  The parent
merges bundles **in task order**, so the batch output and the recorded
digests are deterministic regardless of which worker finishes first.

Determinism argument (docs/PARALLEL.md):

* every worker runs the *unchanged sequential algorithm* on a complete
  program — no analysis state crosses process boundaries, so there is
  nothing to race on;
* the canonical snapshot digest is normalization-stable across processes
  (name-space-normalized, everywhere-sorted, uid-free — the
  :mod:`repro.diagnostics.snapshot` contract), so a worker's digest is
  bit-identical to what a sequential in-process run of the same program
  produces;
* the merge is positional: results are yielded in submission order
  (``imap``), never completion order.

``jobs=1`` runs the same task list in-process with zero pool overhead —
that is the sequential baseline the digest-equality acceptance test and
the CI parallel job compare against.

Why programs and not procedure shards?  The PTF scheme is *demand-driven
top-down*: a callee's contexts (input alias patterns) are discovered
while its callers are being evaluated, so a bottom-up worker cannot know
which PTFs to build, and any context-free over-approximation would
change the per-procedure PTF payload lists the digest hashes.  The shard
plan each worker computes (SCC condensation, bottom-up waves) is the
schedule a future context-free summary phase would execute; until then
it is reported, not dispatched.  See docs/PARALLEL.md.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, fields as _dataclass_fields
from typing import Callable, Optional

__all__ = [
    "AnalysisTask",
    "BatchResult",
    "options_payload",
    "run_batch",
    "default_jobs",
]


def options_payload(options) -> dict:
    """The pickle/JSON-clean scalar option fields that differ from the
    defaults — the only part of :class:`AnalyzerOptions` that crosses the
    process boundary (tracers, fault plans and other live objects stay in
    the parent; workers run plain)."""
    from .engine import AnalyzerOptions

    if options is None:
        return {}
    defaults = AnalyzerOptions()
    out = {}
    for f in _dataclass_fields(AnalyzerOptions):
        value = getattr(options, f.name)
        if value == getattr(defaults, f.name):
            continue
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[f.name] = value
    return out


@dataclass(frozen=True)
class AnalysisTask:
    """One program to analyze — fully described by picklable values.

    Exactly one of ``files`` (paths re-read in the worker) or ``source``
    (inline text, used by the bench harness and tests) is set.
    """

    name: str
    files: tuple[str, ...] = ()
    source: Optional[str] = None
    filename: Optional[str] = None
    #: scalar AnalyzerOptions overrides (see :func:`options_payload`)
    options: dict = field(default_factory=dict)
    #: also build the persistent query store (``repro index --jobs``)
    build_store: bool = False


def _load_task_program(task: AnalysisTask):
    from ..frontend.parser import load_program, load_project_files

    if task.source is not None:
        return load_program(
            task.source, task.filename or f"{task.name}.c", task.name
        )
    strict = bool(task.options.get("strict"))
    return load_project_files(
        list(task.files), name=task.name, tolerant=not strict
    )


def _worker_run(task: AnalysisTask) -> dict:
    """Analyze one task start-to-finish; always returns a bundle dict.

    Top-level (picklable under spawn); exceptions become ``error``
    bundles so one broken program never takes the batch down — the
    fault-isolation discipline of ``bench.harness``.
    """
    started = time.perf_counter()
    out: dict = {"name": task.name, "pid": os.getpid()}
    try:
        from ..diagnostics.snapshot import build_snapshot
        from ..analysis.results import run_analysis
        from ..analysis.engine import AnalyzerOptions
        from .scc import build_plan, static_call_graph

        program = _load_task_program(task)
        if "main" not in program.procedures:
            faults = [f.render() for f in program.frontend_failures]
            out["error"] = "no analyzable main procedure"
            out["frontend_faults"] = faults
            out["seconds"] = time.perf_counter() - started
            return out
        plan = build_plan(static_call_graph(program))
        options = AnalyzerOptions(**task.options) if task.options else None
        result = run_analysis(program, options)
        snapshot = build_snapshot(
            result, options=options, program_name=task.name,
            include_solution=True,
        )
        stats = result.stats()
        report = result.degradation
        out.update(
            {
                "snapshot": snapshot,
                "digest": snapshot["digest"]["program"],
                "shard_plan": plan.stats(),
                "lines": stats.source_lines,
                "procedures": stats.procedures,
                "analysis_seconds": stats.analysis_seconds,
                "total_ptfs": stats.total_ptfs,
                "avg_ptfs": stats.avg_ptfs,
                "cache_hit_rate": result.analyzer.metrics.cache_hit_rate(),
                "dom_walk_steps": result.analyzer.metrics.dom_walk_steps,
                "degraded": len(report.records) + len(report.frontend),
                "degradation": (
                    {
                        "quarantined": sorted(report.quarantined),
                        "reasons": report.reasons(),
                    }
                    if (report.records or report.frontend)
                    else None
                ),
                "degradation_lines": report.summary_lines()
                if not report.ok
                else [],
                "partial": not report.ok,
            }
        )
        if task.build_store:
            from ..query.store import build_store

            out["store"] = build_store(
                result,
                options=options,
                program_name=task.name,
                sources=list(task.files) or None,
            )
    except Exception as exc:  # noqa: BLE001 - fault isolation by design
        out["error"] = f"{type(exc).__name__}: {exc}"
    out["seconds"] = time.perf_counter() - started
    return out


@dataclass
class BatchResult:
    """Merged outcome of one parallel batch, in task order."""

    results: list[dict]
    jobs: int
    workers: int
    elapsed_seconds: float

    @property
    def errors(self) -> list[dict]:
        return [r for r in self.results if r.get("error")]

    @property
    def partial(self) -> bool:
        return any(r.get("partial") for r in self.results)

    def stats(self) -> dict:
        """The batch-level measurement record (metrics + trajectory)."""
        good = [r for r in self.results if not r.get("error")]
        worker_seconds = sum(r.get("seconds", 0.0) for r in self.results)
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "programs": len(self.results),
            "errors": len(self.errors),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            # total in-worker wall time; elapsed/worker ratio is the
            # realized parallel speedup the CI job asserts on
            "worker_seconds": round(worker_seconds, 6),
            "shards": sum(
                r.get("shard_plan", {}).get("shards", 0) for r in good
            ),
            "recursive_shards": sum(
                r.get("shard_plan", {}).get("recursive_shards", 0)
                for r in good
            ),
        }


def default_jobs() -> int:
    return os.cpu_count() or 1


def _pool_context():
    """Prefer fork (cheap, inherits the loaded modules); fall back to
    spawn where fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def run_batch(
    tasks: list[AnalysisTask],
    jobs: int = 1,
    tracer=None,
    progress: Optional[Callable[[dict], None]] = None,
) -> BatchResult:
    """Analyze ``tasks`` with up to ``jobs`` worker processes.

    Results come back in task order (deterministic merge).  ``jobs=1``
    runs everything in-process — the sequential baseline.  ``tracer``
    (a :class:`~repro.diagnostics.trace.Tracer`) records the batch span
    and one dispatch/done instant per task; ``progress`` is called with
    each bundle as it is merged.
    """
    jobs = max(1, min(jobs, len(tasks))) if tasks else 1
    start = time.perf_counter()
    if tracer is not None:
        tracer.begin("parallel", "driver", jobs=jobs, tasks=len(tasks))
    results: list[dict] = []
    try:
        if jobs == 1:
            for i, task in enumerate(tasks):
                if tracer is not None:
                    tracer.instant(
                        "shard.dispatch", "driver", task=task.name, index=i
                    )
                bundle = _worker_run(task)
                _note_done(tracer, progress, bundle, i)
                results.append(bundle)
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=jobs) as pool:
                if tracer is not None:
                    for i, task in enumerate(tasks):
                        tracer.instant(
                            "shard.dispatch", "driver",
                            task=task.name, index=i,
                        )
                for i, bundle in enumerate(pool.imap(_worker_run, tasks)):
                    _note_done(tracer, progress, bundle, i)
                    results.append(bundle)
    finally:
        if tracer is not None:
            tracer.end("parallel", "driver", tasks=len(results))
    return BatchResult(
        results=results,
        jobs=jobs,
        workers=jobs,
        elapsed_seconds=time.perf_counter() - start,
    )


def _note_done(tracer, progress, bundle: dict, index: int) -> None:
    if tracer is not None:
        tracer.instant(
            "shard.done",
            "driver",
            task=bundle.get("name"),
            index=index,
            seconds=round(bundle.get("seconds", 0.0), 6),
            error=bundle.get("error", ""),
        )
    if progress is not None:
        progress(bundle)
