"""The paper's contribution: the context-sensitive analysis itself."""

from .engine import Analyzer, AnalyzerOptions, analyze
from .ptf import PTF, InitialEntry, ParamMap
from .results import AnalysisResult, PTFStats, run_analysis

__all__ = [
    "Analyzer",
    "AnalyzerOptions",
    "analyze",
    "PTF",
    "ParamMap",
    "InitialEntry",
    "AnalysisResult",
    "PTFStats",
    "run_analysis",
]
