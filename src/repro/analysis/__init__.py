"""The paper's contribution: the context-sensitive analysis itself."""

from .engine import Analyzer, AnalyzerOptions, analyze
from .guards import (
    AnalysisBudget,
    DegradationRecord,
    DegradationReport,
    FrontendFault,
    GuardTripped,
)
from .ptf import PTF, InitialEntry, ParamMap
from .results import AnalysisResult, PTFStats, run_analysis

__all__ = [
    "Analyzer",
    "AnalyzerOptions",
    "analyze",
    "AnalysisBudget",
    "DegradationRecord",
    "DegradationReport",
    "FrontendFault",
    "GuardTripped",
    "PTF",
    "ParamMap",
    "InitialEntry",
    "AnalysisResult",
    "PTFStats",
    "run_analysis",
]
