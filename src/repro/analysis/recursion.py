"""Process-wide recursion-limit policy: raise-only, lock-guarded.

The engine's explicit call-depth guard (:class:`~repro.analysis.guards.
AnalysisBudget`) must fire before CPython's own recursion limit, so every
run raises the interpreter limit proportionally to its depth budget.  The
limit is *process-global* state: the historical save/raise/``finally``
-restore pattern races as soon as two analyses overlap (serve-daemon
threads, the parallel driver's in-process ``--jobs 1`` path, test suites
running analyzers concurrently) — the first finisher restores the *old*
limit while the other run is still recursing above it, and the deep run
dies with a spurious ``RecursionError``.

The fix is a monotone policy: :func:`ensure_recursion_limit` only ever
**raises** the limit, under a module-level lock, and nothing restores it.
A high recursion limit is harmless on its own (the budget guard, not the
interpreter, bounds actual analysis depth), whereas a limit yanked down
mid-run is a correctness bug.  Concurrent callers serialize on the lock,
and each observes a limit at least as high as it asked for, for the rest
of its run.
"""

from __future__ import annotations

import sys
import threading

__all__ = ["ensure_recursion_limit"]

_LOCK = threading.Lock()


def ensure_recursion_limit(needed: int) -> int:
    """Raise the interpreter recursion limit to at least ``needed``.

    Never lowers it (monotone), so overlapping analyses cannot clobber
    each other.  Returns the limit in effect after the call.
    """
    with _LOCK:
        current = sys.getrecursionlimit()
        if needed > current:
            sys.setrecursionlimit(needed)
            return needed
        return current
