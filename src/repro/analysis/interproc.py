"""Interprocedural evaluation: EvalCall / GetPTF / matchPTF / ApplySummary
(Figures 12–13) plus recursion handling (§5.4).

The machinery lives in a mixin inherited by :class:`repro.analysis.engine.
Analyzer` so the pieces are testable and readable in isolation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..frontend.ctypes_model import WORD_SIZE
from ..ir.expr import ContentsTerm
from ..ir.nodes import CallNode, Node
from ..ir.program import Procedure
from ..memory.blocks import (
    ExtendedParameter,
    GlobalBlock,
    HeapBlock,
    LocalBlock,
    ProcedureBlock,
    ReturnBlock,
    StringBlock,
)
from ..memory.locset import LocationSet
from ..memory.pointsto import normalize_loc
from .context import Frame, RootFrame
from .guards import GuardTripped, conservative_region
from .ptf import PTF, InitialEntry, ParamMap

if TYPE_CHECKING:  # pragma: no cover
    from .intra import ProcEvaluator

__all__ = ["InterproceduralMixin"]

EMPTY: frozenset = frozenset()


def _loc_key(loc: LocationSet) -> tuple:
    return (loc.base.uid, loc.offset, loc.stride)


class InterproceduralMixin:
    """Call-site evaluation for :class:`Analyzer`.

    Relies on attributes provided by the engine: ``program``, ``options``,
    ``stack`` (list of Frames), ``ptfs`` (proc name -> list of PTFs),
    ``libc`` (library summaries), ``stats``, ``metrics``, and the
    degradation machinery: ``budget`` (:class:`AnalysisBudget`),
    ``degradation`` (:class:`DegradationReport`), ``faults`` (optional
    :class:`FaultPlan`), ``_regions`` (conservative-region cache).
    """

    # ------------------------------------------------------------------
    # EvalCall (Figure 12)
    # ------------------------------------------------------------------

    def eval_call(self, frame: Frame, evaluator: "ProcEvaluator", node: CallNode) -> None:
        target_vals = evaluator.eval_value(node.target, node)
        targets = sorted(frame.resolve_fnptr_targets(target_vals))
        if not targets:
            # a function pointer with no values yet: defer to a later pass
            if node.uid not in frame.deferred:
                frame.deferred.add(node.uid)
                frame.changed = True
            return
        multiple = len(targets) > 1
        for name in targets:
            if name in self.program.procedures:
                self._call_internal(frame, evaluator, node, name, multiple)
            elif self.libc.handles(name):
                self.libc.apply(self, frame, evaluator, node, name)
            else:
                self._call_external(frame, evaluator, node, name)

    def call_procedure(
        self,
        frame: Frame,
        evaluator: "ProcEvaluator",
        node: CallNode,
        name: str,
        arg_values: list[frozenset],
    ) -> None:
        """Invoke an internal procedure with explicit argument values.

        Used by library summaries that call back through function pointers
        (``qsort``, ``atexit``, ``signal``...).
        """
        if name not in self.program.procedures:
            return
        proc = self.program.procedures[name]
        map_ = ParamMap()
        for formal, vals in zip(proc.formals, arg_values):
            map_.actuals[formal.name] = (
                ((0, 0, frozenset(vals)),) if vals else tuple()
            )
        for formal in proc.formals[len(arg_values):]:
            map_.actuals[formal.name] = tuple()
        self._dispatch_internal(frame, node, proc, map_, apply_weak=True)

    # -- internal calls ----------------------------------------------------

    def _call_internal(
        self,
        frame: Frame,
        evaluator: "ProcEvaluator",
        node: CallNode,
        name: str,
        multiple: bool,
    ) -> None:
        proc = self.program.procedures[name]
        map_ = self._record_actuals(frame, evaluator, node, proc)
        self._dispatch_internal(frame, node, proc, map_, apply_weak=multiple)

    def _dispatch_internal(
        self,
        frame: Frame,
        node: CallNode,
        proc: Procedure,
        map_: ParamMap,
        apply_weak: bool,
    ) -> None:
        on_stack = self._stack_frame(proc.name)
        if on_stack is None:
            guard = self._guard_reason(proc.name)
            if guard is not None:
                reason, detail = guard
                if self.options.strict:
                    raise GuardTripped(reason, proc.name, detail)
                if reason != "quarantined":
                    self.metrics.guard_trips += 1
                if reason == "injected":
                    # deterministic per-procedure verdict: it would trip on
                    # every dispatch, so quarantine it outright
                    self.degradation.quarantine(proc.name, reason, detail)
                    tr = self.trace
                    if tr is not None:
                        tr.instant(
                            "degrade.proc",
                            "interproc",
                            proc=proc.name,
                            reason=reason,
                            detail=detail,
                        )
                self._degrade_call(frame, node, proc.name, reason, detail)
                return
            ptf, need_visit = self.get_ptf(frame, node, proc, map_)
            if need_visit:
                if not self._analyze_ptf(frame, node, proc, ptf, map_):
                    return  # guard tripped: havoc fallback already applied
            self.apply_summary(frame, node, ptf, map_, weak=apply_weak)
            # record the summary generation we consumed, so callers of
            # recursive cycles revisit when the head's summary grows
            if ptf.is_recursive:
                frame.ptf.recursive_deps[ptf.uid] = (
                    ptf.summary_generation
                )
        else:
            # recursive call: reuse the PTF already on the call stack (§5.4)
            head_ptf = on_stack.ptf
            head_ptf.is_recursive = True
            self.stats["recursive_calls"] += 1
            tr = self.trace
            if tr is not None:
                tr.instant(
                    "recursive_call",
                    "interproc",
                    proc=proc.name,
                    head_ptf=head_ptf.uid,
                    call_site=node.site,
                )
            self._merge_recursive_domain(frame, node, head_ptf, map_)
            if not head_ptf.summary():
                if node.uid not in frame.deferred:
                    frame.deferred.add(node.uid)
                    frame.changed = True
                return  # defer: no approximation available yet
            # bind the head's parameters against *this* recursive context so
            # the summary translates into it (merge mode, not strict match)
            self._merge_into_ptf(frame, node, head_ptf, map_)
            self.apply_summary(frame, node, head_ptf, map_, weak=True)
            frame.ptf.recursive_deps[head_ptf.uid] = (
                head_ptf.summary_generation
            )

    def _analyze_ptf(
        self,
        frame: Frame,
        node: Optional[CallNode],
        proc: Procedure,
        ptf: PTF,
        map_: ParamMap,
    ) -> bool:
        """(Re)analyze ``proc`` for the context bound in ``map_``; iterate
        to a fixpoint when the procedure heads a recursive cycle.

        Returns True on success.  When a resource guard trips during the
        evaluation (and ``--strict`` is off), the partial PTF — an
        *under*-approximation, unsound to apply — is discarded, the
        procedure is quarantined, the call is summarized by the
        conservative havoc stub, and False is returned so the caller
        skips ``apply_summary``.
        """
        from .intra import ProcEvaluator

        tr = self.trace
        if tr is not None:
            tr.begin("analyze_ptf", "interproc", proc=proc.name, ptf=ptf.uid)
        iterations = 0
        budget = self.budget
        try:
            try:
                for _ in range(self.options.max_recursion_iters):
                    iterations += 1
                    child = Frame(self, proc, ptf, map_, node, frame)
                    ptf.current_map = map_
                    ptf.analyzing = True
                    self.stack.append(child)
                    budget.note_depth(len(self.stack))
                    try:
                        ProcEvaluator(self, child).run()
                    finally:
                        self.stack.pop()
                        ptf.analyzing = False
                    gen_before = ptf.summary_generation
                    ptf.summary()  # refresh cache, maybe bumping the generation
                    if not ptf.is_recursive or ptf.summary_generation == gen_before:
                        break
            except GuardTripped as trip:
                if not trip.proc:
                    trip.proc = proc.name
                if self.options.strict:
                    raise
                self._quarantine_ptf(proc, ptf, trip)
                if node is not None:
                    self._degrade_call(
                        frame, node, proc.name, trip.reason, trip.detail
                    )
                return False
        finally:
            if tr is not None:
                tr.end(
                    "analyze_ptf",
                    "interproc",
                    proc=proc.name,
                    ptf=ptf.uid,
                    iterations=iterations,
                    pattern=ptf.alias_pattern(),
                )
        ptf.snapshot_pointer_versions(map_)
        self.stats["ptf_analyses"] += 1
        return True

    def _stack_frame(self, proc_name: str) -> Optional[Frame]:
        for fr in reversed(self.stack):
            if fr.proc is not None and fr.proc.name == proc_name:
                return fr
        return None

    # ------------------------------------------------------------------
    # actuals
    # ------------------------------------------------------------------

    def _record_actuals(
        self,
        frame: Frame,
        evaluator: "ProcEvaluator",
        node: CallNode,
        proc: Procedure,
    ) -> ParamMap:
        map_ = ParamMap()
        formals = proc.formals
        for i, formal in enumerate(formals):
            if i >= len(node.args):
                map_.actuals[formal.name] = tuple()
                continue
            map_.actuals[formal.name] = self._actual_entries(
                evaluator, node, node.args[i]
            )
        if proc.is_varargs and len(node.args) > len(formals) and formals:
            # extra arguments are reachable through va_arg walks of the last
            # formal's block; fold their values in at word stride
            extra: set[LocationSet] = set()
            for arg in node.args[len(formals):]:
                extra |= evaluator.eval_value(arg, node)
            if extra:
                last = formals[-1]
                entries = list(map_.actuals.get(last.name, ()))
                entries.append((0, WORD_SIZE, frozenset(extra)))
                map_.actuals[last.name] = tuple(entries)
        return map_

    def _actual_entries(
        self, evaluator: "ProcEvaluator", node: CallNode, arg
    ) -> tuple:
        """Evaluate one actual argument to ``(offset, stride, values)``
        entries; aggregates contribute their pointer fields per offset."""
        entries: list[tuple[int, int, frozenset]] = []
        scalar: set[LocationSet] = set()
        for term in arg.terms:
            if isinstance(term, ContentsTerm) and term.size > WORD_SIZE:
                for src in evaluator.eval_loc(term.loc, node):
                    for offset, stride, vals in evaluator._pointer_fields(
                        src, node, term.size
                    ):
                        entries.append((offset - src.offset, stride, vals))
                continue
            partial = evaluator.eval_value(
                type(arg)((term,)), node
            )
            scalar |= partial
        if scalar:
            entries.insert(0, (0, 0, frozenset(scalar)))
        return tuple(entries)

    # ------------------------------------------------------------------
    # GetPTF / matchPTF (Figure 13, §5.2)
    # ------------------------------------------------------------------

    def get_ptf(
        self, frame: Frame, node: CallNode, proc: Procedure, map_: ParamMap
    ) -> tuple[PTF, bool]:
        home_key = (node.uid, frame.ptf.uid if frame.ptf is not None else -1)
        home: Optional[PTF] = None
        tr = self.trace
        tried = 0
        # Emami mode (§6 ablation): only the same call site in the same
        # caller context may reuse a summary — cross-site reuse is what the
        # paper adds, so turning it off reproduces reanalysis-per-context
        candidates = self.ptfs.get(proc.name, ())  # type: ignore[attr-defined]
        if not self.options.reuse_ptfs:
            candidates = [c for c in candidates if c.home == home_key]
        for candidate in candidates:
            trial = map_.copy()
            verdict = self.match_ptf(candidate, frame, node, trial)
            if verdict is not None:
                map_.actuals = trial.actuals
                map_.param_values = trial.param_values
                for raw, values in self._match_upgrades:
                    self._upgrade_entry(candidate, frame, node, map_, raw, values)
                need_visit = candidate.inputs_gained_pointers(map_)
                if verdict:  # binding was widened: re-analyze to cover it
                    need_visit = True
                if self._stale_recursive_deps(candidate):
                    need_visit = True
                    if tr is not None:
                        tr.instant(
                            "ptf.invalidate",
                            "interproc",
                            proc=proc.name,
                            ptf=candidate.uid,
                            reason="recursive summary grew",
                        )
                self.stats["ptf_reuses"] += 1
                if tr is not None:
                    tr.instant(
                        "ptf.reuse",
                        "interproc",
                        proc=proc.name,
                        ptf=candidate.uid,
                        pattern=candidate.alias_pattern(),
                        call_site=node.site,
                        revisit=need_visit,
                        tried=tried,
                    )
                # a PTF created for an *intermediate* input of this same
                # call site is now superseded by the matching one: drop it
                # (§5.2 keeps one PTF per converged input pattern, not one
                # per fixpoint-iteration artifact)
                self._drop_orphan_home(proc, candidate, home_key)
                return candidate, need_visit
            tried += 1
            if candidate.home == home_key:
                home = candidate
        if tr is not None and tried:
            tr.instant(
                "ptf.miss",
                "interproc",
                proc=proc.name,
                call_site=node.site,
                tried=tried,
            )
        if home is not None:
            # same call site, new inputs mid-iteration: update in place
            home.reset()
            self.stats["ptf_home_updates"] += 1
            if tr is not None:
                tr.instant(
                    "ptf.home_update",
                    "interproc",
                    proc=proc.name,
                    ptf=home.uid,
                    call_site=node.site,
                )
            return home, True
        per_proc = self.ptfs.get(proc.name, ())
        cap = self.budget.max_ptfs_total
        over_total = cap is not None and len(self._ptf_by_uid) >= cap
        if per_proc and (len(per_proc) >= self.options.ptf_limit or over_total):
            # §8: beyond the limit, generalize instead of multiplying PTFs —
            # reuse the first PTF, merging this context into its domain.
            # The same force-merge serves the run-wide PTF budget
            # (``max_ptfs_total``): at the cap no procedure may grow its
            # PTF list, so every new context folds into the first summary.
            fallback = per_proc[0]
            self._merge_into_ptf(frame, node, fallback, map_)
            self.stats["ptf_generalized"] += 1
            self.metrics.note_generalization(proc.name)
            if tr is not None:
                tr.instant(
                    "ptf.generalize",
                    "interproc",
                    proc=proc.name,
                    ptf=fallback.uid,
                    call_site=node.site,
                    limit=cap if over_total else self.options.ptf_limit,
                )
            return fallback, True
        ptf = self.new_ptf(proc)
        ptf.home = home_key
        self.stats["ptf_created"] += 1
        if tr is not None:
            tr.instant(
                "ptf.create",
                "interproc",
                proc=proc.name,
                ptf=ptf.uid,
                call_site=node.site,
            )
        return ptf, True

    def _drop_orphan_home(self, proc: Procedure, keep: PTF, home_key: tuple) -> None:
        ptfs = self.ptfs.get(proc.name)
        if not ptfs:
            return
        for other in list(ptfs):
            if other is not keep and other.home == home_key and not other.analyzing:
                ptfs.remove(other)
                self._ptf_by_uid.pop(other.uid, None)

    def _upgrade_entry(
        self,
        ptf: PTF,
        frame: Frame,
        node: CallNode,
        map_: ParamMap,
        raw: InitialEntry,
        values: frozenset,
    ) -> None:
        """Create the parameter for an initial entry recorded before its
        input held pointers, then refresh the state's initial value."""
        shim = Frame(self, ptf.proc, ptf, map_, node, frame)
        targets = shim.to_callee_targets(values, raw.source)
        raw.targets = targets
        ptf.state.set_initial(raw.source, targets)

    def _merge_into_ptf(
        self, frame: Frame, node: CallNode, ptf: PTF, map_: ParamMap
    ) -> None:
        """Merge a non-matching context into ``ptf`` (PTF-limit fallback):
        bind its parameters against this context without strict equality."""
        for raw in list(ptf.initial_entries):
            entry = raw.normalized()
            values = self._entry_values(entry, ptf.proc, frame, node, map_)
            if values is None or not entry.targets:
                continue
            self._bind_targets(entry.targets, values, map_, strict=False)

    def _stale_recursive_deps(self, ptf: PTF) -> bool:
        deps = ptf.recursive_deps
        for uid, gen in deps.items():
            current = self._ptf_by_uid.get(uid)
            if current is not None and current.summary_generation > gen:
                return True
        return False

    def match_ptf(
        self, ptf: PTF, frame: Frame, node: CallNode, map_: ParamMap
    ) -> Optional[bool]:
        """Whether ``ptf`` applies at this call, binding ``map_`` as we go.

        Walks the initial points-to entries in creation order, comparing the
        input aliases; then compares the function-pointer values (§5.2).
        Returns None on mismatch, False on an exact match, True when the
        match widened a parameter binding (the PTF must be re-visited).
        """
        if ptf.analyzing:
            return None
        proc = ptf.proc
        extended = False
        self._match_upgrades = []
        for raw in list(ptf.initial_entries):
            entry = raw.normalized()
            values = self._entry_values(entry, proc, frame, node, map_)
            if values is None:
                return None
            if not entry.targets:
                if values:
                    # the entry was created before this input held pointers;
                    # same alias pattern as long as the values touch no
                    # already-bound parameter — upgrade the entry on reuse
                    if any(
                        v.base is b.base
                        for v in values
                        for vals in map_.param_values.values()
                        for b in vals
                    ):
                        return None
                    self._match_upgrades.append((raw, values))
                    extended = True
                continue
            verdict = self._bind_targets(entry.targets, values, map_, strict=True)
            if verdict is None:
                return None
            if verdict == "extended":
                extended = True
        # function-pointer input values must match (§5.2)
        for param, expected in ptf.fnptr_domain.items():
            rep = param.representative()
            bound = map_.lookup_param(rep)
            if bound is None:
                return None
            resolved = frozenset(frame.resolve_fnptr_targets(bound))
            if resolved != expected:
                return None
        return extended

    def _entry_values(
        self,
        entry: InitialEntry,
        proc: Procedure,
        frame: Frame,
        node: CallNode,
        map_: ParamMap,
    ) -> Optional[frozenset]:
        """The caller-space values of an initial entry's source pointer in
        the current context (None when the source cannot be mapped)."""
        src = entry.source
        base = src.base
        if isinstance(base, LocalBlock):
            name = base.name.split("::")[-1]
            entries = map_.actuals.get(name)
            if entries is None:
                return frozenset()
            values: set[LocationSet] = set()
            for offset, stride, vals in entries:
                probe = LocationSet(base, offset, stride)
                if probe.overlaps(src, width=1, other_width=max(1, WORD_SIZE)):
                    values |= vals
            return frozenset(values)
        if isinstance(base, ExtendedParameter):
            caller_locs = map_.caller_locations(src)
            if caller_locs is None:
                # parameter not bound yet: for a global parameter we can
                # bind it structurally; anything else is a mismatch
                rep = base.representative()
                if rep.global_block is not None:
                    caller_block = frame.caller_block_for_global(rep.global_block.name)
                    map_.bind_param(rep, frozenset({LocationSet(caller_block, 0, 0)}))
                    caller_locs = map_.caller_locations(src)
                else:
                    return None
            values = set()
            for cl in caller_locs:
                values |= frame.lookup_value(cl, node, WORD_SIZE)
            return frozenset(values)
        return None

    def _bind_targets(
        self,
        targets: frozenset,
        values: frozenset,
        map_: ParamMap,
        strict: bool,
    ) -> Optional[str]:
        """Bind/check one entry's targets against caller values.

        Targets hold at most one extended parameter (§3.2) plus structural
        values that pass through untranslated (procedure blocks — function
        pointers are code addresses, not storage).

        Returns "match" when the context reproduces the entry exactly,
        "extended" when the same *objects* are involved but at different
        offsets/strides (the binding is widened and the caller must
        re-visit the PTF), or None on a mismatch.
        """
        structural = frozenset(
            t for t in targets if not isinstance(t.base, ExtendedParameter)
        )
        param_targets = [t for t in targets if isinstance(t.base, ExtendedParameter)]
        if strict and not structural <= values:
            return None
        values = values - structural
        if not param_targets:
            return "match" if (not strict or not values) else None
        target = param_targets[0]
        param = target.base.representative()
        if target.stride == 0 and target.offset:
            unshifted = frozenset(
                v.with_offset(-target.offset) if v.stride == 0 else v for v in values
            )
        else:
            unshifted = values
        bound = map_.lookup_param(param)
        if bound is not None:
            expected = map_.caller_locations(target) or EMPTY
            if not strict:
                map_.extend_param(param, unshifted)
                return "match"
            if values == expected:
                return "match"
            # same objects, different offsets/strides: the alias *pattern*
            # matches (subsumption produced this entry); widen the binding
            if values and {v.base for v in values} <= {e.base for e in expected}:
                map_.extend_param(param, unshifted)
                return "extended"
            return None
        # first occurrence of this parameter: bind, ensuring no alias with
        # previously bound parameters (strict mode, object granularity);
        # an empty binding is fine — the parameter stands for "whatever the
        # input points to", and this context supplies nothing yet
        if strict:
            for other, other_vals in map_.param_values.items():
                if other is param:
                    continue
                if any(v.base is b.base for v in unshifted for b in other_vals):
                    return None
        map_.bind_param(param, unshifted)
        return "match"

    # ------------------------------------------------------------------
    # recursion (§5.4)
    # ------------------------------------------------------------------

    def _merge_recursive_domain(
        self, frame: Frame, node: CallNode, head_ptf: PTF, rec_map: ParamMap
    ) -> None:
        """Record a recursive call's inputs as the PTF's *second* input
        domain (§5.4).

        The recursive context's values live in the *current* frame's name
        space, not the head's calling context, so they must never merge
        into the head's parameter map (that would conflate name spaces and
        corrupt summary translation).  Instead they are kept separately:
        the per-site ``rec_map`` — bound against the head's parameters by
        ``_merge_into_ptf`` before each summary application — carries the
        recursive bindings, and this record only tracks the merged domain
        for diagnostics and reuse statistics.
        """
        entries = rec_map.actuals
        domain = head_ptf.recursive_domain
        for name, actual in entries.items():
            old = domain.get(name, tuple())
            merged = list(old)
            for e in actual:
                if e not in merged:
                    merged.append(e)
            domain[name] = tuple(merged)

        # ------------------------------------------------------------------
    # ApplySummary (§5.3)
    # ------------------------------------------------------------------

    def apply_summary(
        self,
        frame: Frame,
        node: CallNode,
        ptf: PTF,
        map_: ParamMap,
        weak: bool = False,
    ) -> None:
        self._bind_global_params(ptf, frame, map_)
        summary = ptf.summary()
        tr = self.trace
        if tr is not None:
            tr.instant(
                "apply_summary",
                "interproc",
                proc=ptf.proc.name,
                ptf=ptf.uid,
                call_site=node.site,
                entries=len(summary),
                weak=weak,
            )
        prov = self.provenance
        return_values: dict[int, frozenset] = {}
        site = node.site
        try:
            for loc, vals in summary.items():
                caller_vals = self._translate_values(vals, map_, site)
                base = loc.base
                if isinstance(base, ReturnBlock):
                    if base.proc_name == ptf.proc.name:
                        old = return_values.get(loc.offset, EMPTY)
                        return_values[loc.offset] = old | caller_vals
                    continue
                caller_dsts = self._translate_location(loc, map_, site)
                if not caller_dsts:
                    continue
                strong = (
                    not weak
                    and self.options.strong_updates
                    and len(caller_dsts) == 1
                    and next(iter(caller_dsts)).is_unique
                )
                if prov is not None:
                    # the callee-space location is the chain's next hop: its
                    # own derivations were recorded while the PTF was analyzed
                    prov.set_context(
                        "summary",
                        sources=(str(normalize_loc(loc)),),
                        detail=f"summary of {ptf.proc.name} PTF#{ptf.uid}",
                    )
                for dst in caller_dsts:
                    frame.assign(dst, caller_vals, node, strong)
        finally:
            if prov is not None:
                prov.clear_context()
        if node.dst is not None and return_values:
            if prov is not None:
                prov.set_context(
                    "summary",
                    sources=tuple(
                        str(LocationSet(ptf.proc.return_block, off, 0))
                        for off in sorted(return_values)
                    ),
                    detail=f"return of {ptf.proc.name} PTF#{ptf.uid}",
                )
            try:
                self._assign_return(frame, node, return_values, weak)
            finally:
                if prov is not None:
                    prov.clear_context()

    def _bind_global_params(self, ptf: PTF, frame: Frame, map_: ParamMap) -> None:
        """Global parameters are structural: they always map to the caller's
        own representation of the same global, whether or not they appeared
        in an initial points-to entry (§2.2)."""
        for param in ptf.params:
            rep = param.representative()
            if rep.global_block is None:
                continue
            if map_.lookup_param(rep) is None:
                block = frame.caller_block_for_global(rep.global_block.name)
                map_.bind_param(rep, frozenset({LocationSet(block, 0, 0)}))

    def _assign_return(
        self,
        frame: Frame,
        node: CallNode,
        return_values: dict[int, frozenset],
        weak: bool,
    ) -> None:
        from .intra import ProcEvaluator  # local import to avoid cycle

        evaluator = ProcEvaluator(self, frame)
        dsts = evaluator.eval_loc(node.dst, node)
        if not dsts:
            return
        # no strong updates when several callee summaries combine (§5.3)
        strong = (
            not weak
            and self.options.strong_updates
            and len(dsts) == 1
            and dsts[0].is_unique
            and len(return_values) == 1
        )
        for offset, vals in return_values.items():
            for dst in dsts:
                target = dst.with_offset(offset) if dst.stride == 0 else dst
                frame.assign(
                    target, vals, node, strong, size=node.dst_size or WORD_SIZE
                )

    def _translate_location(
        self, loc: LocationSet, map_: ParamMap, call_site: str = ""
    ) -> frozenset:
        base = loc.base
        if isinstance(base, HeapBlock):
            if call_site and self.options.heap_context_depth > 0:
                rekeyed = self.rekey_heap(base, call_site)
                return frozenset({LocationSet(rekeyed, loc.offset, loc.stride)})
            return frozenset({loc})
        if isinstance(base, (StringBlock, ProcedureBlock, GlobalBlock)):
            return frozenset({loc})
        if isinstance(base, ExtendedParameter):
            out = map_.caller_locations(loc)
            return out if out is not None else EMPTY
        # callee locals and return blocks do not exist in the caller (§5.3)
        return EMPTY

    def _translate_values(
        self, values: frozenset, map_: ParamMap, call_site: str = ""
    ) -> frozenset:
        out: set[LocationSet] = set()
        for v in values:
            base = v.base
            if isinstance(base, HeapBlock):
                if call_site and self.options.heap_context_depth > 0:
                    rekeyed = self.rekey_heap(base, call_site)
                    out.add(LocationSet(rekeyed, v.offset, v.stride))
                else:
                    out.add(v)
            elif isinstance(base, (StringBlock, ProcedureBlock, GlobalBlock)):
                out.add(v)
            elif isinstance(base, ExtendedParameter):
                mapped = map_.caller_locations(v)
                if mapped:
                    out |= mapped
            # locals vanish (a dangling pointer has no caller-space name)
        return frozenset(out)

    # ------------------------------------------------------------------
    # the degradation ladder (guards.py): guard checks, quarantine, and
    # the sound conservative havoc fallback for degraded internal calls
    # ------------------------------------------------------------------

    def _guard_reason(self, proc_name: str) -> Optional[tuple[str, str]]:
        """Pre-dispatch resource checks: the explicit replacement for
        "recurse until Python's stack gives out".

        Returns ``(reason, detail)`` when dispatching to ``proc_name``
        must degrade, or None when the call may proceed.  Checked before
        every internal dispatch; with all budgets at their defaults this
        is a set probe, two None compares and an int compare.
        """
        if proc_name in self.degradation.quarantined:
            return "quarantined", "procedure previously quarantined"
        budget = self.budget
        if budget.deadline_at is not None and budget.deadline_exceeded():
            return (
                "deadline",
                f"wall-clock budget of {budget.deadline_seconds}s exhausted",
            )
        depth = len(self.stack) + 1
        if depth > budget.max_call_depth:
            return (
                "call_depth",
                f"analysis call depth {depth} exceeds the bound of "
                f"{budget.max_call_depth}",
            )
        cap = budget.max_ptfs_total
        if (
            cap is not None
            and len(self._ptf_by_uid) >= cap
            and not self.ptfs.get(proc_name)
        ):
            # at the cap and no PTF of this procedure to generalize into
            return "ptf_cap", f"{len(self._ptf_by_uid)} live PTFs at the cap of {cap}"
        faults = self.faults
        if faults is not None and faults.exhaust(proc_name):
            return "injected", "injected budget exhaustion"
        return None

    def _quarantine_ptf(self, proc: Procedure, ptf: PTF, trip: GuardTripped) -> None:
        """Discard a guard-tripped partial PTF and quarantine its procedure.

        The tripped PTF's state is an *under*-approximation of the
        procedure's behaviour (the fixpoint never completed), so applying
        it would be unsound; every call to the procedure — this one and
        all later ones — degrades to the conservative havoc stub instead.
        """
        self.metrics.guard_trips += 1
        ptfs = self.ptfs.get(proc.name)
        if ptfs is not None and ptf in ptfs:
            ptfs.remove(ptf)
        self._ptf_by_uid.pop(ptf.uid, None)
        self.degradation.quarantine(proc.name, trip.reason, trip.detail)
        tr = self.trace
        if tr is not None:
            tr.instant(
                "degrade.proc",
                "interproc",
                proc=proc.name,
                reason=trip.reason,
                detail=trip.detail,
            )

    def _region(self, proc_name: str):
        regions = self._regions
        region = regions.get(proc_name)
        if region is None:
            region = conservative_region(self.program, proc_name)
            regions[proc_name] = region
        return region

    def _degrade_call(
        self,
        frame: Frame,
        node: CallNode,
        proc_name: str,
        reason: str,
        detail: str = "",
    ) -> None:
        """Summarize a degraded call with a *sound* conservative havoc.

        This widens the external-call policy (``_call_external``) to be
        sound for *internal* procedures.  An unknown external can only
        touch its arguments and its own storage; a skipped internal
        procedure can additionally read and write every global it
        transitively references (and, through an indirect call, anything
        address-taken).  So the havoc set is the transitive pointer
        closure of

        * the argument values at this call site, plus
        * the procedure's conservative region (``guards.conservative_
          region``): its statically reachable globals — resolved through
          this frame's extended-parameter representation so the caller's
          own reads observe the havoc — widened to the whole program
          when the region contains an indirect or unknown call,

        and every reachable storage block is weakly assigned the whole
        pool: the region's code addresses (function pointers the callee
        could hand out), its string literals, every reachable block
        blurred, and one opaque ``<degraded:proc>`` block standing for
        storage the callee allocates or owns.  Because the call node is
        re-evaluated on every fixpoint pass of the caller, values that
        grow later re-enter the closure — exactly the external-call
        discipline.
        """
        from .intra import ProcEvaluator

        self.metrics.degraded_calls += 1
        site = node.site
        self.degradation.record(proc_name, reason, detail, call_site=site)
        evaluator = ProcEvaluator(self, frame)
        program = self.program
        region = self._region(proc_name)
        # -- roots: argument values + the region's globals -----------------
        roots: set[LocationSet] = set()
        for arg in node.args:
            roots |= evaluator.eval_value(arg, node)
        gnames = set(program.globals) if region.world else set(region.globals)
        for gname in sorted(gnames):
            block = frame.caller_block_for_global(gname)
            roots.add(LocationSet(block, 0, 0))
        # -- transitive pointer closure over reachable storage -------------
        pool: set[LocationSet] = set()
        havoc_targets: set[LocationSet] = set()
        seen_blocks: set = set()
        work = sorted(roots, key=_loc_key, reverse=True)
        while work:
            v = work.pop()
            base = v.base
            if isinstance(base, (ProcedureBlock, StringBlock)):
                pool.add(v)  # code / read-only characters: values, not storage
                continue
            if base in seen_blocks:
                continue
            seen_blocks.add(base)
            blurred = v.blurred()
            havoc_targets.add(blurred)
            pool.add(blurred)
            # pointers already stored in the block extend the closure
            for off, stride in sorted(base.pointer_locations):
                probe = LocationSet(base, off, stride)
                for nv in sorted(
                    frame.lookup_value(probe, node, WORD_SIZE), key=_loc_key
                ):
                    if nv.base not in seen_blocks:
                        work.append(nv)
        # -- the region's code and string addresses -------------------------
        pnames = set(program.procedures) if region.world else set(region.procs)
        for pname in sorted(pnames):
            pool.add(LocationSet(program.proc_block(pname), 0, 0))
        sites = set(program.string_blocks) if region.world else set(region.strings)
        for ssite in sorted(sites):
            sblock = program.string_blocks.get(ssite)
            if sblock is not None:
                pool.add(LocationSet(sblock, 0, 1))
        # -- the callee's own opaque storage --------------------------------
        internal = self._degraded_block(proc_name)
        internal_loc = LocationSet(internal, 0, 1)
        havoc_targets.add(internal_loc)
        pool.add(internal_loc)
        pool_f = frozenset(pool)
        prov = self.provenance
        if prov is not None:
            prov.set_context(
                "external", detail=f"degraded call to {proc_name} ({reason})"
            )
        try:
            for target in sorted(havoc_targets, key=_loc_key):
                frame.assign(target, pool_f, node, False)
            if node.dst is not None:
                dsts = evaluator.eval_loc(node.dst, node)
                for dst in dsts:
                    frame.assign(dst, pool_f, node, len(dsts) == 1 and dst.is_unique)
        finally:
            if prov is not None:
                prov.clear_context()
        tr = self.trace
        if tr is not None:
            tr.instant(
                "degrade.call",
                "interproc",
                proc=proc_name,
                reason=reason,
                call_site=site,
                pool=len(pool_f),
            )

    def _degraded_block(self, name: str) -> GlobalBlock:
        blocks = self.__dict__.setdefault("_degraded_blocks", {})
        block = blocks.get(name)
        if block is None:
            block = GlobalBlock(f"<degraded:{name}>")
            block.register_pointer_location(0, 1)
            blocks[name] = block
        return block

    # ------------------------------------------------------------------
    # external (non-libc) calls
    # ------------------------------------------------------------------

    def _call_external(
        self, frame: Frame, evaluator: "ProcEvaluator", node: CallNode, name: str
    ) -> None:
        self.stats["external_calls"] += 1
        tr = self.trace
        if tr is not None:
            tr.instant(
                "external_call",
                "interproc",
                name=name,
                policy=self.options.external_policy,
                call_site=node.site,
            )
        if self.options.external_policy == "ignore":
            return
        # havoc: anything reachable from the arguments may be overwritten
        # with anything else reachable from the arguments or the external
        # world's own storage
        external = self._external_block(name)
        reachable: set[LocationSet] = set()
        for arg in node.args:
            reachable |= evaluator.eval_value(arg, node)
        pool = frozenset(
            {LocationSet(external, 0, 1)}
            | {v.blurred() for v in reachable}
        )
        prov = self.provenance
        if prov is not None:
            prov.set_context("external", detail=f"havoc by extern {name}")
        try:
            for target in reachable:
                if isinstance(target.base, (ProcedureBlock, StringBlock)):
                    continue
                frame.assign(target.blurred(), pool, node, False)
            if node.dst is not None:
                dsts = evaluator.eval_loc(node.dst, node)
                for dst in dsts:
                    frame.assign(
                        dst, pool, node, len(dsts) == 1 and dst.is_unique
                    )
        finally:
            if prov is not None:
                prov.clear_context()

    def _external_block(self, name: str) -> GlobalBlock:
        blocks = self.__dict__.setdefault("_external_blocks", {})
        block = blocks.get(name)
        if block is None:
            block = GlobalBlock(f"<extern:{name}>")
            block.register_pointer_location(0, 1)
            blocks[name] = block
        return block
