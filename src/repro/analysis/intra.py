"""Intraprocedural evaluation (Figures 8–11).

``ProcEvaluator.run`` is the paper's ``EvalProc``: iterate over the flow
graph in reverse postorder until nothing changes, with the two evaluation
order constraints that make strong updates safe (§4.1):

* never evaluate a node until one of its immediate predecessors has been
  evaluated;
* never evaluate an assignment until its destination locations are known
  (a dereference of a pointer with no values yet is deferred to a later
  pass).

Assignments of one word or less copy the source's pointer values; aggregate
assignments copy the pointer fields at matching offsets (§4.4).  A strong
update requires a single destination location set that names a unique
location (§4.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..frontend.ctypes_model import WORD_SIZE
from ..ir.expr import (
    AddressTerm,
    AdjustTerm,
    ContentsTerm,
    DerefLoc,
    LocExpr,
    SymbolLoc,
    UnknownTerm,
    ValueExpr,
)
from ..ir.nodes import AssignNode, CallNode, EntryNode, ExitNode, MeetNode, Node
from ..memory.locset import LocationSet
from ..memory.pointsto import SparseState, normalize_loc
from .context import Frame
from .guards import GuardTripped

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Analyzer

__all__ = ["ProcEvaluator", "AnalysisBudgetExceeded"]

EMPTY: frozenset = frozenset()


class AnalysisBudgetExceeded(GuardTripped):
    """The fixpoint iteration failed to converge within the pass budget.

    Historically this was the engine's only safety valve (and it *raised*
    out of the whole analysis).  It is now one rung of the degradation
    ladder: a :class:`~repro.analysis.guards.GuardTripped` subclass with
    ``reason="max_passes"``, caught by the interprocedural layer, which
    quarantines the procedure and degrades its callers to the
    conservative havoc summary (``--strict`` restores raise-through).
    """

    def __init__(self, proc: str = "", detail: str = "") -> None:
        super().__init__("max_passes", proc, detail)


class ProcEvaluator:
    """Evaluates one procedure under one PTF/calling context."""

    def __init__(self, analyzer: "Analyzer", frame: Frame) -> None:
        self.analyzer = analyzer
        self.frame = frame
        self.proc = frame.proc
        self.state = frame.ptf.state
        self.evaluated: set[int] = set()
        #: assignment nodes deferred because their destinations are unknown
        self._deferred_once: set[int] = set()

    # ------------------------------------------------------------------
    # EvalProc (Figure 8)
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Iterate the procedure body to a local fixpoint.

        Wall-clock time lands in two buckets: this procedure's *inclusive*
        time (callees analyzed from its call sites count here too) and its
        *exclusive* self-time (inclusive minus nested callee evaluations),
        split by :meth:`Metrics.start_proc`/:meth:`Metrics.end_proc`.  Each
        full pass over the body bumps the ``eval_passes`` counter, and when
        tracing is on the evaluation becomes an ``eval`` span containing one
        ``pass`` complete-event per iteration.
        """
        metrics = self.analyzer.metrics
        tr = self.analyzer.trace
        metrics.start_proc(self.proc.name)
        if tr is not None:
            tr.begin(
                f"eval {self.proc.name}",
                "proc",
                proc=self.proc.name,
                ptf=self.frame.ptf.uid,
            )
        passes = 0
        try:
            passes = self._run_passes()
        finally:
            metrics.end_proc(passes)
            if tr is not None:
                tr.end(f"eval {self.proc.name}", "proc", passes=passes)

    def _run_passes(self) -> int:
        budget = self.analyzer.budget
        max_passes = budget.max_passes
        max_entries = budget.max_state_entries
        faults = self.analyzer.faults
        forced_nonconvergence = (
            faults is not None and faults.nonconverge(self.proc.name)
        )
        metrics = self.analyzer.metrics
        tr = self.analyzer.trace
        passes = 0
        while True:
            if budget.deadline_at is not None and budget.deadline_exceeded():
                raise GuardTripped(
                    "deadline",
                    self.proc.name,
                    f"wall-clock budget of {budget.deadline_seconds}s "
                    f"exhausted after {passes} passes",
                )
            t0 = tr.now_us() if tr is not None else 0
            before = self.state.change_counter
            self.frame.changed = False
            for node in self.proc.rpo:
                if isinstance(node, EntryNode):
                    self.evaluated.add(node.uid)
                    continue
                if not self._predecessor_evaluated(node):
                    continue
                self.state.merge_at(node, self.evaluated)
                if isinstance(node, (MeetNode, ExitNode)):
                    # the exit node is a join too: return edges from many
                    # points converge there, so φ-functions may land on it
                    self.eval_meet(node)
                elif isinstance(node, AssignNode):
                    self.eval_assign(node)
                elif isinstance(node, CallNode):
                    self.analyzer.eval_call(self.frame, self, node)
                self.state.finish_node(node)
                self.evaluated.add(node.uid)
            passes += 1
            metrics.eval_passes += 1
            converged = self.state.change_counter == before and not self.frame.changed
            if converged and forced_nonconvergence:
                converged = False  # injected: pretend the pass changed state
            if tr is not None:
                tr.complete(
                    "pass",
                    "pass",
                    t0,
                    tr.now_us() - t0,
                    proc=self.proc.name,
                    index=passes,
                    changed=not converged,
                )
            if max_entries is not None and self._state_entries() > max_entries:
                raise GuardTripped(
                    "state_entries",
                    self.proc.name,
                    f"{self._state_entries()} points-to entries exceed the "
                    f"cap of {max_entries}",
                )
            if converged:
                return passes
            if passes >= max_passes:
                raise AnalysisBudgetExceeded(
                    self.proc.name,
                    "injected non-convergence"
                    if forced_nonconvergence
                    else f"no fixpoint after {passes} passes",
                )

    def _state_entries(self) -> int:
        """Size proxy for the procedure state: assigned keys plus lazily
        fetched initial entries (both representations maintain the two)."""
        state = self.state
        return len(state.assigned_keys) + len(getattr(state, "_initial", ()))

    def _predecessor_evaluated(self, node: Node) -> bool:
        return any(
            p.uid in self.evaluated or isinstance(p, EntryNode) for p in node.preds
        )

    # ------------------------------------------------------------------
    # EvalMeet (Figure 9) — sparse states only; dense states merge maps
    # ------------------------------------------------------------------

    def eval_meet(self, node: Node) -> None:
        state = self.state
        if not isinstance(state, SparseState):
            return
        for loc in sorted(
            state.phi_locations(node), key=lambda l: (l.base.uid, l.offset, l.stride)
        ):
            values: set[LocationSet] = set()
            for pred in node.preds:
                if pred.uid not in self.evaluated and not isinstance(pred, EntryNode):
                    continue
                values |= state.lookup(loc, pred, before=False)
            state.assign_phi(loc, frozenset(values), node)

    # ------------------------------------------------------------------
    # EvalAssign (Figure 11)
    # ------------------------------------------------------------------

    def eval_assign(self, node: AssignNode) -> None:
        if node.dst is None:
            self.eval_value(node.src, node)  # side effects only
            return
        dsts = self.eval_loc(node.dst, node)
        if not dsts:
            # destination locations not yet known (§4.1): defer this node
            if node.uid not in self._deferred_once:
                self._deferred_once.add(node.uid)
                self.frame.changed = True
            self.eval_value(node.src, node)
            return
        if node.size > WORD_SIZE:
            self.eval_aggregate_assign(node, dsts)
            return
        srcs = self.eval_value(node.src, node)
        strong = (
            self.analyzer.options.strong_updates
            and len(dsts) == 1
            and dsts[0].is_unique
        )
        prov = self.state.provenance
        if prov is not None:
            prov.set_context("assign", sources=self._source_locs(node))
        try:
            for dst in dsts:
                self.frame.assign(dst, srcs, node, strong, size=node.size)
        finally:
            if prov is not None:
                prov.clear_context()

    def _source_locs(self, node: AssignNode) -> tuple[str, ...]:
        """Canonical strings of the locations whose *contents* flow into
        this assignment (provenance chain sources).  Address-of and unknown
        terms are chain terminators and contribute nothing."""
        out: list[str] = []

        def visit(terms) -> None:
            for term in terms:
                if isinstance(term, ContentsTerm):
                    for loc in self.eval_loc(term.loc, node):
                        out.append(str(normalize_loc(loc)))
                elif isinstance(term, AdjustTerm):
                    visit(term.value.terms)

        visit(node.src.terms)
        return tuple(dict.fromkeys(out))

    def eval_aggregate_assign(self, node: AssignNode, dsts: list[LocationSet]) -> None:
        """Multi-word copy: move pointer fields at matching offsets (§4.4)."""
        strong = (
            self.analyzer.options.strong_updates
            and len(dsts) == 1
            and dsts[0].is_unique
        )
        copied: dict[int, set[LocationSet]] = {}
        blurred: set[LocationSet] = set()
        for term in node.src.terms:
            if isinstance(term, ContentsTerm):
                src_locs = self.eval_loc(term.loc, node)
                for src in src_locs:
                    for offset, stride, vals in self._pointer_fields(
                        src, node, node.size
                    ):
                        if stride or src.stride:
                            blurred |= vals
                        else:
                            copied.setdefault(offset - src.offset, set()).update(vals)
            elif isinstance(term, AddressTerm):
                # storing an address with an aggregate width: treat as word
                locs = self.eval_loc(term.loc, node)
                copied.setdefault(0, set()).update(locs)
            elif isinstance(term, AdjustTerm):
                vals = self._eval_adjust(term, node)
                copied.setdefault(0, set()).update(vals)
        prov = self.state.provenance
        if prov is not None:
            prov.set_context(
                "assign", sources=self._source_locs(node), detail="aggregate copy"
            )
        try:
            if strong:
                # one strong write per copied offset; the offset-0 write
                # carries the full copy width so it kills every stale pointer
                # within the copied range
                dst = dsts[0]
                self.frame.assign(
                    dst, frozenset(copied.get(0, set())), node, True, size=node.size
                )
                for delta, vals in sorted(copied.items()):
                    if delta == 0:
                        continue
                    target = dst.with_offset(delta) if dst.stride == 0 else dst
                    self.frame.assign(
                        target, frozenset(vals), node, True, size=WORD_SIZE
                    )
            else:
                for delta, vals in sorted(copied.items()):
                    for dst in dsts:
                        target = dst.with_offset(delta) if dst.stride == 0 else dst
                        self.frame.assign(
                            target, frozenset(vals), node, False, size=WORD_SIZE
                        )
            if blurred:
                for dst in dsts:
                    self.frame.assign(
                        dst.blurred(), frozenset(blurred), node, False, size=node.size
                    )
        finally:
            if prov is not None:
                prov.clear_context()

    def _pointer_fields(
        self, src: LocationSet, node: Node, size: int
    ) -> list[tuple[int, int, frozenset]]:
        """Registered pointer locations of ``src``'s block within the copied
        range, with their current values."""
        out = []
        probe = LocationSet(src.base, src.offset, src.stride)
        self.frame.ensure_initial(probe, size)
        for offset, stride in sorted(src.base.pointer_locations):
            key = LocationSet(src.base, offset, stride)
            if not probe.overlaps(key, width=max(size, 1), other_width=1):
                continue
            vals = self.frame.lookup_value(key, node, WORD_SIZE)
            if vals:
                out.append((offset, stride, vals))
        return out

    # ------------------------------------------------------------------
    # expression evaluation (EvalExpr / EvalDeref, Figure 10)
    # ------------------------------------------------------------------

    def eval_loc(self, loc: LocExpr, node: Node) -> list[LocationSet]:
        """The location sets denoted by a location expression at ``node``."""
        if isinstance(loc, SymbolLoc):
            block = self.frame.resolve_symbol_block(loc.symbol)
            return [LocationSet(block, loc.offset, loc.stride)]
        assert isinstance(loc, DerefLoc)
        pointer_vals = self.eval_value(loc.pointer, node)
        out: list[LocationSet] = []
        seen: set[LocationSet] = set()
        for v in pointer_vals:
            if loc.blur:
                target = v.blurred()
            else:
                target = v.with_offset(loc.offset)
                if loc.stride:
                    target = target.with_stride(loc.stride)
            target = normalize_loc(target)
            if target not in seen:
                seen.add(target)
                out.append(target)
        return out

    def eval_value(self, value: ValueExpr, node: Node) -> frozenset:
        """The pointer values a value expression may produce at ``node``."""
        result: set[LocationSet] = set()
        for term in value.terms:
            if isinstance(term, UnknownTerm):
                continue
            if isinstance(term, AddressTerm):
                result.update(self.eval_loc(term.loc, node))
            elif isinstance(term, ContentsTerm):
                for loc in self.eval_loc(term.loc, node):
                    result |= self.frame.lookup_value(loc, node, term.size)
            elif isinstance(term, AdjustTerm):
                result |= self._eval_adjust(term, node)
        return frozenset(result)

    def _eval_adjust(self, term: AdjustTerm, node: Node) -> frozenset:
        inner = self.eval_value(term.value, node)
        out: set[LocationSet] = set()
        for v in inner:
            if term.blur:
                out.add(v.blurred())
            else:
                adjusted = v.with_offset(term.offset)
                if term.stride:
                    adjusted = adjusted.with_stride(term.stride)
                out.add(adjusted)
        return frozenset(out)
