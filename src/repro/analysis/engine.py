"""The analysis engine: options, driver, and top-level entry point.

``analyze(program)`` runs the Wilson-Lam analysis starting from ``main``
(§2.3): an iterative intraprocedural analysis of ``main`` that recursively
analyzes callees on demand, creating partial transfer functions lazily and
reusing them whenever the input aliases match.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from ..diagnostics import FaultPlan, Metrics, ProvenanceLog, Tracer
from ..frontend.ctypes_model import WORD_SIZE
from ..ir.program import Procedure, Program
from ..memory.blocks import GlobalBlock, HeapBlock
from ..memory.locset import LocationSet
from .context import Frame, RootFrame
from .guards import AnalysisBudget, DegradationReport, GuardTripped, Region
from .interproc import InterproceduralMixin
from .intra import ProcEvaluator
from .libc import LibcSummaries
from .ptf import PTF, ParamMap
from .recursion import ensure_recursion_limit

__all__ = ["AnalyzerOptions", "Analyzer", "analyze"]


@dataclass
class AnalyzerOptions:
    """Tunable knobs, including the ablation switches DESIGN.md calls out."""

    #: points-to state representation: "sparse" (the paper's §4.2 scheme)
    #: or "dense" (the reference implementation)
    state_kind: str = "sparse"
    #: what to do with calls to unknown external functions:
    #: "havoc" (conservative) or "ignore" (optimistic)
    external_policy: str = "havoc"
    #: iteration budget per procedure evaluation (safety valve)
    max_passes: int = 200
    #: fixpoint iterations for recursive cycles
    max_recursion_iters: int = 50
    #: soft cap on PTFs per procedure; beyond it, reuse is forced by
    #: merging into the procedure's first PTF (§8's suggested generalization)
    ptf_limit: int = 64
    #: heap-naming context depth (§3): 0 = static allocation site only (the
    #: paper's choice); k > 0 appends up to k call-chain edges, the
    #: Choi-style scheme the paper discusses as more precise but heavier
    heap_context_depth: int = 0
    #: disable strong updates entirely (ablation)
    strong_updates: bool = True
    #: when False, skip the offset-based reuse of an aliased parameter and
    #: always merge aliased parameters into a fresh one (ablation for the
    #: §3.2 design choice; more parameters, coarser targets)
    subsumption: bool = True
    #: when False, never reuse a PTF across call sites — every calling
    #: context gets its own summary, reproducing Emami et al.'s
    #: reanalyze-per-context behaviour (§6); expect invocation-graph-sized
    #: PTF counts and analysis blow-up
    reuse_ptfs: bool = True
    #: memoize the sparse representation's dominator-walk lookups behind
    #: generation-invalidated caches; disabling must produce bit-identical
    #: points-to results (the caches are pure memoization) and exists for
    #: the before/after benchmark and as a debugging escape hatch
    lookup_cache: bool = True
    #: optional :class:`repro.diagnostics.trace.Tracer` collecting the
    #: hierarchical span/event trace (driver phases, per-procedure
    #: evaluations, fixpoint passes, interprocedural events).  ``None``
    #: (the default) disables tracing entirely: instrument sites cost one
    #: ``is not None`` check, results and metrics are bit-identical
    trace: Optional[Tracer] = None
    #: when True, every points-to derivation is recorded in
    #: ``Analyzer.provenance`` (a ProvenanceLog) so ``repro explain`` can
    #: answer "why does p point to x?"; off by default (same contract)
    provenance: bool = False
    # -- resource budgets + the degradation ladder (guards.py) -----------
    #: wall-clock budget for the whole run in seconds (None = unlimited);
    #: on expiry, remaining procedures degrade to conservative summaries
    deadline_seconds: Optional[float] = None
    #: maximum analysis call-stack depth — the explicit, checked
    #: replacement for unbounded Python recursion through
    #: ``_dispatch_internal`` (the interpreter recursion limit is raised
    #: in ``run`` so this guard always fires first)
    max_call_depth: int = 200
    #: cap on the number of live PTFs across the whole run (None = off);
    #: at the cap, contexts force-merge into existing summaries and
    #: never-summarized procedures degrade
    max_ptfs_total: Optional[int] = None
    #: cap on points-to entries per procedure state (None = off)
    max_state_entries: Optional[int] = None
    #: restore the historical raise-through behaviour: a tripped guard
    #: propagates as :class:`repro.analysis.guards.GuardTripped` instead
    #: of degrading the procedure
    strict: bool = False
    #: optional deterministic fault-injection plan
    #: (:class:`repro.diagnostics.faults.FaultPlan`) exercising the
    #: degradation paths; None (the default) injects nothing
    faults: Optional[FaultPlan] = None
    #: when True, ``run`` samples the interpreter's allocation peak with
    #: :mod:`tracemalloc` for the duration of the analysis (expensive —
    #: tracemalloc hooks every allocation; a factor of 2-4x on wall time)
    #: and records it in ``Analyzer.peak_memory_kb``.  The cheap live
    #: gauges of :meth:`Analyzer.memory_profile` are collected regardless
    track_memory: bool = False


class Analyzer(InterproceduralMixin):
    """Analysis engine and shared interprocedural state."""

    def __init__(self, program: Program, options: Optional[AnalyzerOptions] = None) -> None:
        self.program = program
        self.options = options or AnalyzerOptions()
        self.libc = LibcSummaries()
        self.stack: list[Frame] = []
        self.ptfs: dict[str, list[PTF]] = {}
        self._ptf_by_uid: dict[int, PTF] = {}
        self._heap_blocks: dict[str, HeapBlock] = {}
        self._libc_statics: dict[str, GlobalBlock] = {}
        self.root = RootFrame(self)
        self.main_frame: Optional[Frame] = None
        self.elapsed_seconds: float = 0.0
        #: hot-path counters and phase/procedure timers, shared by every
        #: points-to state this analyzer creates
        self.metrics = Metrics()
        #: optional span/event tracer; instrument sites hold this in a
        #: local and guard with ``is not None`` (no cost when disabled)
        self.trace: Optional[Tracer] = self.options.trace
        #: optional points-to derivation log for ``repro explain``
        self.provenance: Optional[ProvenanceLog] = (
            ProvenanceLog(tracer=self.trace) if self.options.provenance else None
        )
        self.stats: dict[str, int] = {
            "ptf_created": 0,
            "ptf_reuses": 0,
            "ptf_home_updates": 0,
            "ptf_analyses": 0,
            "ptf_generalized": 0,
            "recursive_calls": 0,
            "external_calls": 0,
            "libc_calls": 0,
        }
        #: the resource envelope of this run (armed by ``run``)
        self.budget: AnalysisBudget = AnalysisBudget.from_options(self.options)
        #: structured account of everything that degraded
        self.degradation: DegradationReport = DegradationReport()
        self.degradation.budget = self.budget
        #: optional deterministic fault-injection plan
        self.faults: Optional[FaultPlan] = self.options.faults
        #: conservative-region cache for the degraded-call havoc
        self._regions: dict[str, Region] = {}
        #: process-global memory gauges at construction time; the per-run
        #: deltas reported by :meth:`memory_profile` subtract these
        from ..memory import blocks as _blocks_mod
        from ..memory import locset as _locset_mod
        from ..memory import pointsto as _pointsto_mod

        self._mem_baseline = {
            "blocks": _blocks_mod.blocks_created(),
            "locsets": _locset_mod.locsets_interned(),
            "values_intern": _pointsto_mod.values_intern_size(),
        }
        #: tracemalloc-sampled allocation peak of ``run`` in KiB, or None
        #: when ``AnalyzerOptions.track_memory`` was off
        self.peak_memory_kb: Optional[float] = None
        # frontend faults travel with the program: quarantine the affected
        # procedures before the first dispatch can reach them
        for fault in getattr(program, "frontend_failures", ()):
            self.degradation.add_frontend(fault)

    # -- shared allocation ----------------------------------------------

    def heap_block(self, site: str, chain: tuple = ()) -> HeapBlock:
        key = (site, tuple(chain))
        block = self._heap_blocks.get(key)
        if block is None:
            block = HeapBlock(site, chain)
            self._heap_blocks[key] = block
        return block

    def rekey_heap(self, block: HeapBlock, call_site: str) -> HeapBlock:
        """Choi-style heap naming (§3): when a heap value crosses a call
        boundary back into the caller, prepend the call edge to its
        allocation context, bounded by ``heap_context_depth``."""
        depth = self.options.heap_context_depth
        if depth <= 0:
            return block
        chain = (call_site,) + block.chain
        chain = chain[:depth]
        if chain == block.chain:
            return block
        rekeyed = self.heap_block(block.site, chain)
        # pointer-location registrations travel with the block name
        for off_stride in block.pointer_locations:
            rekeyed.register_pointer_location(*off_stride)
        return rekeyed

    def libc_static_block(self, tag: str) -> GlobalBlock:
        block = self._libc_statics.get(tag)
        if block is None:
            block = GlobalBlock(f"<libc:{tag}>")
            self._libc_statics[tag] = block
        return block

    def new_ptf(self, proc: Procedure) -> PTF:
        ptf = PTF(
            proc,
            state_kind=self.options.state_kind,
            lookup_cache=self.options.lookup_cache,
            metrics=self.metrics,
            provenance=self.provenance,
        )
        self.ptfs.setdefault(proc.name, []).append(ptf)
        self._ptf_by_uid[ptf.uid] = ptf
        return ptf

    # -- driver -----------------------------------------------------------

    def run(self) -> "Analyzer":
        tr = self.trace
        mem_owner = self._start_memory_tracking()
        start = time.perf_counter()
        self.budget.start()
        # the explicit call-depth guard must fire before CPython's own
        # recursion limit: each analysis call level costs a bounded number
        # of interpreter frames, so raise the limit proportionally.  The
        # limit is process-global — raise-only under a lock (never
        # restored), or a finishing run would yank it down under a
        # concurrent deep run (see analysis/recursion.py)
        ensure_recursion_limit(20 * self.budget.max_call_depth + 1000)
        if tr is not None:
            tr.begin("analyze", "driver", program=self.program.name)
            for fault in self.degradation.frontend:
                tr.instant(
                    "degrade.frontend",
                    "driver",
                    file=fault.filename,
                    proc=fault.proc,
                    reason=fault.reason,
                )
        try:
            if tr is not None:
                tr.begin("finalize", "phase")
            try:
                with self.metrics.phase("finalize"):
                    self.program.finalize()
            finally:
                if tr is not None:
                    tr.end("finalize", "phase")
            main = self.program.main
            ptf = self.new_ptf(main)
            param_map = self._main_param_map(main)
            frame = Frame(self, main, ptf, param_map, None, self.root)
            self.main_frame = frame
            ptf.current_map = param_map
            ptf.analyzing = True
            self.stack.append(frame)
            self.budget.note_depth(len(self.stack))
            if tr is not None:
                tr.begin("analysis", "phase")
            try:
                with self.metrics.phase("analysis"):
                    try:
                        ProcEvaluator(self, frame).run()
                    except GuardTripped as trip:
                        # a guard tripped in main's own evaluation: there
                        # is no caller to degrade into — keep the partial
                        # state, flag the run as partial (exit code 4)
                        if self.options.strict:
                            raise
                        if not trip.proc:
                            trip.proc = main.name
                        self.metrics.guard_trips += 1
                        self.degradation.partial = True
                        self.degradation.record(
                            trip.proc, trip.reason, trip.detail
                        )
                        if tr is not None:
                            tr.instant(
                                "degrade.proc",
                                "interproc",
                                proc=trip.proc,
                                reason=trip.reason,
                                detail=trip.detail,
                            )
            finally:
                self.stack.pop()
                ptf.analyzing = False
                if tr is not None:
                    tr.end("analysis", "phase")
            if tr is not None:
                tr.begin("summary", "phase")
            try:
                with self.metrics.phase("summary"):
                    ptf.summary()
            finally:
                if tr is not None:
                    tr.end("summary", "phase")
        finally:
            if tr is not None:
                tr.end("analyze", "driver")
        self.elapsed_seconds = time.perf_counter() - start
        self._stop_memory_tracking(mem_owner)
        # surface the hot-path counters next to the interprocedural ones
        self.stats.update(self.metrics.counters())
        return self

    # -- memory accounting ------------------------------------------------

    def _start_memory_tracking(self) -> Optional[bool]:
        """Arm tracemalloc when ``track_memory`` asked for it.

        Returns None when tracking is off, else whether this run *owns*
        the tracer (a surrounding harness may already be tracing — then we
        only reset the peak and leave the tracer running on exit).
        """
        if not self.options.track_memory:
            return None
        import tracemalloc

        owner = not tracemalloc.is_tracing()
        if owner:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        return owner

    def _stop_memory_tracking(self, owner: Optional[bool]) -> None:
        if owner is None:
            return
        import tracemalloc

        _current, peak = tracemalloc.get_traced_memory()
        self.peak_memory_kb = round(peak / 1024.0, 1)
        if owner:
            tracemalloc.stop()

    def memory_profile(self) -> dict:
        """Live memory gauges of this run (the snapshot's memory profile).

        Always available and cheap — sums of live container sizes plus
        per-run deltas of the process-global interning counters
        (:func:`repro.memory.blocks.blocks_created`,
        :func:`repro.memory.locset.locsets_interned`,
        :func:`repro.memory.pointsto.values_intern_size`).
        ``tracemalloc_peak_kb`` is non-None only under
        ``AnalyzerOptions.track_memory``.
        """
        from ..memory import blocks as _blocks_mod
        from ..memory import locset as _locset_mod
        from ..memory import pointsto as _pointsto_mod

        state_totals: dict[str, int] = {}
        ptf_count = 0
        param_count = 0
        initial_count = 0
        for ptfs in self.ptfs.values():
            for ptf in ptfs:
                ptf_count += 1
                param_count += len(ptf.params)
                initial_count += len(ptf.initial_entries)
                for key, value in ptf.state.footprint().items():
                    state_totals[key] = state_totals.get(key, 0) + value
        return {
            "blocks_created": _blocks_mod.blocks_created()
            - self._mem_baseline["blocks"],
            "locsets_interned": _locset_mod.locsets_interned()
            - self._mem_baseline["locsets"],
            "values_intern_live": _pointsto_mod.values_intern_size(),
            "values_intern_delta": _pointsto_mod.values_intern_size()
            - self._mem_baseline["values_intern"],
            "state": dict(sorted(state_totals.items())),
            "ptf_store": {
                "ptfs": ptf_count,
                "params": param_count,
                "initial_entries": initial_count,
            },
            "heap_blocks": len(self._heap_blocks),
            "tracemalloc_peak_kb": self.peak_memory_kb,
        }

    def _main_param_map(self, main: Procedure) -> ParamMap:
        """Bind main's formals: argc is scalar, argv points at the synthetic
        argument vector, envp at its own synthetic environment vector (a
        distinct block — argv and envp never alias in a real process)."""
        param_map = ParamMap()
        for i, formal in enumerate(main.formals):
            if i == 1:
                argv = LocationSet(self.root.argv_array, 0, 0)
                param_map.actuals[formal.name] = ((0, 0, frozenset({argv})),)
            elif i == 2:  # envp
                envp = LocationSet(self.root.envp_array, 0, 0)
                param_map.actuals[formal.name] = ((0, 0, frozenset({envp})),)
            else:
                param_map.actuals[formal.name] = tuple()
        return param_map

    # -- diagnostics ------------------------------------------------------

    def stats_dict(self) -> dict:
        """JSON-serializable snapshot: interprocedural counters + the
        metrics layer's counters, hit rate and timers (``--stats-json``)."""
        out = self.metrics.as_dict()
        out["interprocedural"] = dict(self.stats)
        out["elapsed_seconds"] = round(self.elapsed_seconds, 6)
        out["lookup_cache"] = self.options.lookup_cache
        out["state_kind"] = self.options.state_kind
        out["degradation"] = self.degradation.as_dict()
        out["memory"] = self.memory_profile()
        return out

    # -- statistics (Table 2 columns) -------------------------------------

    def procedures_analyzed(self) -> int:
        return len(self.ptfs)

    def average_ptfs(self) -> float:
        counts = [len(v) for v in self.ptfs.values() if v]
        if not counts:
            return 0.0
        return sum(counts) / len(counts)

    def ptf_counts(self) -> dict[str, int]:
        return {name: len(v) for name, v in sorted(self.ptfs.items())}


def analyze(program: Program, options: Optional[AnalyzerOptions] = None) -> Analyzer:
    """Run the full context-sensitive pointer analysis on ``program``."""
    return Analyzer(program, options).run()
